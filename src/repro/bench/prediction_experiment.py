"""Prediction accuracy experiment (Table 1 and Section 8.6).

For every read query of TPC-W and SCADr the experiment reports

* the query/schema modifications and additional indexes needed for
  scale-independent execution (the qualitative columns of Table 1), and
* the *actual* versus *predicted* 99th-percentile response time.

Methodology follows the paper: operator models are trained on a 10-node
cluster over a number of 10-minute intervals; each benchmark query is then
executed repeatedly, its observations are binned into the same intervals,
and both the actual and the predicted value reported are the maximum
per-interval 99th percentile (the most conservative cardinality setting).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..engine.database import PiqlDatabase
from ..kvstore.cluster import ClusterConfig
from ..prediction.model import OperatorModelStore, QueryLatencyModel
from ..prediction.slo import observed_interval_quantiles
from ..prediction.training import OperatorModelTrainer, TrainingConfig
from ..workloads.base import Workload, WorkloadScale
from ..workloads.scadr.workload import ScadrWorkload
from ..workloads.tpcw.queries import QUERY_MODIFICATIONS
from ..workloads.tpcw.workload import TpcwWorkload


@dataclass
class PredictionRow:
    """One row of the reproduced Table 1."""

    benchmark: str
    query: str
    modifications: str
    additional_indexes: List[str]
    actual_p99_ms: float
    predicted_p99_ms: float

    @property
    def overprediction_ms(self) -> float:
        return self.predicted_p99_ms - self.actual_p99_ms


@dataclass
class PredictionExperimentConfig:
    """Setup of the Table 1 reproduction."""

    storage_nodes: int = 10
    users_per_node: int = 60
    items_total: int = 600
    intervals: int = 10
    executions_per_interval: int = 60
    interval_seconds: float = 600.0
    utilization: float = 0.30
    #: The scale experiment of Section 8.2 sets the subscription limit to 10,
    #: matching the generated data; Table 1 uses the same setting.
    scadr_max_subscriptions: int = 10
    scadr_subscriptions_per_user: int = 10
    quantile: float = 0.99
    seed: int = 41


#: Table 1's "Modifications" column for the SCADr queries.
SCADR_MODIFICATIONS: Dict[str, str] = {
    "users_followed": "-",
    "recent_thoughts": "-",
    "thoughtstream": "Cardinality constraint on #subscriptions",
    "find_user": "-",
    "thought_count": "Precomputed via materialized view (user_thought_counts)",
    "follower_count": (
        "Precomputed via materialized view (user_follower_counts)"
    ),
}


class PredictionAccuracyExperiment:
    """Reproduces the actual-vs-predicted comparison of Table 1."""

    def __init__(
        self,
        config: Optional[PredictionExperimentConfig] = None,
        training_config: Optional[TrainingConfig] = None,
    ):
        self.config = config or PredictionExperimentConfig()
        self.training_config = training_config or TrainingConfig(
            intervals=self.config.intervals,
            utilization=self.config.utilization,
        )
        self._store: Optional[OperatorModelStore] = None

    # ------------------------------------------------------------------
    # Model training
    # ------------------------------------------------------------------
    def train_model_store(self) -> OperatorModelStore:
        """Train (once) the per-operator models on a 10-node cluster."""
        if self._store is None:
            trainer = OperatorModelTrainer(config=self.training_config)
            self._store = trainer.train()
        return self._store

    # ------------------------------------------------------------------
    # Per-workload measurement
    # ------------------------------------------------------------------
    def _measure_workload(
        self,
        workload: Workload,
        modifications: Dict[str, str],
    ) -> List[PredictionRow]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(storage_nodes=config.storage_nodes, seed=config.seed)
        )
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=config.storage_nodes,
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        total_capacity = (
            config.storage_nodes * db.cluster.config.node_capacity_ops_per_second
        )
        db.cluster.set_offered_load(total_capacity * config.utilization)
        model = QueryLatencyModel(self.train_model_store(), db.catalog)
        rng = random.Random(config.seed)
        rows: List[PredictionRow] = []

        for name in workload.query_names():
            prepared = db.prepare(workload.query_sql(name))
            samples_by_interval: List[List[float]] = []
            view = db.new_client()
            prepared_view = view.prepare(workload.query_sql(name))
            spread = config.interval_seconds / config.executions_per_interval
            for _ in range(config.intervals):
                samples: List[float] = []
                for _ in range(config.executions_per_interval):
                    result = prepared_view.execute(
                        workload.sample_parameters(name, rng)
                    )
                    samples.append(result.latency_seconds)
                    # Spread requests over the interval so the per-interval
                    # "cloud weather" of the latency model is exercised.
                    view.client.clock.advance(spread - result.latency_seconds
                                              if spread > result.latency_seconds else 0.0)
                samples_by_interval.append(samples)
            actual = max(
                observed_interval_quantiles(samples_by_interval, config.quantile)
            )
            predicted = model.predict(
                prepared.physical_plan, config.quantile
            ).max_seconds
            rows.append(
                PredictionRow(
                    benchmark=workload.name,
                    query=name,
                    modifications=modifications.get(name, "-"),
                    additional_indexes=[
                        index.describe()
                        for index in prepared.optimized.required_indexes
                    ],
                    actual_p99_ms=actual * 1000.0,
                    predicted_p99_ms=predicted * 1000.0,
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, benchmarks: Sequence[str] = ("tpcw", "scadr")) -> List[PredictionRow]:
        rows: List[PredictionRow] = []
        if "tpcw" in benchmarks:
            # Views enabled: Table 1 now *lists* Best Sellers (precomputed)
            # instead of silently omitting it like the paper's table.
            rows.extend(
                self._measure_workload(
                    TpcwWorkload(materialized_views=True), QUERY_MODIFICATIONS
                )
            )
        if "scadr" in benchmarks:
            workload = ScadrWorkload(
                max_subscriptions=self.config.scadr_max_subscriptions,
                subscriptions_per_user=self.config.scadr_subscriptions_per_user,
                materialized_views=True,
            )
            rows.extend(self._measure_workload(workload, SCADR_MODIFICATIONS))
        return rows

    @staticmethod
    def summary(rows: Sequence[PredictionRow]) -> Dict[str, float]:
        """Aggregate over/under-prediction statistics for reporting."""
        over = [row.overprediction_ms for row in rows]
        return {
            "queries": float(len(rows)),
            "mean_overprediction_ms": sum(over) / len(over),
            "fraction_overpredicted": sum(1 for o in over if o >= -2.0) / len(over),
            "max_underprediction_ms": -min(over) if over else 0.0,
        }
