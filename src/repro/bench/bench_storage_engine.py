"""Storage-engine benchmark: parity, scale sweep, recovery, budgeted loads.

The storage-engine PR's claim is that durability is *free at the query
layer*: swapping the in-memory dict engine for the LSM engine changes
where bytes live (memtable + WAL + sorted segments instead of a Python
dict) but not a single observable of the simulation.  This experiment
makes that claim measurable along four axes:

``parity``
    The same seeded mixed workload (puts, quorum gets, deletes, range
    scans, a mid-run crash + recover) runs once per engine.  Values,
    charged latencies, serving node ids, keys touched, and every
    non-engine metric must be **bit-identical** arm to arm.

``sweep``
    Point-get and fixed-limit range latency across data cardinalities on
    the LSM engine.  PIQL's scale-independence argument must survive the
    storage engine: per-query simulated latency stays flat as the store
    grows, while resident memtable bytes stay bounded by the configured
    budget no matter how many keys are loaded.

``recovery``
    A write audit through quorum acknowledgements: every acknowledged
    write must read back after a crash + recover cycle (disk recovery
    plus hint replay for the delta), and the repair traffic must match
    the dict arm's hint-replay oracle exactly.

``bulk``
    A memory-budgeted bulk load (spilling external sort, WAL-free segment
    builds) must spill under a tiny budget, stay within it, and land the
    same data as per-record loads.

Run with ``PYTHONPATH=src python -m repro.bench.bench_storage_engine``
(add ``--quick`` for the CI-sized configuration).
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..kvstore.cluster import ClusterConfig, KeyValueCluster
from .reporting import format_table, percentile, save_results


@dataclass(frozen=True)
class StorageEngineConfig:
    """Cluster shape and workload sizes of the storage-engine experiment."""

    storage_nodes: int = 5
    replication: int = 3
    read_quorum: int = 2
    write_quorum: int = 2
    seed: int = 17
    #: Engine-level memtable budget — deliberately tiny so the benchmark
    #: exercises flushes, segment stacks, and compaction, not just dicts.
    memtable_budget_bytes: int = 8192
    #: Mixed-workload length of the parity phase.
    parity_ops: int = 600
    #: Data cardinalities of the latency sweep.
    sweep_sizes: Tuple[int, ...] = (1_000, 4_000, 16_000)
    #: Point / range probes measured per sweep size.
    sweep_probes: int = 300
    #: Acknowledged writes before / during the recovery phase's outage.
    recovery_writes: int = 300
    recovery_writes_during_outage: int = 150
    #: Rows and byte budget of the budgeted bulk-load phase.
    bulk_rows: int = 6_000
    bulk_budget_bytes: int = 8192

    @classmethod
    def quick(cls) -> "StorageEngineConfig":
        """The CI-sized configuration (same phases, smaller sizes)."""
        return cls(
            parity_ops=300,
            sweep_sizes=(500, 2_000, 8_000),
            sweep_probes=150,
            recovery_writes=150,
            recovery_writes_during_outage=80,
            bulk_rows=3_000,
        )


@dataclass
class SweepPoint:
    """Latency + engine state at one data cardinality."""

    keys: int
    get_mean_ms: float
    get_p99_ms: float
    range_mean_ms: float
    segment_count: int
    segment_bytes: int
    peak_memtable_bytes: int

    def row(self) -> Tuple[object, ...]:
        return (
            self.keys,
            f"{self.get_mean_ms:.4f}",
            f"{self.get_p99_ms:.4f}",
            f"{self.range_mean_ms:.4f}",
            self.segment_count,
            self.segment_bytes,
            self.peak_memtable_bytes,
        )


@dataclass
class StorageEngineResult:
    """Everything the benchmark (and CI) judges."""

    parity_identical: bool
    parity_ops: int
    parity_metrics: Dict[str, float]
    sweep: List[SweepPoint] = field(default_factory=list)
    recovery_acknowledged: int = 0
    recovery_lost: int = 0
    recovery_hints_replayed: int = 0
    recovery_oracle_match: bool = False
    recovery_segments_loaded: int = 0
    recovery_wal_records_replayed: int = 0
    bulk_rows: int = 0
    bulk_spill_count: int = 0
    bulk_match: bool = False

    @property
    def sweep_latency_ratio(self) -> float:
        """Largest-over-smallest mean get latency across the sweep (~1.0)."""
        if len(self.sweep) < 2:
            return 1.0
        return self.sweep[-1].get_mean_ms / max(self.sweep[0].get_mean_ms, 1e-12)

    def summary_payload(self) -> Dict[str, object]:
        return {
            "parity": {
                "identical": self.parity_identical,
                "ops": self.parity_ops,
                "metrics": self.parity_metrics,
            },
            "sweep": [
                {
                    "keys": point.keys,
                    "get_mean_ms": point.get_mean_ms,
                    "get_p99_ms": point.get_p99_ms,
                    "range_mean_ms": point.range_mean_ms,
                    "segment_count": point.segment_count,
                    "segment_bytes": point.segment_bytes,
                    "peak_memtable_bytes": point.peak_memtable_bytes,
                }
                for point in self.sweep
            ],
            "sweep_latency_ratio": self.sweep_latency_ratio,
            "recovery": {
                "acknowledged": self.recovery_acknowledged,
                "lost": self.recovery_lost,
                "hints_replayed": self.recovery_hints_replayed,
                "oracle_match": self.recovery_oracle_match,
                "segments_loaded": self.recovery_segments_loaded,
                "wal_records_replayed": self.recovery_wal_records_replayed,
            },
            "bulk": {
                "rows": self.bulk_rows,
                "spill_count": self.bulk_spill_count,
                "match": self.bulk_match,
            },
        }


class StorageEngineExperiment:
    """Run the four phases against fresh clusters (tmp-dir LSM state)."""

    def __init__(self, config: Optional[StorageEngineConfig] = None):
        self.config = config or StorageEngineConfig()

    # ------------------------------------------------------------------
    # Cluster construction
    # ------------------------------------------------------------------
    def _cluster(self, engine: str, budget: Optional[int] = None) -> KeyValueCluster:
        config = self.config
        options = None
        if engine == "lsm":
            options = {
                "memtable_budget_bytes": budget or config.memtable_budget_bytes
            }
        cluster = KeyValueCluster(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                replication=config.replication,
                read_quorum=config.read_quorum,
                write_quorum=config.write_quorum,
                seed=config.seed,
                storage_engine=engine,
                engine_options=options,
            )
        )
        cluster.create_namespace("data")
        return cluster

    # ------------------------------------------------------------------
    # Phase 1: dict-vs-lsm parity
    # ------------------------------------------------------------------
    def _parity_arm(self, engine: str):
        config = self.config
        cluster = self._cluster(engine)
        try:
            rng = random.Random(config.seed)
            observations: List[Tuple] = []
            crash_at = config.parity_ops // 3
            recover_at = 2 * config.parity_ops // 3
            for step in range(config.parity_ops):
                if step == crash_at:
                    cluster.crash_node(1)
                if step == recover_at:
                    cluster.recover_node(1)
                key = f"k{rng.randrange(200):04d}".encode()
                action = rng.random()
                if action < 0.5:
                    result = cluster.put("data", key, f"v{step}".encode())
                elif action < 0.7:
                    result = cluster.get("data", key)
                elif action < 0.8:
                    result = cluster.delete("data", key)
                else:
                    result = cluster.get_range("data", key, key + b"\xff", limit=10)
                observations.append(
                    (
                        result.value,
                        result.latency_seconds,
                        result.node_id,
                        result.keys_touched,
                        result.hinted,
                    )
                )
            contents = dict(cluster.iter_namespace("data"))
            metrics = {
                name: float(value)
                for name, value in cluster.metrics.counters().items()
                if not name.startswith("engine.")
            }
            return observations, contents, metrics
        finally:
            cluster.close()

    def _run_parity(self, result: StorageEngineResult) -> None:
        dict_arm = self._parity_arm("dict")
        lsm_arm = self._parity_arm("lsm")
        result.parity_identical = dict_arm == lsm_arm
        result.parity_ops = self.config.parity_ops
        result.parity_metrics = dict_arm[2]

    # ------------------------------------------------------------------
    # Phase 2: latency sweep across cardinalities
    # ------------------------------------------------------------------
    def _run_sweep(self, result: StorageEngineResult) -> None:
        config = self.config
        for size in config.sweep_sizes:
            cluster = self._cluster("lsm")
            try:
                rows = (
                    (f"k{index:08d}".encode(), f"v{index}".encode())
                    for index in range(size)
                )
                cluster.bulk_load_namespace(
                    "data", rows, memory_budget_bytes=config.memtable_budget_bytes
                )
                rng = random.Random(config.seed + size)
                peak_memtable = 0
                get_latencies: List[float] = []
                range_latencies: List[float] = []
                for _ in range(config.sweep_probes):
                    index = rng.randrange(size)
                    key = f"k{index:08d}".encode()
                    get_latencies.append(
                        cluster.get("data", key).latency_seconds * 1000.0
                    )
                    range_latencies.append(
                        cluster.get_range(
                            "data", key, b"k99999999", limit=10
                        ).latency_seconds
                        * 1000.0
                    )
                    # A write keeps the memtable/WAL path warm mid-sweep.
                    cluster.put("data", key, b"rewrite")
                    peak_memtable = max(
                        peak_memtable,
                        max(
                            int(engine.gauges().get("memtable_bytes", 0))
                            for engine in cluster.engines.values()
                        ),
                    )
                gauges = [engine.gauges() for engine in cluster.engines.values()]
                result.sweep.append(
                    SweepPoint(
                        keys=size,
                        get_mean_ms=sum(get_latencies) / len(get_latencies),
                        get_p99_ms=percentile(get_latencies, 0.99),
                        range_mean_ms=sum(range_latencies) / len(range_latencies),
                        segment_count=int(sum(g["segment_count"] for g in gauges)),
                        segment_bytes=int(sum(g["segment_bytes"] for g in gauges)),
                        peak_memtable_bytes=peak_memtable,
                    )
                )
            finally:
                cluster.close()

    # ------------------------------------------------------------------
    # Phase 3: acked-write recovery audit
    # ------------------------------------------------------------------
    def _recovery_arm(self, engine: str):
        config = self.config
        cluster = self._cluster(engine)
        try:
            acked: Dict[bytes, bytes] = {}
            for index in range(config.recovery_writes):
                key = f"k{index:05d}".encode()
                value = f"v{index}".encode()
                cluster.put("data", key, value)
                acked[key] = value
            cluster.crash_node(2)
            for index in range(config.recovery_writes_during_outage):
                key = f"x{index:05d}".encode()
                value = f"w{index}".encode()
                cluster.put("data", key, value)
                acked[key] = value
            report = cluster.recover_node(2)
            lost = sum(
                1
                for key, value in acked.items()
                if cluster.get("data", key).value != value
            )
            recovery = cluster.last_engine_recovery
            return {
                "acknowledged": len(acked),
                "lost": lost,
                "hints_replayed": report.hints_replayed,
                "keys_copied": report.keys_copied,
                "segments_loaded": recovery.segments_loaded if recovery else 0,
                "wal_records_replayed": (
                    recovery.wal_records_replayed if recovery else 0
                ),
            }
        finally:
            cluster.close()

    def _run_recovery(self, result: StorageEngineResult) -> None:
        dict_arm = self._recovery_arm("dict")
        lsm_arm = self._recovery_arm("lsm")
        result.recovery_acknowledged = lsm_arm["acknowledged"]
        result.recovery_lost = lsm_arm["lost"] + dict_arm["lost"]
        result.recovery_hints_replayed = lsm_arm["hints_replayed"]
        result.recovery_oracle_match = (
            dict_arm["hints_replayed"] == lsm_arm["hints_replayed"]
            and dict_arm["keys_copied"] == lsm_arm["keys_copied"]
        )
        result.recovery_segments_loaded = lsm_arm["segments_loaded"]
        result.recovery_wal_records_replayed = lsm_arm["wal_records_replayed"]

    # ------------------------------------------------------------------
    # Phase 4: budgeted bulk load
    # ------------------------------------------------------------------
    def _run_bulk(self, result: StorageEngineResult) -> None:
        config = self.config
        rng = random.Random(config.seed + 99)
        rows = [
            (f"k{rng.randrange(config.bulk_rows):06d}".encode(), f"v{i}".encode())
            for i in range(config.bulk_rows)
        ]
        reference = self._cluster("dict")
        try:
            for key, value in rows:
                reference.load("data", key, value)
            expected = dict(reference.iter_namespace("data"))
        finally:
            reference.close()
        cluster = self._cluster("lsm")
        try:
            cluster.bulk_load_namespace(
                "data", iter(rows), memory_budget_bytes=config.bulk_budget_bytes
            )
            result.bulk_rows = len(rows)
            result.bulk_spill_count = sum(
                getattr(engine, "bulk_spill_count", 0)
                for engine in cluster.engines.values()
            )
            result.bulk_match = dict(cluster.iter_namespace("data")) == expected
        finally:
            cluster.close()

    # ------------------------------------------------------------------
    def run(self) -> StorageEngineResult:
        result = StorageEngineResult(
            parity_identical=False, parity_ops=0, parity_metrics={}
        )
        self._run_parity(result)
        self._run_sweep(result)
        self._run_recovery(result)
        self._run_bulk(result)
        return result


def print_result(result: StorageEngineResult) -> None:
    print("dict-vs-lsm parity (values, latencies, nodes, op counts):",
          "IDENTICAL" if result.parity_identical else "DIVERGED")
    print()
    print("LSM latency sweep (simulated; flat = scale-independent):")
    print(
        format_table(
            ("keys", "get mean ms", "get p99 ms", "range mean ms",
             "segments", "seg bytes", "peak memtable B"),
            [point.row() for point in result.sweep],
        )
    )
    print(f"  latency ratio largest/smallest: {result.sweep_latency_ratio:.3f}")
    print()
    print("crash-recovery audit:")
    print(f"  acknowledged writes: {result.recovery_acknowledged}")
    print(f"  lost after recovery: {result.recovery_lost}")
    print(f"  segments loaded:     {result.recovery_segments_loaded}")
    print(f"  WAL records replayed: {result.recovery_wal_records_replayed}")
    print(f"  hints replayed:      {result.recovery_hints_replayed}"
          f" (oracle match: {result.recovery_oracle_match})")
    print()
    print("budgeted bulk load:")
    print(f"  rows: {result.bulk_rows}  spills: {result.bulk_spill_count}"
          f"  contents match per-record loads: {result.bulk_match}")


def main(argv: Optional[List[str]] = None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    config = StorageEngineConfig.quick() if quick else StorageEngineConfig()
    result = StorageEngineExperiment(config).run()
    print_result(result)
    save_results("storage_engine", result.summary_payload())

    failures: List[str] = []
    if not result.parity_identical:
        failures.append("dict and lsm engine arms diverged")
    if result.recovery_lost:
        failures.append(f"{result.recovery_lost} acknowledged writes lost")
    if not result.recovery_oracle_match:
        failures.append("repair traffic differs from the dict-engine oracle")
    if result.recovery_segments_loaded + result.recovery_wal_records_replayed == 0:
        failures.append("recovery restored nothing from disk")
    if not (0.8 <= result.sweep_latency_ratio <= 1.25):
        failures.append(
            f"per-query latency not flat across sweep "
            f"(ratio {result.sweep_latency_ratio:.3f})"
        )
    budget = config.memtable_budget_bytes
    for point in result.sweep:
        if point.peak_memtable_bytes > budget + 1024:
            failures.append(
                f"memtable exceeded budget at {point.keys} keys "
                f"({point.peak_memtable_bytes} > {budget})"
            )
    if not result.bulk_spill_count:
        failures.append("budgeted bulk load never spilled")
    if not result.bulk_match:
        failures.append("bulk-loaded contents differ from per-record loads")
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print()
    print("ok: all storage-engine invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
