"""Deterministic chaos soak: a seeded fault schedule under live traffic.

The failover benchmark measures one crash; this harness soaks the whole
fault plane.  A fixed-shape, seed-parameterised schedule walks the cluster
through four segments — crash/recover, an asymmetric minority partition,
a flaky + slow + delayed stretch, and a second partition — under
closed-loop TPC-W traffic, then heals everything and lets the system
settle.  The same schedule runs twice with identical seeds: once with the
**naive** immediate-retry client (the legacy loop) and once with the full
resilience policy (derived timeouts, jittered backoff under a retry
budget, circuit breakers).

Five invariants must hold on every run, whatever the seed:

1. **No acknowledged write is ever lost** — a metronome of audited quorum
   writes is read back after the run (the R+W>N guarantee, measured).
2. **No static-bound violation** — scale-independence does not bend under
   faults.
3. **Read-your-writes** — an acknowledged probe write is immediately read
   back through the read quorum; a successful read must see it.
4. **Post-heal convergence** — after healing, recovery, and one
   anti-entropy pass, no replica of any key disagrees: the divergence
   scan returns zero.
5. **Availability floor** — the resilient arm completes at least the
   configured fraction of attempted interactions despite the schedule.

The paired arms add the headline comparison: during the partition
windows the resilient client must fail **strictly fewer** interactions
than the naive client, while both arms complete identical work on the
fault-free warmup prefix (the pairing is honest).

Everything is deterministic: the schedule shape is fixed, and the seed
drives traffic, latency draws, backoff jitter, and per-link drop draws.

Run via ``PYTHONPATH=src python -m repro.bench.bench_chaos_soak``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..errors import UnavailableError
from ..kvstore.cluster import ClusterConfig, KeyValueCluster
from ..obs.flightrec import ForensicsConfig
from ..obs.incident import IncidentReport
from ..prediction.slo import ServiceLevelObjective
from ..replication.faults import FaultSpec
from ..replication.store import record_seq
from ..resilience.policy import ResilienceConfig
from ..serving.simulator import ServingConfig, ServingReport, ServingSimulation
from ..workloads.base import WorkloadScale
from ..workloads.tpcw.workload import TpcwWorkload
from .bench_failover_slo import WriteAudit


@dataclass(frozen=True)
class ChaosSoakConfig:
    """Cluster, traffic, schedule shape, and invariant thresholds."""

    storage_nodes: int = 5
    replication: int = 3
    read_quorum: int = 2
    write_quorum: int = 2
    node_capacity_ops_per_second: float = 400.0
    users_per_node: int = 20
    items_total: int = 80
    clients: int = 16
    think_time_seconds: float = 0.3
    #: Fault-free prefix used for the paired-arm identity check.
    warmup_seconds: float = 6.0
    #: Length of the fault window; every fault heals before it ends.
    fault_seconds: float = 18.0
    #: Quiet tail after the last heal (drain + convergence headroom).
    settle_seconds: float = 6.0
    audit_interval_seconds: float = 0.25
    probe_interval_seconds: float = 0.5
    #: Minimum fraction of attempted interactions the resilient arm must
    #: complete across the whole run, faults included.
    availability_floor: float = 0.5
    slo: ServiceLevelObjective = field(
        default_factory=lambda: ServiceLevelObjective(
            quantile=0.99, latency_seconds=0.5, interval_seconds=5.0
        )
    )
    #: Run the resilient arm with latency forensics (flight recorder +
    #: critical-path analysis + breaker watch) and emit an incident
    #: report reconstructing the injected schedule.  Pure observation:
    #: tracing consumes no RNG, so the paired-prefix identity with the
    #: naive arm is unaffected.
    forensics_enabled: bool = True
    seed: int = 11

    @property
    def duration_seconds(self) -> float:
        return self.warmup_seconds + self.fault_seconds + self.settle_seconds

    def faults(self) -> List[FaultSpec]:
        """The four-segment schedule, scaled into the fault window.

        Offsets are expressed against the canonical 18-second window and
        scaled by ``fault_seconds / 18`` so ``--quick`` compresses the
        same shape instead of dropping segments.  The final heal lands at
        15.8 units — strictly inside the window — so the settle tail
        always starts healthy.
        """
        w = self.warmup_seconds
        unit = self.fault_seconds / 18.0

        def at(offset: float) -> float:
            return w + offset * unit

        return [
            # Segment A: the classic crash/recover pair.
            FaultSpec(time=at(0.5), kind="crash", node_id=1),
            FaultSpec(time=at(3.5), kind="recover", node_id=1),
            # Segment B: minority partition — nodes 2,3 cut off from the
            # client and the rest of the cluster (~30% of keys lose their
            # read/write quorum at N=3, R=W=2 over 5 nodes).
            FaultSpec(time=at(5.0), kind="partition", groups=((2, 3),)),
            FaultSpec(time=at(6.8), kind="heal"),
            # Segment C: cloud weather — a flaky link, a straggler, and a
            # delay that exceeds the client's static RPC deadline.
            FaultSpec(time=at(8.0), kind="flaky", node_id=4, probability=0.12),
            FaultSpec(time=at(8.5), kind="slow", node_id=0, factor=4.0),
            FaultSpec(time=at(9.0), kind="delay", node_id=2, delay_seconds=0.6),
            FaultSpec(time=at(12.0), kind="flaky", node_id=4, probability=0.0),
            FaultSpec(time=at(12.5), kind="restore", node_id=0),
            FaultSpec(time=at(13.0), kind="delay", node_id=2, delay_seconds=0.0),
            # Segment D: a second partition, different minority.
            FaultSpec(time=at(14.0), kind="partition", groups=((0, 1),)),
            FaultSpec(time=at(15.8), kind="heal"),
        ]

    def partition_windows(self) -> List[Tuple[float, float]]:
        """(start, end) of the quorum-loss windows the dominance check uses."""
        w = self.warmup_seconds
        unit = self.fault_seconds / 18.0
        return [
            (w + 5.0 * unit, w + 6.8 * unit),
            (w + 14.0 * unit, w + 15.8 * unit),
        ]

    def resilient_policy(self) -> ResilienceConfig:
        """The full-featured client the soak is meant to vindicate."""
        return ResilienceConfig(
            max_attempts=10,
            backoff_base_seconds=0.08,
            backoff_max_seconds=2.0,
            budget_capacity=40.0,
            budget_refill_per_second=8.0,
            derive_timeouts=True,
            breakers_enabled=True,
            seed=self.seed,
        )

    def naive_policy(self) -> ResilienceConfig:
        """The legacy immediate-retry loop, attempt-count matched."""
        return ResilienceConfig(max_attempts=10, naive=True, seed=self.seed)

    def quick(self) -> "ChaosSoakConfig":
        """CI-smoke sizing: same schedule shape, compressed."""
        return replace(
            self,
            users_per_node=10,
            items_total=50,
            clients=8,
            warmup_seconds=3.0,
            fault_seconds=9.0,
            settle_seconds=4.0,
            audit_interval_seconds=0.4,
            probe_interval_seconds=0.8,
        )


class ReadYourWritesProbe:
    """Put-then-get probes asserting session monotonicity through faults.

    Each tick writes a fresh key through the write quorum and — when the
    write was acknowledged — immediately reads it back through the read
    quorum.  With R+W>N the quorums intersect, so a successful read MUST
    return the just-written value; returning anything else is a
    consistency violation, not a latency problem.  Reads the network
    refuses (quorum loss, dropped messages) are skipped, not counted:
    unavailability is the availability invariant's business.
    """

    def __init__(self, cluster: KeyValueCluster, namespace: str = "chaos_ryw"):
        self.cluster = cluster
        self.namespace = namespace
        cluster.create_namespace(namespace)
        self.acknowledged: List[Tuple[bytes, bytes]] = []
        self.rejected = 0
        self.skipped_reads = 0
        self.violations = 0
        self._counter = 0

    def schedule(self, sim, interval_seconds: float, until: float) -> None:
        def tick(s) -> None:
            self._probe(s.now)
            if s.now + interval_seconds <= until:
                s.schedule_at(s.now + interval_seconds, tick, name="ryw-probe")

        sim.schedule_at(interval_seconds, tick, name="ryw-probe")

    def _probe(self, now: float) -> None:
        self._counter += 1
        key = f"probe{self._counter:08d}".encode()
        value = f"probe-at-{now:.3f}".encode()
        try:
            self.cluster.put(self.namespace, key, value, sim_time=now)
        except UnavailableError:
            self.rejected += 1
            return
        self.acknowledged.append((key, value))
        try:
            result = self.cluster.get(self.namespace, key, sim_time=now)
        except UnavailableError:
            self.skipped_reads += 1
            return
        if result.value != value:
            self.violations += 1

    def final_verify(self) -> int:
        """Re-read every acknowledged probe after the run has healed."""
        for key, expected in self.acknowledged:
            result = self.cluster.get(self.namespace, key)
            if result.value != expected:
                self.violations += 1
        return self.violations


def replica_divergence(cluster: KeyValueCluster) -> int:
    """Count keys whose preference-list replicas disagree.

    For every key in every namespace, every node on the key's current
    preference list must hold a record with the newest sequence number
    any replica holds.  After heal + recovery + one anti-entropy pass
    this must be zero — anything else means convergence silently failed.
    """
    replication = cluster.replication
    divergent = 0
    namespaces: set = set()
    for store in replication.stores.values():
        namespaces.update(store.namespaces())
    node_ids = sorted(replication.stores)
    for namespace in sorted(namespaces):
        def tagged(node_id: int):
            return (
                (key, record, node_id)
                for key, record in replication.stores[
                    node_id
                ].iter_range_records(namespace, None, None)
            )

        merged = heapq.merge(
            *(tagged(node_id) for node_id in node_ids),
            key=lambda entry: entry[0],
        )
        current: Optional[bytes] = None
        copies: Dict[int, int] = {}

        def judge() -> int:
            if current is None:
                return 0
            owners = replication.preference_list(namespace, current)
            newest = max(copies.values())
            for owner in owners:
                if copies.get(owner) != newest:
                    return 1
            return 0

        for key, record, node_id in merged:
            if key != current:
                divergent += judge()
                current, copies = key, {}
            copies[node_id] = record_seq(record)
        divergent += judge()
    return divergent


@dataclass
class ChaosArmResult:
    """One arm's run plus its post-run verification evidence."""

    name: str
    report: ServingReport
    audit: Dict[str, int]
    ryw_violations: int
    ryw_acknowledged: int
    ryw_skipped_reads: int
    post_heal_divergence: int
    #: Interactions completed with arrival inside the fault-free warmup.
    prefix_completed: int
    #: Failed interactions whose arrival fell inside a partition window.
    window_failures: int
    #: Fleet totals of the client-side resilience counters.
    resilience_counters: Dict[str, float]
    #: Incident report (forensics-enabled arms only).
    incident: Optional[IncidentReport] = None


@dataclass
class ChaosSoakResult:
    """Both arms of one seed plus the judged invariants."""

    config: ChaosSoakConfig
    arms: Dict[str, ChaosArmResult]

    def invariants(self) -> Dict[str, bool]:
        resilient = self.arms["resilient"]
        naive = self.arms["naive"]
        checks = {
            "no_lost_writes": all(
                arm.audit["lost"] == 0 for arm in self.arms.values()
            ),
            "no_bound_violations": all(
                arm.report.bound_violations == 0 for arm in self.arms.values()
            ),
            "read_your_writes": all(
                arm.ryw_violations == 0 for arm in self.arms.values()
            ),
            "post_heal_convergence": all(
                arm.post_heal_divergence == 0 for arm in self.arms.values()
            ),
            "availability_floor": (
                resilient.report.availability
                >= self.config.availability_floor
            ),
        }
        checks["paired_prefix_identical"] = (
            resilient.prefix_completed == naive.prefix_completed
            and resilient.prefix_completed > 0
        )
        checks["resilient_dominates"] = (
            resilient.window_failures < naive.window_failures
        )
        if resilient.incident is not None:
            # Forensics invariants: the incident report must reconstruct
            # the injected schedule (every crash/partition window carries
            # ≥1 retained trace and ≥1 correlated breaker transition or
            # SLO alert), and every retained trace's critical-path shares
            # must partition its latency exactly.
            checks["incident_reconstructs_schedule"] = (
                resilient.incident.reconstructs_schedule()
            )
            forensics = resilient.report.forensics
            checks["segment_shares_sum_to_one"] = all(
                abs(sum(trace.breakdown.shares.values()) - 1.0) <= 1e-6
                for trace in forensics.recorder.traces
                if trace.breakdown is not None
            )
        return checks

    @property
    def holds(self) -> bool:
        return all(self.invariants().values())

    def payload(self) -> Dict[str, object]:
        return {
            "config": {
                "storage_nodes": self.config.storage_nodes,
                "replication": self.config.replication,
                "read_quorum": self.config.read_quorum,
                "write_quorum": self.config.write_quorum,
                "clients": self.config.clients,
                "duration_seconds": self.config.duration_seconds,
                "availability_floor": self.config.availability_floor,
                "seed": self.config.seed,
            },
            "invariants": self.invariants(),
            "arms": {
                name: {
                    "availability": arm.report.availability,
                    "completed": arm.report.completed,
                    "failed": arm.report.failed,
                    "bound_violations": arm.report.bound_violations,
                    "write_audit": arm.audit,
                    "ryw_violations": arm.ryw_violations,
                    "ryw_acknowledged": arm.ryw_acknowledged,
                    "ryw_skipped_reads": arm.ryw_skipped_reads,
                    "post_heal_divergence": arm.post_heal_divergence,
                    "prefix_completed": arm.prefix_completed,
                    "window_failures": arm.window_failures,
                    "resilience": arm.resilience_counters,
                }
                for name, arm in self.arms.items()
            },
            "incident": (
                self.arms["resilient"].incident.payload()
                if self.arms["resilient"].incident is not None
                else None
            ),
        }


#: Client-side counters totalled per arm for reports and regression.
_RESILIENCE_COUNTERS = (
    "resilience.retries",
    "resilience.failures",
    "resilience.timeouts",
    "resilience.backoff_seconds",
    "resilience.budget_exhausted",
    "resilience.breaker_fast_fails",
    "resilience.hedged_reads",
    "client.rpc_timeouts",
)


class ChaosSoakExperiment:
    """Run the paired naive / resilient arms of one seeded soak."""

    def __init__(self, config: Optional[ChaosSoakConfig] = None):
        self.config = config or ChaosSoakConfig()

    def _fresh_database(self, policy: ResilienceConfig) -> Tuple[PiqlDatabase, TpcwWorkload]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                replication=config.replication,
                read_quorum=config.read_quorum,
                write_quorum=config.write_quorum,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=config.seed,
            ),
            resilience=policy,
        )
        workload = TpcwWorkload()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=7,
            ),
        )
        # Both arms must draw identical latency samples on the fault-free
        # prefix; setup consumes a workload-dependent number of draws, so
        # re-anchor the models before traffic starts.
        db.cluster.reseed_latency_models(config.seed)
        return db, workload

    def run_arm(
        self, name: str, policy: ResilienceConfig, forensics: bool = False
    ) -> ChaosArmResult:
        config = self.config
        db, workload = self._fresh_database(policy)
        serving_config = ServingConfig(
            mode="closed",
            clients=config.clients,
            think_time_seconds=config.think_time_seconds,
            duration_seconds=config.duration_seconds,
            slo=config.slo,
            faults=config.faults(),
            # Forensics needs telemetry for the SLO-alert correlation and
            # the latency-breakdown scrape.
            telemetry_enabled=forensics,
            forensics=ForensicsConfig() if forensics else None,
            seed=config.seed,
        )
        simulation = ServingSimulation(db, workload, serving_config)
        audit = WriteAudit(db.cluster, namespace="chaos_audit")
        audit.schedule(
            simulation.sim, config.audit_interval_seconds, config.duration_seconds
        )
        probe = ReadYourWritesProbe(db.cluster)
        probe.schedule(
            simulation.sim, config.probe_interval_seconds, config.duration_seconds
        )
        report = simulation.run()

        # Post-run convergence: the schedule healed everything, but make
        # the precondition explicit (idempotent), run one fleet-wide
        # anti-entropy pass, then scan for any disagreeing replica.
        cluster = db.cluster
        cluster.network.heal()
        for node in cluster.nodes:
            if not node.up:
                cluster.recover_node(node.node_id)
        cluster.replication.rebalance(cluster.up_node_ids())
        divergence = replica_divergence(cluster)

        audit_result = audit.verify()
        ryw_violations = probe.final_verify()
        prefix_completed = sum(
            1
            for record in report.log.records
            if record.arrival_seconds < config.warmup_seconds
        )
        windows = config.partition_windows()
        window_failures = sum(
            1
            for arrival, _ in report.log.failures
            if any(start <= arrival < end for start, end in windows)
        )
        counters: Dict[str, float] = {key: 0.0 for key in _RESILIENCE_COUNTERS}
        for server in simulation.driver.servers:
            registry = server.db.client.stats.metrics
            for key in _RESILIENCE_COUNTERS:
                counters[key] += registry.value(key)
        incident: Optional[IncidentReport] = None
        if report.forensics is not None:
            incident = report.incident_report(
                title=f"chaos soak (seed {config.seed}, {name} arm)"
            )
        return ChaosArmResult(
            name=name,
            report=report,
            audit=audit_result,
            ryw_violations=ryw_violations,
            ryw_acknowledged=len(probe.acknowledged),
            ryw_skipped_reads=probe.skipped_reads,
            post_heal_divergence=divergence,
            prefix_completed=prefix_completed,
            window_failures=window_failures,
            resilience_counters=counters,
            incident=incident,
        )

    def run(self) -> ChaosSoakResult:
        config = self.config
        arms = {
            "naive": self.run_arm("naive", config.naive_policy()),
            "resilient": self.run_arm(
                "resilient",
                config.resilient_policy(),
                forensics=config.forensics_enabled,
            ),
        }
        return ChaosSoakResult(config=config, arms=arms)


def run_chaos_soak(config: Optional[ChaosSoakConfig] = None) -> ChaosSoakResult:
    """Convenience wrapper: one seeded soak, both arms."""
    return ChaosSoakExperiment(config).run()
