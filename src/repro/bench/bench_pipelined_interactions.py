"""Pipelined-interactions benchmark: serial versus asynchronous sessions.

The PIQL performance argument (Section 7.1) makes each *query* internally
parallel; this experiment measures the next lever up — overlapping the
*independent queries of one web interaction* through the asynchronous
session API (``session.submit`` / ``session.gather``), so a TPC-W page
render pays the max of its branches instead of their sum.

Two phases, both on the TPC-W ordering mix:

* **paired replay** — one emulated application server replays the same
  sequence of interaction plans twice from the same seed on two fresh,
  identically seeded databases: once serially (stage latencies add) and
  once through a session (stages cost their slowest branch).  Because both
  arms issue exactly the same queries with the same parameters, the
  per-interaction *per-query operation counts must match exactly* — the
  static bounds are about work requested, and pipelining only changes how
  latencies compose.  The replay verifies that and yields the
  per-interaction-type speedups.
* **closed loop** — a think-time population drives the cluster through the
  serving tier's event kernel, once with classic blocking servers and once
  with pipelined servers.  This shows the end-to-end effect on response
  percentiles when many overlapped clients contend for the same storage
  nodes (closed loops also *complete more work* when responses get faster).

Run with ``PYTHONPATH=src python -m repro.bench.bench_pipelined_interactions``
(add ``--quick`` for the CI-sized configuration).  Results are written to
``results/pipelined_interactions.json``.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..kvstore.cluster import ClusterConfig
from ..serving.simulator import ServingConfig, ServingSimulation
from ..workloads.base import WorkloadScale
from ..workloads.tpcw.workload import TpcwWorkload
from .reporting import format_table, percentile, save_results


@dataclass(frozen=True)
class PipelinedInteractionsConfig:
    """Cluster, workload, and traffic shape of the comparison."""

    storage_nodes: int = 6
    node_capacity_ops_per_second: float = 4000.0
    users_per_node: int = 30
    items_total: int = 100
    #: Paired-replay phase: interactions replayed per arm by one server.
    replay_interactions: int = 400
    #: Closed-loop phase: population, think time, and horizon.
    clients: int = 30
    think_time_seconds: float = 0.5
    duration_seconds: float = 30.0
    seed: int = 11

    def quick(self) -> "PipelinedInteractionsConfig":
        """A CI-smoke-sized variant (seconds of wall-clock time)."""
        return replace(
            self,
            users_per_node=10,
            items_total=50,
            replay_interactions=80,
            clients=10,
            duration_seconds=6.0,
        )


@dataclass(frozen=True)
class ReplayRecord:
    """One interaction of the paired replay, as one arm saw it."""

    name: str
    latency_seconds: float
    query_operations: Tuple[Tuple[str, int], ...]


@dataclass
class PipelinedInteractionsResult:
    """Both phases' measurements for both arms."""

    config: PipelinedInteractionsConfig
    replay: Dict[str, List[ReplayRecord]]
    closed_loop: Dict[str, Dict[str, float]]

    # ------------------------------------------------------------------
    # Replay-phase summaries
    # ------------------------------------------------------------------
    def replay_operations_identical(self) -> bool:
        """Whether every replayed interaction did identical per-query work."""
        serial, pipelined = self.replay["serial"], self.replay["pipelined"]
        return len(serial) == len(pipelined) and all(
            a.name == b.name and a.query_operations == b.query_operations
            for a, b in zip(serial, pipelined)
        )

    def replay_percentile_ms(self, arm: str, fraction: float) -> float:
        return percentile(
            [record.latency_seconds for record in self.replay[arm]], fraction
        ) * 1000.0

    def replay_by_interaction(self) -> List[Tuple[str, int, float, float, float]]:
        """Rows of (name, count, serial mean ms, pipelined mean ms, speedup)."""
        sums: Dict[str, List[float]] = {}
        for arm_index, arm in enumerate(("serial", "pipelined")):
            for record in self.replay[arm]:
                entry = sums.setdefault(record.name, [0, 0.0, 0.0])
                if arm_index == 0:
                    entry[0] += 1
                    entry[1] += record.latency_seconds
                else:
                    entry[2] += record.latency_seconds
        rows = []
        for name in sorted(sums):
            count, serial_total, pipelined_total = sums[name]
            serial_ms = serial_total / count * 1000.0
            pipelined_ms = pipelined_total / count * 1000.0
            rows.append(
                (name, count, serial_ms, pipelined_ms,
                 serial_ms / pipelined_ms if pipelined_ms > 0 else 1.0)
            )
        return rows

    def summary_payload(self) -> Dict:
        return {
            "config": {
                "storage_nodes": self.config.storage_nodes,
                "clients": self.config.clients,
                "think_time_seconds": self.config.think_time_seconds,
                "duration_seconds": self.config.duration_seconds,
                "replay_interactions": self.config.replay_interactions,
                "seed": self.config.seed,
            },
            "replay": {
                "operations_identical": self.replay_operations_identical(),
                "p50_ms": {
                    arm: self.replay_percentile_ms(arm, 0.50)
                    for arm in ("serial", "pipelined")
                },
                "p99_ms": {
                    arm: self.replay_percentile_ms(arm, 0.99)
                    for arm in ("serial", "pipelined")
                },
                "by_interaction": [
                    {
                        "name": name,
                        "count": count,
                        "serial_mean_ms": serial_ms,
                        "pipelined_mean_ms": pipelined_ms,
                        "speedup": speedup,
                    }
                    for name, count, serial_ms, pipelined_ms, speedup
                    in self.replay_by_interaction()
                ],
            },
            "closed_loop": self.closed_loop,
        }


class PipelinedInteractionsExperiment:
    """Run both phases of the serial-versus-pipelined comparison."""

    def __init__(self, config: Optional[PipelinedInteractionsConfig] = None):
        self.config = config or PipelinedInteractionsConfig()

    # ------------------------------------------------------------------
    # Shared setup
    # ------------------------------------------------------------------
    def _fresh_database(self) -> Tuple[PiqlDatabase, TpcwWorkload]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=config.seed,
            )
        )
        workload = TpcwWorkload()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        # Paired arms replay the same service-time noise so the measured
        # difference is the arms' latency composition, not luck.
        db.cluster.reseed_latency_models(config.seed)
        return db, workload

    # ------------------------------------------------------------------
    # Phase 1: paired replay
    # ------------------------------------------------------------------
    def run_replay(self, pipelined: bool) -> List[ReplayRecord]:
        config = self.config
        db, workload = self._fresh_database()
        db.reset_measurements()
        rng = random.Random(config.seed + 1)
        session = db.session() if pipelined else None
        records: List[ReplayRecord] = []
        for _ in range(config.replay_interactions):
            plan = workload.interaction_plan(db, rng)
            result = workload.run_plan(db, plan, session=session)
            records.append(
                ReplayRecord(
                    name=result.name,
                    latency_seconds=result.latency_seconds,
                    query_operations=tuple(sorted(result.query_operations.items())),
                )
            )
        return records

    # ------------------------------------------------------------------
    # Phase 2: closed loop
    # ------------------------------------------------------------------
    def run_closed_loop(self, pipelined: bool) -> Dict[str, float]:
        config = self.config
        db, workload = self._fresh_database()
        simulation = ServingSimulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=config.clients,
                think_time_seconds=config.think_time_seconds,
                duration_seconds=config.duration_seconds,
                pipelined=pipelined,
                seed=config.seed,
            ),
        )
        report = simulation.run()
        coalesced = sum(
            server.db.client.stats.coalesced_reads
            for server in simulation.driver.servers
        )
        return {
            "completed": float(report.completed),
            "throughput_per_second": report.throughput,
            "p50_ms": report.response_percentile_ms(0.50),
            "p99_ms": report.response_percentile_ms(0.99),
            "coalesced_reads": float(coalesced),
        }

    # ------------------------------------------------------------------
    # Whole experiment
    # ------------------------------------------------------------------
    def run(self) -> PipelinedInteractionsResult:
        replay = {
            arm: self.run_replay(arm == "pipelined")
            for arm in ("serial", "pipelined")
        }
        closed_loop = {
            arm: self.run_closed_loop(arm == "pipelined")
            for arm in ("serial", "pipelined")
        }
        return PipelinedInteractionsResult(
            config=self.config, replay=replay, closed_loop=closed_loop
        )


def print_result(result: PipelinedInteractionsResult) -> None:
    print("== paired replay (one application server, identical seeds) ==")
    print(
        format_table(
            ["interaction", "count", "serial mean ms", "pipelined mean ms",
             "speedup"],
            result.replay_by_interaction(),
        )
    )
    print(
        f"per-query operation counts identical across arms: "
        f"{result.replay_operations_identical()}"
    )
    print(
        f"replay p50: {result.replay_percentile_ms('serial', 0.5):.2f} ms -> "
        f"{result.replay_percentile_ms('pipelined', 0.5):.2f} ms; "
        f"p99: {result.replay_percentile_ms('serial', 0.99):.2f} ms -> "
        f"{result.replay_percentile_ms('pipelined', 0.99):.2f} ms\n"
    )
    print("== closed loop (think-time population, event kernel) ==")
    rows = [
        (
            arm,
            result.closed_loop[arm]["completed"],
            result.closed_loop[arm]["throughput_per_second"],
            result.closed_loop[arm]["p50_ms"],
            result.closed_loop[arm]["p99_ms"],
            result.closed_loop[arm]["coalesced_reads"],
        )
        for arm in ("serial", "pipelined")
    ]
    print(
        format_table(
            ["arm", "completed", "throughput/s", "p50 ms", "p99 ms",
             "coalesced reads"],
            rows,
        )
    )


def main(argv: Optional[List[str]] = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    config = PipelinedInteractionsConfig()
    if "--quick" in args:
        config = config.quick()
    result = PipelinedInteractionsExperiment(config).run()
    print_result(result)
    save_results("pipelined_interactions", result.summary_payload())


if __name__ == "__main__":
    main()
