"""Trace-enabled serving smoke run: strict bound audit + exported traces.

CI runs this as a separate job: a short closed-loop TPC-W serving window
with the query tracer attached to every emulated application server and
the shared bound auditor kept in **strict** mode — a single query
exceeding its static operation bound raises mid-run and fails the job, so
the paper's scale-independence guarantee is asserted live on every push,
not just in unit tests.

The span trees recorded by the app servers are exported in Chrome
trace-event format to ``results/serving_trace.json`` and uploaded as a
build artifact: download it and load it into ``chrome://tracing`` (or
https://ui.perfetto.dev) to scrub through the run's interactions.

Run with ``PYTHONPATH=src python -m repro.bench.trace_smoke``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..engine.database import PiqlDatabase
from ..kvstore.cluster import ClusterConfig
from ..obs.trace import Span
from ..obs.export import write_chrome_trace
from ..serving.simulator import ServingConfig, ServingSimulation
from ..workloads.base import WorkloadScale
from ..workloads.tpcw.workload import TpcwWorkload

SEED = 17


def main() -> None:
    db = PiqlDatabase.simulated(
        ClusterConfig(storage_nodes=4, seed=SEED)
    )
    workload = TpcwWorkload()
    workload.setup(
        db,
        WorkloadScale(
            storage_nodes=2, users_per_node=10, items_total=200, seed=SEED
        ),
    )
    db.reset_measurements()
    # Enabled before the simulation builds its app servers: `new_client`
    # views inherit tracing, so every server records its own span trees.
    db.enable_tracing(keep=32)

    simulation = ServingSimulation(
        db,
        workload,
        ServingConfig(
            mode="closed",
            clients=10,
            think_time_seconds=0.5,
            duration_seconds=5.0,
            pipelined=True,
            strict_audit=True,
            seed=SEED,
        ),
    )
    report = simulation.run()

    roots: List[Span] = list(db.tracer.roots)
    for server in simulation.driver.servers:
        tracer = server.db.tracer
        if tracer is not None:
            roots.extend(tracer.roots)

    print(
        f"serving smoke: {report.completed} interactions completed in "
        f"{report.duration_seconds:.0f}s simulated "
        f"({report.availability * 100:.1f}% availability)"
    )
    print(
        f"bound auditor (strict): {report.audited} queries audited, "
        f"{report.bound_violations} violations"
    )
    assert report.audited > 0, "the auditor saw no queries — wiring broken"
    assert report.bound_violations == 0

    out = Path("results")
    out.mkdir(exist_ok=True)
    path = out / "serving_trace.json"
    write_chrome_trace(str(path), roots)
    print(f"exported {len(roots)} span trees to {path}")


if __name__ == "__main__":
    main()
