"""Failover benchmark: SLO compliance through a crash-and-recover timeline.

The replication tier's reason to exist is the scenario this experiment
measures: a storage node dies under live traffic.  With real replica
copies and quorum reads/writes (``N=3, R=W=2``) the cluster must

* keep serving every read and acknowledge every write while the node is
  down (surviving replicas satisfy the quorums; the down replica's writes
  become hints),
* degrade visibly — the survivors absorb the dead node's share of the
  traffic, so p99 rises during the crash window — and
* recover once the node returns, replays its hints, and anti-entropy
  repair completes.

The experiment runs the same open-loop TPC-W timeline twice with the same
seed — once healthy end to end (the baseline) and once with a crash /
recover fault pair — so the failover cost is read *relative to the paired
baseline*, cancelling ordinary load noise.  A write-audit stream issues an
acknowledged ``put`` every ``audit_interval_seconds`` throughout the run
and reads every acknowledged key back at the end through the read quorum:
``lost`` must be zero, which is the R+W>N guarantee made measurable.

Run with ``PYTHONPATH=src python -m repro.bench.bench_failover_slo``
(add ``--quick`` for the CI-sized configuration).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..errors import UnavailableError
from ..kvstore.cluster import ClusterConfig, KeyValueCluster
from ..obs.flightrec import ForensicsConfig
from ..obs.incident import IncidentReport
from ..prediction.slo import ServiceLevelObjective
from ..resilience.policy import ResilienceConfig
from ..replication.faults import (
    FaultSpec,
    crash_recover_timeline,
    fault_event_payload,
)
from ..serving.simulator import ServingConfig, ServingReport, ServingSimulation
from ..workloads.base import WorkloadScale
from ..workloads.tpcw.workload import TpcwWorkload
from .bench_serving_slo import PhaseSummary
from .reporting import format_table, percentile, save_results


@dataclass(frozen=True)
class FailoverSloConfig:
    """Cluster, workload, fault timeline, and SLO of the failover scenario."""

    storage_nodes: int = 4
    replication: int = 3
    read_quorum: int = 2
    write_quorum: int = 2
    node_capacity_ops_per_second: float = 400.0
    users_per_node: int = 30
    items_total: int = 100
    app_servers: int = 50
    #: Offered load, tuned to keep the healthy phase comfortably inside the
    #: cluster's capacity now that TPC-W page renders carry their
    #: promotional-banner queries (~7.3 k/v operations per interaction).
    arrival_rate_per_second: float = 65.0
    healthy_seconds: float = 12.0
    crash_seconds: float = 12.0
    recovered_seconds: float = 16.0
    #: Settle time after recovery excluded from the "recovered" phase (the
    #: backlog built during the outage needs a moment to drain).
    drain_seconds: float = 4.0
    crash_node_id: int = 1
    audit_interval_seconds: float = 0.1
    #: Run the failover variant with latency forensics (flight recorder +
    #: breaker watch + telemetry) and attach an ``incident-report/v1``
    #: correlating the crash window with retained traces and alerts.  The
    #: baseline stays bare: forensics costs host wall clock only, never
    #: simulated time, so the paired sim-time comparison is unaffected.
    forensics_enabled: bool = True
    slo: ServiceLevelObjective = field(
        default_factory=lambda: ServiceLevelObjective(
            quantile=0.99, latency_seconds=0.1, interval_seconds=4.0
        )
    )
    seed: int = 3

    @property
    def duration_seconds(self) -> float:
        return self.healthy_seconds + self.crash_seconds + self.recovered_seconds

    @property
    def crash_at(self) -> float:
        return self.healthy_seconds

    @property
    def recover_at(self) -> float:
        return self.healthy_seconds + self.crash_seconds

    def faults(self) -> List[FaultSpec]:
        return crash_recover_timeline(
            self.crash_node_id, self.crash_at, self.recover_at
        )

    def phases(self) -> List[Tuple[str, float, float]]:
        """(name, start, end) of the measured traffic phases."""
        return [
            ("healthy", 0.0, self.crash_at),
            ("degraded", self.crash_at, self.recover_at),
            ("recovered", self.recover_at + self.drain_seconds,
             self.duration_seconds),
        ]

    def quick(self) -> "FailoverSloConfig":
        """A CI-smoke-sized variant (seconds of simulated time)."""
        return replace(
            self,
            users_per_node=10,
            items_total=50,
            arrival_rate_per_second=24.0,
            healthy_seconds=4.0,
            crash_seconds=4.0,
            recovered_seconds=6.0,
            drain_seconds=2.0,
            audit_interval_seconds=0.2,
        )


class WriteAudit:
    """A metronome of acknowledged writes, verified after the run.

    Every tick writes one fresh key through the normal quorum path.  Writes
    the cluster *acknowledged* are remembered; writes it refused (quorum not
    met) are counted as rejected — refusing is allowed, silently losing an
    acknowledged value is not.  :meth:`verify` reads every acknowledged key
    back through the read quorum once the timeline (crash, hints, recovery,
    anti-entropy) has played out.
    """

    def __init__(self, cluster: KeyValueCluster, namespace: str = "failover_audit"):
        self.cluster = cluster
        self.namespace = namespace
        cluster.create_namespace(namespace)
        self.acknowledged: List[Tuple[bytes, bytes]] = []
        self.rejected = 0
        self._counter = 0

    def schedule(self, sim, interval_seconds: float, until: float) -> None:
        def tick(s) -> None:
            self._write(s.now)
            if s.now + interval_seconds <= until:
                s.schedule_at(s.now + interval_seconds, tick, name="write-audit")

        sim.schedule_at(interval_seconds, tick, name="write-audit")

    def _write(self, now: float) -> None:
        self._counter += 1
        key = f"audit{self._counter:08d}".encode()
        value = f"written-at-{now:.3f}".encode()
        try:
            self.cluster.put(self.namespace, key, value, sim_time=now)
        except UnavailableError:
            self.rejected += 1
            return
        self.acknowledged.append((key, value))

    def verify(self) -> Dict[str, int]:
        """Read back every acknowledged write; count the ones that are gone."""
        lost = 0
        for key, expected in self.acknowledged:
            result = self.cluster.get(self.namespace, key)
            if result.value != expected:
                lost += 1
        return {
            "acknowledged": len(self.acknowledged),
            "rejected": self.rejected,
            "lost": lost,
        }


@dataclass
class FailoverSloResult:
    """Both runs of the scenario plus the audit and repair evidence."""

    config: FailoverSloConfig
    reports: Dict[str, ServingReport]
    phase_summaries: Dict[str, List[PhaseSummary]]
    audit: Dict[str, int]
    #: Incident report of the failover run (``None`` when forensics is off).
    incident: Optional[IncidentReport] = None

    def phase(self, run: str, name: str) -> PhaseSummary:
        for summary in self.phase_summaries[run]:
            if summary.phase == name:
                return summary
        raise KeyError(name)

    def degradation_ratio(self) -> float:
        """Crash-window p99 of the failover run over the paired baseline's."""
        baseline = self.phase("baseline", "degraded").p99_ms
        return self.phase("failover", "degraded").p99_ms / max(baseline, 1e-9)

    def recovery_ratio(self) -> float:
        """Post-recovery p99 of the failover run over the paired baseline's."""
        baseline = self.phase("baseline", "recovered").p99_ms
        return self.phase("failover", "recovered").p99_ms / max(baseline, 1e-9)

    def summary_payload(self) -> Dict:
        failover = self.reports["failover"]
        return {
            "config": {
                "storage_nodes": self.config.storage_nodes,
                "replication": self.config.replication,
                "read_quorum": self.config.read_quorum,
                "write_quorum": self.config.write_quorum,
                "arrival_rate_per_second": self.config.arrival_rate_per_second,
                "crash_at": self.config.crash_at,
                "recover_at": self.config.recover_at,
                "slo_ms": self.config.slo.latency_ms,
            },
            "phases": {
                run: [summary.__dict__ for summary in summaries]
                for run, summaries in self.phase_summaries.items()
            },
            "degradation_ratio": self.degradation_ratio(),
            "recovery_ratio": self.recovery_ratio(),
            "availability": failover.availability,
            "faults": [
                fault_event_payload(event)
                for event in failover.fault_events
            ],
            "repair": failover.repair.summary() if failover.repair else None,
            "write_audit": self.audit,
            "incident": (
                self.incident.payload() if self.incident is not None else None
            ),
        }


class FailoverSloExperiment:
    """Run the crash-and-recover timeline against its paired baseline."""

    def __init__(self, config: Optional[FailoverSloConfig] = None):
        self.config = config or FailoverSloConfig()

    def _fresh_database(self) -> Tuple[PiqlDatabase, TpcwWorkload]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                replication=config.replication,
                read_quorum=config.read_quorum,
                write_quorum=config.write_quorum,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=7,
            ),
            # Breakers on *both* variants (the pairing must stay exact):
            # each app server's board sees the dead replica through its own
            # skipped-quorum sightings, which is the breaker evidence the
            # failover incident report correlates with the crash window.
            resilience=ResilienceConfig(
                breakers_enabled=True, seed=config.seed
            ),
        )
        workload = TpcwWorkload()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=7,
            ),
        )
        return db, workload

    def run_variant(
        self, inject_faults: bool
    ) -> Tuple[ServingReport, Optional[Dict[str, int]]]:
        config = self.config
        db, workload = self._fresh_database()
        forensics = inject_faults and config.forensics_enabled
        serving_config = ServingConfig(
            mode="open",
            clients=config.app_servers,
            arrival_rate_per_second=config.arrival_rate_per_second,
            duration_seconds=config.duration_seconds,
            slo=config.slo,
            faults=config.faults() if inject_faults else (),
            telemetry_enabled=forensics,
            forensics=ForensicsConfig() if forensics else None,
            seed=config.seed,
        )
        simulation = ServingSimulation(db, workload, serving_config)
        # Both variants carry the audit metronome so their offered load is
        # identical (paired comparison); only the failover run needs the
        # read-back verification, since the baseline never loses a node.
        audit = WriteAudit(db.cluster)
        audit.schedule(
            simulation.sim,
            config.audit_interval_seconds,
            config.duration_seconds,
        )
        report = simulation.run()
        return report, (audit.verify() if inject_faults else None)

    def summarise_phases(self, report: ServingReport) -> List[PhaseSummary]:
        slo = self.config.slo
        summaries = []
        for name, start, end in self.config.phases():
            responses = [
                record.response_seconds
                for record in report.log.records
                if start <= record.arrival_seconds < end
            ]
            if responses:
                compliant = sum(1 for r in responses if r <= slo.latency_seconds)
                summaries.append(
                    PhaseSummary(
                        phase=name,
                        completed=len(responses),
                        shed=0,
                        p50_ms=percentile(responses, 0.50) * 1000.0,
                        p99_ms=percentile(responses, 0.99) * 1000.0,
                        compliance=compliant / len(responses),
                    )
                )
            else:
                summaries.append(
                    PhaseSummary(
                        phase=name, completed=0, shed=0,
                        p50_ms=0.0, p99_ms=0.0, compliance=1.0,
                    )
                )
        return summaries

    def run(self) -> FailoverSloResult:
        reports: Dict[str, ServingReport] = {}
        summaries: Dict[str, List[PhaseSummary]] = {}
        audit: Dict[str, int] = {}
        for label, inject in (("baseline", False), ("failover", True)):
            report, audit_result = self.run_variant(inject)
            reports[label] = report
            summaries[label] = self.summarise_phases(report)
            if audit_result is not None:
                audit = audit_result
        incident: Optional[IncidentReport] = None
        if reports["failover"].forensics is not None:
            incident = reports["failover"].incident_report(
                title="failover timeline"
            )
        return FailoverSloResult(
            config=self.config,
            reports=reports,
            phase_summaries=summaries,
            audit=audit,
            incident=incident,
        )


def print_result(result: FailoverSloResult) -> None:
    config = result.config
    slo = config.slo
    print(
        f"Failover timeline: crash node {config.crash_node_id} at "
        f"t={config.crash_at:.0f}s, recover at t={config.recover_at:.0f}s "
        f"(N={config.replication}, R={config.read_quorum}, "
        f"W={config.write_quorum})"
    )
    print(
        f"SLO: {slo.quantile:.0%} of interactions under {slo.latency_ms:.0f} ms"
        f" per {slo.interval_seconds:.0f} s interval\n"
    )
    for label, summaries in result.phase_summaries.items():
        report = result.reports[label]
        print(
            f"== {label} (completed={report.completed}, "
            f"failed={report.failed}, availability={report.availability:.4f}) =="
        )
        print(
            format_table(
                ["phase", "completed", "p50 ms", "p99 ms", "SLO compliance"],
                [
                    (s.phase, s.completed, s.p50_ms, s.p99_ms, s.compliance)
                    for s in summaries
                ],
            )
        )
        for event in report.fault_events:
            print(
                f"  t={event.time:5.1f}s  {event.kind:<8} node {event.node_id}"
                f"  ({event.detail or 'applied'})"
            )
        if report.repair is not None:
            print(f"  repair: {report.repair.summary()}")
        print()
    print(
        f"degradation ratio (failover/baseline, crash window): "
        f"{result.degradation_ratio():.2f}"
    )
    print(
        f"recovery ratio (failover/baseline, post-repair): "
        f"{result.recovery_ratio():.2f}"
    )
    print(f"write audit: {result.audit}")
    if result.incident is not None:
        print()
        print(result.incident.render())


def main(argv: Optional[List[str]] = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    config = FailoverSloConfig()
    if "--quick" in args:
        config = config.quick()
    result = FailoverSloExperiment(config).run()
    print_result(result)
    save_results("failover_slo", result.summary_payload())


if __name__ == "__main__":
    main()
