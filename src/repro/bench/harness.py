"""Benchmark harness: emulated clients issuing web interactions.

The paper's methodology (Section 8.4): one client machine with the PIQL
library for every two storage servers, ten concurrent threads per client,
throughput and response times collected over fixed intervals.  The harness
reproduces that shape in simulated time — every thread owns its own
simulated clock (it is a stateless application server), runs a fixed number
of interactions back to back, and throughput is interactions completed per
simulated second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.database import PiqlDatabase
from ..execution.context import ExecutionStrategy
from ..workloads.base import Workload
from .reporting import percentile


@dataclass
class ClientSimulationConfig:
    """How many emulated application servers / threads to simulate."""

    client_machines: int = 5
    threads_per_client: int = 10
    interactions_per_thread: int = 25
    #: Cluster utilisation modelled during the run (drives queueing delay).
    utilization: float = 0.30
    strategy: ExecutionStrategy = ExecutionStrategy.PARALLEL
    seed: int = 11


@dataclass
class RunMeasurement:
    """Aggregated measurements of one benchmark run."""

    interactions: int
    duration_seconds: float
    interaction_latencies: List[float] = field(default_factory=list)
    query_latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: ``(interactions, simulated seconds)`` per emulated thread.
    thread_runs: List[tuple] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Web interactions per (simulated) second across all clients.

        Every thread is an independent closed loop running back-to-back
        interactions, so the fleet's steady-state rate is the *sum of the
        per-thread rates* — the estimator matching the paper's "WIPS over a
        fixed interval" methodology.  (Dividing the total count by the
        slowest thread's elapsed time instead would charge every thread for
        one straggler's tail and biases the scale-up curve low at large
        thread counts.)
        """
        if self.thread_runs:
            return sum(
                count / duration
                for count, duration in self.thread_runs
                if duration > 0
            )
        if self.duration_seconds <= 0:
            return 0.0
        return self.interactions / self.duration_seconds

    def latency_percentile_ms(self, fraction: float = 0.99) -> float:
        return percentile(self.interaction_latencies, fraction) * 1000.0

    def mean_latency_ms(self) -> float:
        if not self.interaction_latencies:
            return 0.0
        return (
            sum(self.interaction_latencies) / len(self.interaction_latencies) * 1000.0
        )

    def query_percentile_ms(self, query: str, fraction: float = 0.99) -> float:
        return percentile(self.query_latencies[query], fraction) * 1000.0


def run_workload(
    db: PiqlDatabase,
    workload: Workload,
    config: Optional[ClientSimulationConfig] = None,
) -> RunMeasurement:
    """Simulate the emulated-browser fleet against an already-loaded database.

    ``db`` must have had ``workload.setup`` run against it.  Each thread gets
    its own :class:`PiqlDatabase` view (shared cluster and catalog, private
    clock and statistics); threads run their interactions back to back and
    the run's duration is the slowest thread's simulated elapsed time.
    """
    config = config or ClientSimulationConfig()
    total_capacity = db.cluster.total_capacity_ops_per_second()
    db.cluster.set_offered_load(total_capacity * config.utilization)

    interaction_latencies: List[float] = []
    query_latencies: Dict[str, List[float]] = {}
    thread_runs: List[tuple] = []
    interactions = 0

    for client_index in range(config.client_machines):
        for thread_index in range(config.threads_per_client):
            view = db.new_client(strategy=config.strategy)
            rng = random.Random(
                (config.seed, client_index, thread_index).__hash__() & 0x7FFFFFFF
            )
            start = view.client.clock.now
            for _ in range(config.interactions_per_thread):
                result = workload.interaction(view, rng)
                interactions += 1
                interaction_latencies.append(result.latency_seconds)
                for name, latency in result.query_latencies.items():
                    query_latencies.setdefault(name, []).append(latency)
            thread_runs.append(
                (config.interactions_per_thread, view.client.clock.now - start)
            )

    return RunMeasurement(
        interactions=interactions,
        duration_seconds=(
            max(duration for _, duration in thread_runs) if thread_runs else 0.0
        ),
        interaction_latencies=interaction_latencies,
        query_latencies=query_latencies,
        thread_runs=thread_runs,
    )
