"""The bench-regression harness: a recorded perf trajectory with teeth.

Every benchmark in this repo writes free-form JSON under ``results/``; until
now nothing compared one run against the last, so a PR could silently halve
throughput and CI would stay green.  This module closes that gap:

* every benchmark result is **normalised** into one ``BENCH_summary.json``
  schema — bench name → flat ``metric: value`` map, stamped with the git
  SHA and a timestamp — either flattened out of ``results/*.json`` or
  produced directly by the deterministic **quick suite** below;
* a summary is **diffed against a committed baseline** with per-metric
  tolerance bands (direction-aware: latency regressing *up* fails,
  throughput regressing *down* fails), and the diff exits nonzero on any
  out-of-band move — the CI contract.

The quick suite runs entirely in simulated time with seeded RNG streams, so
its numbers are bit-stable on unchanged code: any drift against the
baseline is a real behavioural change, and the tolerance bands only exist
to absorb *intentional* small shifts (an optimisation PR re-baselines
deliberately, not accidentally).

Schema (``bench-summary/v1``)::

    {
      "schema": "bench-summary/v1",
      "git_sha": "abc123...",            # or "unknown" outside a checkout
      "timestamp": 1723000000.0,         # wall clock, ignored by the diff
      "benches": {
        "quick_serving": {"throughput_per_second": 93.5, "p99_ms": 7.1, ...},
        "quick_query":   {"operations": 2.0, "latency_ms": 1.94, ...}
      }
    }

CLI::

    python -m repro.bench.regression --quick --summary results/BENCH_summary.json
    python -m repro.bench.regression --emit-from-results results/ --summary ...
    python -m repro.bench.regression --summary X --baseline benchmarks/baselines/BENCH_summary.json
    python -m repro.bench.regression --quick --write-baseline benchmarks/baselines/BENCH_summary.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

SCHEMA = "bench-summary/v1"

#: Direction + relative tolerance per metric-name fragment, first match
#: wins.  ``lower``: the metric regresses when it grows (latency, work);
#: ``higher``: regresses when it shrinks (throughput, compliance).  The
#: fallback band treats unknown metrics as informational (never failing)
#: so adding a new metric cannot break CI before a baseline knows it.
METRIC_RULES: Tuple[Tuple[Tuple[str, ...], str, float], ...] = (
    (("p50", "p99", "p90", "latency", "ms", "wait", "backlog"), "lower", 0.25),
    (("operations", "ops", "rpcs"), "lower", 0.10),
    (("throughput", "completed", "availability", "compliance", "speedup", "r2", "r_squared"), "higher", 0.15),
    (("utilization",), "lower", 0.40),
)


@dataclass(frozen=True)
class MetricRule:
    direction: str  # "lower" | "higher" | "info"
    tolerance: float


def classify_metric(name: str) -> MetricRule:
    """Which direction is better, and how much slack, for one metric name."""
    lowered = name.lower()
    for fragments, direction, tolerance in METRIC_RULES:
        if any(fragment in lowered for fragment in fragments):
            return MetricRule(direction, tolerance)
    return MetricRule("info", 0.0)


@dataclass(frozen=True)
class Regression:
    """One metric that moved outside its tolerance band."""

    bench: str
    metric: str
    baseline: float
    current: float
    direction: str
    tolerance: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current != 0 else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        return (
            f"{self.bench}.{self.metric}: {self.baseline:.6g} -> "
            f"{self.current:.6g} ({self.relative_change:+.1%}, "
            f"{self.direction}-is-better, tolerance ±{self.tolerance:.0%})"
        )


# ----------------------------------------------------------------------
# Summary construction
# ----------------------------------------------------------------------
def git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:
        return "unknown"


def make_summary(benches: Dict[str, Dict[str, float]]) -> Dict[str, object]:
    return {
        "schema": SCHEMA,
        "git_sha": git_sha(),
        "timestamp": time.time(),
        "benches": benches,
    }


def flatten_numeric(payload: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of arbitrary JSON, as dotted paths.

    Lists index numerically (``series.0.p99``); booleans are skipped (they
    are flags, not measurements).
    """
    flat: Dict[str, float] = {}
    if isinstance(payload, bool):
        return flat
    if isinstance(payload, (int, float)):
        flat[prefix or "value"] = float(payload)
        return flat
    if isinstance(payload, dict):
        for key in sorted(payload):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_numeric(payload[key], child_prefix))
        return flat
    if isinstance(payload, list):
        for index, item in enumerate(payload):
            child_prefix = f"{prefix}.{index}" if prefix else str(index)
            flat.update(flatten_numeric(item, child_prefix))
        return flat
    return flat


#: A flattened results file claiming more metrics than this is a bulk
#: artifact (a trace, a telemetry dump), not a benchmark table.
_MAX_METRICS_PER_BENCH = 256


def _is_bench_payload(payload: object) -> bool:
    """Distinguish benchmark tables from other artifacts under results/.

    ``results/`` also collects Chrome trace exports (``traceEvents``) and
    telemetry dumps (``schema: fleet-telemetry/v1``); flattening those
    would bloat the summary with thousands of per-event "metrics" that are
    neither stable nor comparable.
    """
    if not isinstance(payload, dict):
        return False
    if "traceEvents" in payload:
        return False
    schema = payload.get("schema")
    if isinstance(schema, str) and not schema.startswith("bench-"):
        return False
    return True


def summary_from_results_dir(results_dir: str) -> Dict[str, object]:
    """One bench entry per ``results/*.json`` file, metrics flattened."""
    benches: Dict[str, Dict[str, float]] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not _is_bench_payload(payload):
            continue
        flat = flatten_numeric(payload)
        if flat and len(flat) <= _MAX_METRICS_PER_BENCH:
            benches[path.stem] = flat
    return make_summary(benches)


# ----------------------------------------------------------------------
# The deterministic quick suite
# ----------------------------------------------------------------------
def run_quick_suite(telemetry_path: Optional[str] = None) -> Dict[str, object]:
    """A small, seeded, simulated-time benchmark pair for CI.

    ``quick_query``: compile-once/execute-many microbench of a bounded point
    query (operation count and simulated latency are exact model outputs).
    ``quick_serving``: a short closed-loop serving window with telemetry
    enabled — headline throughput/latency/compliance, plus the scrape
    loop's own health.  When ``telemetry_path`` is given the run's
    telemetry artifact is written there (the CI job uploads it).
    ``quick_storage``: the storage-engine experiment's CI configuration —
    dict/LSM parity, per-query latency across the cardinality sweep,
    acked-write recovery, and budgeted bulk-load spills.
    ``quick_chaos``: the chaos soak's CI configuration at one fixed seed —
    the five hard invariants (as 0/1 gauges and raw counts) plus the
    paired naive-vs-resilient partition-window failure counts.  Only
    ``availability`` is tolerance-judged; the invariant counts are
    informational here because the chaos CLI itself exits nonzero when
    any invariant fails.
    """
    from ..engine.database import PiqlDatabase
    from ..kvstore.cluster import ClusterConfig
    from ..prediction.slo import ServiceLevelObjective
    from ..serving.simulator import ServingConfig, ServingSimulation
    from ..workloads.base import WorkloadScale
    from ..workloads.scadr.workload import ScadrWorkload

    seed = 29
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=4,
            node_capacity_ops_per_second=600.0,
            seed=seed,
        )
    )
    workload = ScadrWorkload(
        thoughts_per_user=5, subscriptions_per_user=3, max_subscriptions=10
    )
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=20, seed=seed)
    )

    # --- quick_query: the bounded thoughtstream query, repeated ---------
    prepared = db.prepare(workload.query_sql(workload.query_names()[0]))
    import random as _random

    rng = _random.Random(seed)
    db.reset_measurements()
    runs = 50
    total_latency = 0.0
    total_operations = 0
    for _ in range(runs):
        result = prepared.execute(
            workload.sample_parameters(workload.query_names()[0], rng)
        )
        total_latency += result.latency_seconds
        total_operations += result.operations
    quick_query = {
        "runs": float(runs),
        "mean_operations": total_operations / runs,
        "mean_latency_ms": total_latency / runs * 1000.0,
        "bound_operations": float(prepared.operation_bound or 0),
    }

    # --- quick_serving: closed-loop window with telemetry ---------------
    db.reset_measurements()
    config = ServingConfig(
        mode="closed",
        clients=15,
        think_time_seconds=0.4,
        duration_seconds=8.0,
        slo=ServiceLevelObjective(
            quantile=0.99, latency_seconds=0.2, interval_seconds=2.0
        ),
        telemetry_enabled=True,
        seed=seed,
    )
    report = ServingSimulation(db, workload, config).run()
    if telemetry_path is not None and report.telemetry is not None:
        report.telemetry.save(telemetry_path)
    quick_serving = {
        "completed": float(report.completed),
        "throughput_per_second": report.throughput,
        "availability": report.availability,
        "overall_compliance": report.overall_compliance,
        "p50_ms": report.response_percentile_ms(0.50),
        "p99_ms": report.response_percentile_ms(0.99),
        "mean_utilization": report.mean_utilization,
        "audited": float(report.audited),
        "bound_violations": float(report.bound_violations),
        "telemetry_scrapes": float(
            report.telemetry.collector.scrapes if report.telemetry else 0
        ),
    }
    # --- quick_storage: storage-engine parity / recovery / budgets ------
    from .bench_storage_engine import StorageEngineConfig, StorageEngineExperiment

    storage = StorageEngineExperiment(StorageEngineConfig.quick()).run()
    quick_storage = {
        "parity_identical": 1.0 if storage.parity_identical else 0.0,
        "sweep_latency_ratio": storage.sweep_latency_ratio,
        "get_mean_ms_smallest": storage.sweep[0].get_mean_ms,
        "get_mean_ms_largest": storage.sweep[-1].get_mean_ms,
        "peak_memtable_bytes": float(
            max(point.peak_memtable_bytes for point in storage.sweep)
        ),
        "recovery_acknowledged": float(storage.recovery_acknowledged),
        "recovery_lost": float(storage.recovery_lost),
        "recovery_oracle_match": 1.0 if storage.recovery_oracle_match else 0.0,
        "bulk_spill_count": float(storage.bulk_spill_count),
    }
    # --- quick_chaos: one seeded soak, both arms ------------------------
    from .chaos import ChaosSoakConfig, run_chaos_soak

    chaos = run_chaos_soak(ChaosSoakConfig().quick())
    resilient = chaos.arms["resilient"]
    naive = chaos.arms["naive"]
    quick_chaos = {
        "invariants_hold": 1.0 if chaos.holds else 0.0,
        "acknowledged": float(resilient.audit["acknowledged"]),
        "lost": float(resilient.audit["lost"]),
        "bound_violations": float(resilient.report.bound_violations),
        "ryw_violations": float(resilient.ryw_violations),
        "post_heal_divergence": float(resilient.post_heal_divergence),
        "availability": resilient.report.availability,
        "naive_window_failures": float(naive.window_failures),
        "resilient_window_failures": float(resilient.window_failures),
        "retries": resilient.resilience_counters["resilience.retries"],
        "timeouts": resilient.resilience_counters["resilience.timeouts"],
    }
    return make_summary(
        {
            "quick_query": quick_query,
            "quick_serving": quick_serving,
            "quick_storage": quick_storage,
            "quick_chaos": quick_chaos,
        }
    )


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def compare_summaries(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[Regression]:
    """Out-of-band metric moves of ``current`` relative to ``baseline``.

    Only metrics present in *both* summaries are judged: a brand-new bench
    or metric has no baseline to regress from, and a removed one is a
    review question, not a perf failure.
    """
    for summary, side in ((current, "current"), (baseline, "baseline")):
        if summary.get("schema") != SCHEMA:
            raise ValueError(
                f"{side} summary has schema {summary.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
    regressions: List[Regression] = []
    current_benches = current.get("benches", {})
    for bench, base_metrics in sorted(baseline.get("benches", {}).items()):
        cur_metrics = current_benches.get(bench)
        if cur_metrics is None:
            continue
        for metric, base_value in sorted(base_metrics.items()):
            cur_value = cur_metrics.get(metric)
            if cur_value is None:
                continue
            rule = classify_metric(metric)
            if rule.direction == "info":
                continue
            band = abs(base_value) * rule.tolerance
            if rule.direction == "lower":
                failed = cur_value > base_value + band
            else:
                failed = cur_value < base_value - band
            if failed:
                regressions.append(
                    Regression(
                        bench=bench,
                        metric=metric,
                        baseline=float(base_value),
                        current=float(cur_value),
                        direction=rule.direction,
                        tolerance=rule.tolerance,
                    )
                )
    return regressions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _load(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_summary(summary: Dict[str, object], path: str) -> str:
    """Write a summary (or baseline) as stable, sorted JSON; returns path."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Normalise benchmark output and diff against a baseline."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the deterministic quick suite and use its summary",
    )
    parser.add_argument(
        "--emit-from-results", metavar="DIR",
        help="build the summary by flattening every results/*.json in DIR",
    )
    parser.add_argument(
        "--summary", metavar="PATH",
        help="write (with --quick/--emit-from-results) or read the summary here",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="diff the summary against this committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="write the summary as the new committed baseline",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH",
        help="with --quick: also write the serving run's telemetry artifact",
    )
    args = parser.parse_args(argv)

    summary: Optional[Dict[str, object]] = None
    if args.quick:
        summary = run_quick_suite(telemetry_path=args.telemetry_out)
    elif args.emit_from_results:
        summary = summary_from_results_dir(args.emit_from_results)
    elif args.summary:
        summary = _load(args.summary)
    if summary is None:
        parser.error("need --quick, --emit-from-results, or --summary")

    if (args.quick or args.emit_from_results) and args.summary:
        write_summary(summary, args.summary)
        print(f"wrote summary: {args.summary}")
    if args.write_baseline:
        write_summary(summary, args.write_baseline)
        print(f"wrote baseline: {args.write_baseline}")

    if args.baseline:
        baseline = _load(args.baseline)
        regressions = compare_summaries(summary, baseline)
        benches = summary.get("benches", {})
        judged = sum(
            1
            for bench, metrics in baseline.get("benches", {}).items()
            if bench in benches
            for metric in metrics
            if metric in benches[bench]
            and classify_metric(metric).direction != "info"
        )
        if regressions:
            print(f"PERF REGRESSION: {len(regressions)} of {judged} judged metrics out of band")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"ok: {judged} judged metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
