"""Benchmark harnesses reproducing the paper's evaluation (Section 8)."""

from .bench_failover_slo import (
    FailoverSloConfig,
    FailoverSloExperiment,
    FailoverSloResult,
    WriteAudit,
)
from .bench_operator_fusion import (
    OperatorFusionConfig,
    OperatorFusionExperiment,
    OperatorFusionResult,
)
from .bench_pipelined_interactions import (
    PipelinedInteractionsConfig,
    PipelinedInteractionsExperiment,
    PipelinedInteractionsResult,
)
from .bench_serving_slo import (
    PhaseSummary,
    ServingSloConfig,
    ServingSloExperiment,
    ServingSloResult,
)
from .bench_storage_engine import (
    StorageEngineConfig,
    StorageEngineExperiment,
    StorageEngineResult,
)
from .bench_view_maintenance import (
    ViewMaintenanceConfig,
    ViewMaintenanceExperiment,
    ViewMaintenanceResult,
)
from .harness import ClientSimulationConfig, RunMeasurement, run_workload
from .intersection import (
    IntersectionExperimentConfig,
    IntersectionPoint,
    IntersectionResult,
    SubscriberIntersectionExperiment,
)
from .prediction_experiment import (
    PredictionAccuracyExperiment,
    PredictionExperimentConfig,
    PredictionRow,
)
from .regression import (
    Regression,
    classify_metric,
    compare_summaries,
    flatten_numeric,
    make_summary,
    run_quick_suite,
    summary_from_results_dir,
    write_summary,
)
from .reporting import format_table, linear_fit_r_squared, percentile, save_results
from .scaling import (
    ScalePoint,
    ScalingExperiment,
    ScalingExperimentConfig,
    ScalingResult,
)
from .strategies import (
    ExecutorStrategyConfig,
    ExecutorStrategyExperiment,
    StrategyMeasurement,
)

__all__ = [
    "ClientSimulationConfig",
    "ExecutorStrategyConfig",
    "ExecutorStrategyExperiment",
    "FailoverSloConfig",
    "FailoverSloExperiment",
    "FailoverSloResult",
    "WriteAudit",
    "IntersectionExperimentConfig",
    "IntersectionPoint",
    "IntersectionResult",
    "OperatorFusionConfig",
    "OperatorFusionExperiment",
    "OperatorFusionResult",
    "PhaseSummary",
    "PipelinedInteractionsConfig",
    "PipelinedInteractionsExperiment",
    "PipelinedInteractionsResult",
    "PredictionAccuracyExperiment",
    "PredictionExperimentConfig",
    "PredictionRow",
    "Regression",
    "RunMeasurement",
    "ServingSloConfig",
    "ServingSloExperiment",
    "ServingSloResult",
    "ScalePoint",
    "ScalingExperiment",
    "ScalingExperimentConfig",
    "ScalingResult",
    "StorageEngineConfig",
    "StorageEngineExperiment",
    "StorageEngineResult",
    "StrategyMeasurement",
    "SubscriberIntersectionExperiment",
    "ViewMaintenanceConfig",
    "ViewMaintenanceExperiment",
    "ViewMaintenanceResult",
    "classify_metric",
    "compare_summaries",
    "flatten_numeric",
    "format_table",
    "linear_fit_r_squared",
    "make_summary",
    "percentile",
    "run_quick_suite",
    "run_workload",
    "save_results",
    "summary_from_results_dir",
    "write_summary",
]
