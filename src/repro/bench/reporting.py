"""Small reporting helpers shared by the benchmark harnesses."""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from ..stats import nearest_rank_percentile


def percentile(values: Sequence[float], fraction: float) -> float:
    """Empirical percentile (nearest-rank) of a sample."""
    return nearest_rank_percentile(values, fraction)


def linear_fit_r_squared(xs: Sequence[float], ys: Sequence[float]) -> float:
    """R^2 of the least-squares line through (xs, ys).

    The paper reports R^2 = 0.9985 (TPC-W) and 0.9868 (SCADr) for throughput
    versus cluster size; the scaling experiments reproduce that statistic.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("x values are constant")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table (used by benchmark scripts and examples)."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "nan"
        return f"{cell:.1f}" if abs(cell) >= 10 else f"{cell:.2f}"
    return str(cell)


def save_results(name: str, payload: Dict, directory: str = "results") -> Path:
    """Persist experiment output as JSON under ``results/`` for later inspection."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{name}.json"
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return target
