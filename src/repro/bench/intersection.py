"""Subscriber-intersection comparison: PIQL vs. cost-based planning (Figure 7).

The query checks which of the current user's 50 friends are subscribed to a
target user::

    SELECT * FROM subscriptions
    WHERE target = <target_user> AND owner IN [1: friends(50)]

PIQL's scale-independent plan performs at most 50 bounded random reads
against the subscriptions primary key.  A traditional cost-based optimizer,
knowing that the *average* user has only ~126 subscribers, instead scans the
``target`` secondary index and filters locally — cheaper on average, but its
latency grows without bound with the target's popularity.  The experiment
runs both plans against target users of increasing popularity and reports
99th-percentile latencies, reproducing the crossover of Figure 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..engine.database import PiqlDatabase
from ..execution.executor import QueryExecutor
from ..kvstore.cluster import ClusterConfig
from ..optimizer.cost_based import CostBasedOptimizer, TableStatistics
from ..workloads.scadr.queries import SUBSCRIBER_INTERSECTION
from ..workloads.scadr.schema import scadr_ddl
from .reporting import percentile


@dataclass
class IntersectionPoint:
    """99th-percentile latency of both plans for one target popularity."""

    subscribers: int
    bounded_p99_ms: float
    unbounded_p99_ms: float
    bounded_operations: int
    unbounded_operations: int


@dataclass
class IntersectionExperimentConfig:
    """Setup of the Figure 7 experiment."""

    storage_nodes: int = 10
    subscriber_counts: Sequence[int] = (0, 500, 1000, 2000, 3000, 4000, 5000)
    friends: int = 50
    executions_per_point: int = 100
    fan_pool: int = 6000
    average_subscribers: float = 126.0     # the 2009 Twitter average cited in §8.3
    seed: int = 31


@dataclass
class IntersectionResult:
    points: List[IntersectionPoint] = field(default_factory=list)

    def crossover_subscribers(self) -> Optional[int]:
        """Smallest popularity at which the bounded plan wins, if any."""
        for point in self.points:
            if point.bounded_p99_ms < point.unbounded_p99_ms:
                return point.subscribers
        return None


class SubscriberIntersectionExperiment:
    """Runs the bounded (PIQL) and unbounded (cost-based) plans side by side."""

    def __init__(self, config: Optional[IntersectionExperimentConfig] = None):
        self.config = config or IntersectionExperimentConfig()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _build_database(self) -> PiqlDatabase:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(storage_nodes=config.storage_nodes, seed=config.seed)
        )
        # A large cardinality limit on subscriptions per owner: each fan
        # follows a handful of users, while a *target* may have millions of
        # subscribers without violating any constraint.
        db.execute_ddl(scadr_ddl(max_subscriptions=100))
        fans = [f"fan{i:07d}" for i in range(config.fan_pool)]
        db.bulk_load(
            "users",
            (
                {"username": name, "password": "x", "hometown": "web", "created": i}
                for i, name in enumerate(fans)
            ),
        )
        targets = []
        rows = []
        for subscribers in config.subscriber_counts:
            target = f"target{subscribers:07d}"
            targets.append(target)
            for fan_index in range(subscribers):
                rows.append(
                    {
                        "owner": fans[fan_index % len(fans)] if subscribers <= len(fans)
                        else f"fan{fan_index:07d}",
                        "target": target,
                        "approved": True,
                    }
                )
        db.bulk_load(
            "users",
            (
                {"username": t, "password": "x", "hometown": "web", "created": 0}
                for t in targets
            ),
        )
        db.bulk_load("subscriptions", rows)
        self._fans = fans
        return db

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> IntersectionResult:
        config = self.config
        db = self._build_database()
        rng = random.Random(config.seed)

        # PIQL plan: bounded random lookups.
        bounded_query = db.prepare(SUBSCRIBER_INTERSECTION)

        # Cost-based plan: unbounded index scan over subscriptions(target).
        statistics = {
            "subscriptions": TableStatistics(
                row_count=db.records.count("subscriptions"),
                avg_rows_per_value={("target",): config.average_subscribers},
            )
        }
        cost_optimizer = CostBasedOptimizer(db.catalog, statistics)
        costed = cost_optimizer.optimize(SUBSCRIBER_INTERSECTION)
        for index in costed.required_indexes:
            if not db.catalog.has_index(index.name):
                db.create_index(index)
        executor = QueryExecutor(db.client, db.catalog, enforce_bounds=False)

        def reseed_noise() -> None:
            # Paired comparison: both plans replay the same service-time
            # noise streams, so their latency difference reflects the plan
            # shapes rather than which run happened to draw the stragglers.
            db.cluster.reseed_latency_models(config.seed)

        result = IntersectionResult()
        for subscribers in config.subscriber_counts:
            target = f"target{subscribers:07d}"
            parameter_sets = [
                {
                    "target_user": target,
                    "friends": rng.sample(self._fans, config.friends),
                }
                for _ in range(config.executions_per_point)
            ]
            bounded_latencies: List[float] = []
            unbounded_latencies: List[float] = []
            bounded_ops = 0
            unbounded_ops = 0
            reseed_noise()
            for parameters in parameter_sets:
                bounded = bounded_query.execute(parameters)
                bounded_latencies.append(bounded.latency_seconds)
                bounded_ops = max(bounded_ops, bounded.operations)
            reseed_noise()
            for parameters in parameter_sets:
                unbounded = executor.execute_physical_plan(
                    costed.physical_plan, parameters
                )
                unbounded_latencies.append(unbounded.latency_seconds)
                unbounded_ops = max(unbounded_ops, unbounded.operations)
            result.points.append(
                IntersectionPoint(
                    subscribers=subscribers,
                    bounded_p99_ms=percentile(bounded_latencies, 0.99) * 1000.0,
                    unbounded_p99_ms=percentile(unbounded_latencies, 0.99) * 1000.0,
                    bounded_operations=bounded_ops,
                    unbounded_operations=unbounded_ops,
                )
            )
        return result
