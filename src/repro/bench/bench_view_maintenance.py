"""Materialized-view maintenance benchmark: scale-independent precomputation.

Three phases prove the three claims of the view tier:

* **write amplification** — the same batch of order-line inserts is applied
  at increasing table cardinalities, with and without the
  ``best_sellers_by_subject`` view.  The per-insert maintenance cost (ops
  with view minus ops without) must be bounded by the static
  :func:`~repro.plans.bounds.write_operation_bound` and must not grow with
  cardinality;
* **correctness** — after a closed-loop run through the serving tier (order
  lines written by buy-confirm interactions under load), the best-sellers
  query is executed for every subject and its rows must be identical —
  values *and* order, including ties — to an offline recomputation of the
  view from the base tables; SCADr's per-user counts are checked the same
  way against the thought table;
* **bounded reads** — the restored best-sellers and thought-count queries
  execute as bounded view scans whose operation counts never exceed their
  statically predicted bounds and whose simulated latency stays flat as the
  order-line table grows by an order of magnitude (the query is rejected
  outright without the view — the paper's Table 1 omission).

Run with ``PYTHONPATH=src python -m repro.bench.bench_view_maintenance``
(add ``--quick`` for the CI-sized configuration).  Results land in
``results/view_maintenance.json``.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..errors import NotScaleIndependentError
from ..kvstore.cluster import ClusterConfig
from ..plans.bounds import write_operation_bound
from ..serving.simulator import ServingConfig, ServingSimulation
from ..views.maintenance import recompute_top_k, recompute_view
from ..workloads.base import WorkloadScale
from ..workloads.scadr.workload import ScadrWorkload
from ..workloads.tpcw.schema import SUBJECTS
from ..workloads.tpcw.workload import TpcwWorkload
from .reporting import format_table, save_results


@dataclass(frozen=True)
class ViewMaintenanceConfig:
    """Cluster shape, data scales, and traffic of the experiment."""

    storage_nodes: int = 6
    node_capacity_ops_per_second: float = 4000.0
    #: Data scales for the write-amplification / bounded-read sweep; the
    #: order-line table grows roughly linearly with users_per_node.
    scale_users_per_node: Tuple[int, ...] = (10, 30, 90)
    items_total: int = 300
    #: Probe inserts measured per scale point (fresh order ids).
    probe_inserts: int = 200
    #: Read probes per scale point.
    probe_reads: int = 60
    #: Serving-tier closed loop (correctness-under-load phase).
    clients: int = 30
    think_time_seconds: float = 0.3
    duration_seconds: float = 12.0
    #: SCADr correctness phase sizing.
    scadr_users_per_node: int = 40
    seed: int = 23

    def quick(self) -> "ViewMaintenanceConfig":
        """A CI-smoke-sized variant (a few seconds of wall clock)."""
        return replace(
            self,
            scale_users_per_node=(8, 24),
            items_total=200,
            probe_inserts=60,
            probe_reads=20,
            clients=12,
            duration_seconds=5.0,
            scadr_users_per_node=20,
        )


@dataclass
class ViewScalePoint:
    """Measurements at one table cardinality."""

    users_per_node: int
    order_line_rows: int
    #: Mean key/value operations per probe insert, with/without the view.
    insert_ops_with_view: float
    insert_ops_without_view: float
    write_bound: int
    write_bound_base: int
    #: Best-sellers read probes.
    read_ops_max: int
    read_bound: int
    read_mean_latency_ms: float

    @property
    def maintenance_ops(self) -> float:
        return self.insert_ops_with_view - self.insert_ops_without_view


@dataclass
class ViewMaintenanceResult:
    """All phases' measurements."""

    config: ViewMaintenanceConfig
    scale_points: List[ViewScalePoint]
    rejected_without_view: bool
    serving: Dict[str, float]
    correctness: Dict[str, object]

    def summary_payload(self) -> Dict:
        return {
            "config": {
                "storage_nodes": self.config.storage_nodes,
                "scale_users_per_node": list(self.config.scale_users_per_node),
                "items_total": self.config.items_total,
                "probe_inserts": self.config.probe_inserts,
                "clients": self.config.clients,
                "duration_seconds": self.config.duration_seconds,
                "seed": self.config.seed,
            },
            "rejected_without_view": self.rejected_without_view,
            "scale_points": [
                {
                    "users_per_node": p.users_per_node,
                    "order_line_rows": p.order_line_rows,
                    "insert_ops_with_view": p.insert_ops_with_view,
                    "insert_ops_without_view": p.insert_ops_without_view,
                    "maintenance_ops": p.maintenance_ops,
                    "write_bound": p.write_bound,
                    "read_ops_max": p.read_ops_max,
                    "read_bound": p.read_bound,
                    "read_mean_latency_ms": p.read_mean_latency_ms,
                }
                for p in self.scale_points
            ],
            "serving": self.serving,
            "correctness": self.correctness,
        }


class ViewMaintenanceExperiment:
    """Runs the write-amplification, correctness, and bounded-read phases."""

    def __init__(self, config: Optional[ViewMaintenanceConfig] = None):
        self.config = config or ViewMaintenanceConfig()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _tpcw(
        self, users_per_node: int, views: bool
    ) -> Tuple[PiqlDatabase, TpcwWorkload]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=config.seed,
            )
        )
        workload = TpcwWorkload(materialized_views=views)
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        db.cluster.reseed_latency_models(config.seed)
        return db, workload

    # ------------------------------------------------------------------
    # Phase 1 + 3: write amplification and bounded reads across scales
    # ------------------------------------------------------------------
    def _probe_inserts(self, db: PiqlDatabase, base_order_id: int) -> float:
        """Mean ops per order-line insert for a batch of fresh orders."""
        config = self.config
        rng = random.Random(config.seed + 17)
        view = db.new_client()
        before = view.client.stats.operations
        for offset in range(config.probe_inserts):
            view.insert(
                "order_line",
                {
                    "OL_O_ID": base_order_id + offset,
                    "OL_ID": 1,
                    # Generated item ids are 1..items_total (data.py); an id
                    # outside that range would miss the dimension fetch and
                    # silently skip maintenance, biasing the measurement low.
                    "OL_I_ID": rng.randrange(1, config.items_total + 1),
                    "OL_QTY": rng.randrange(1, 5),
                    "OL_DISCOUNT": 0.0,
                    "OL_COMMENT": "",
                },
            )
        return (view.client.stats.operations - before) / config.probe_inserts

    def run_scale_point(self, users_per_node: int) -> ViewScalePoint:
        config = self.config
        db, workload = self._tpcw(users_per_node, views=True)
        baseline_db, _ = self._tpcw(users_per_node, views=False)
        order_line_rows = db.records.count("order_line")

        with_view = self._probe_inserts(db, base_order_id=50_000_000)
        without_view = self._probe_inserts(baseline_db, base_order_id=50_000_000)

        rng = random.Random(config.seed + 5)
        reader = db.new_client()
        reader_prepared = reader.prepare(workload.query_sql("best_sellers_wi"))
        ops_max = 0
        latency = 0.0
        for _ in range(config.probe_reads):
            result = reader_prepared.execute(
                workload.sample_parameters("best_sellers_wi", rng)
            )
            ops_max = max(ops_max, result.operations)
            latency += result.latency_seconds
        return ViewScalePoint(
            users_per_node=users_per_node,
            order_line_rows=order_line_rows,
            insert_ops_with_view=with_view,
            insert_ops_without_view=without_view,
            write_bound=write_operation_bound(db.catalog, "order_line"),
            write_bound_base=write_operation_bound(
                baseline_db.catalog, "order_line"
            ),
            read_ops_max=ops_max,
            read_bound=reader_prepared.operation_bound,
            read_mean_latency_ms=latency / config.probe_reads * 1000.0,
        )

    # ------------------------------------------------------------------
    # Phase 2: serving-tier load, then view-versus-recompute equivalence
    # ------------------------------------------------------------------
    def run_serving_and_correctness(self) -> Tuple[Dict[str, float], Dict[str, object]]:
        config = self.config
        db, workload = self._tpcw(config.scale_users_per_node[0], views=True)
        simulation = ServingSimulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=config.clients,
                think_time_seconds=config.think_time_seconds,
                duration_seconds=config.duration_seconds,
                seed=config.seed,
            ),
        )
        report = simulation.run()
        by_name: Dict[str, int] = {}
        for record in report.log.records:
            by_name[record.name] = by_name.get(record.name, 0) + 1
        serving = {
            "completed": float(report.completed),
            "throughput_per_second": report.throughput,
            "p99_ms": report.response_percentile_ms(0.99),
            "best_sellers_served": float(by_name.get("best_sellers", 0)),
            "buy_confirms": float(by_name.get("buy_confirm", 0)),
        }

        # Offline ground truth from the post-load base tables.
        view = db.catalog.view("best_sellers_by_subject")
        recomputed = recompute_view(view, db.catalog, db.cluster)
        prepared = db.prepare(workload.query_sql("best_sellers_wi"))
        mismatches = 0
        compared = 0
        for subject in SUBJECTS:
            expected = [
                {"OL_I_ID": row["OL_I_ID"], "total_sold": row["total_sold"]}
                for row in recompute_top_k(view, recomputed, (subject,))
            ]
            actual = prepared.execute(subject=subject).rows
            compared += 1
            if actual != expected:
                mismatches += 1

        # SCADr: per-user counts against an offline recompute of thoughts.
        scadr_db = PiqlDatabase.simulated(
            ClusterConfig(storage_nodes=config.storage_nodes, seed=config.seed + 1)
        )
        scadr = ScadrWorkload(materialized_views=True)
        scadr.setup(
            scadr_db,
            WorkloadScale(
                storage_nodes=2,
                users_per_node=config.scadr_users_per_node,
                seed=config.seed + 1,
            ),
        )
        rng = random.Random(config.seed + 2)
        for _ in range(50):  # extra posts and retractions under the view
            owner = rng.choice(scadr.usernames)
            scadr_db.insert(
                "thoughts",
                {"owner": owner, "timestamp": 3_000_000_000 + rng.randrange(10**6),
                 "text": "load"},
                upsert=True,
            )
        thought_view = scadr_db.catalog.view("user_thought_counts")
        thought_truth = recompute_view(thought_view, scadr_db.catalog, scadr_db.cluster)
        count_query = scadr_db.prepare(scadr.query_sql("thought_count"))
        scadr_mismatches = 0
        for (owner,), expected_row in thought_truth.items():
            rows = count_query.execute(uname=owner).rows
            if rows != [{"owner": owner,
                         "thought_count": expected_row["thought_count"]}]:
                scadr_mismatches += 1
        correctness = {
            "subjects_compared": compared,
            "best_sellers_mismatches": mismatches,
            "scadr_users_compared": len(thought_truth),
            "scadr_mismatches": scadr_mismatches,
        }
        return serving, correctness

    # ------------------------------------------------------------------
    # Whole experiment
    # ------------------------------------------------------------------
    def run(self) -> ViewMaintenanceResult:
        config = self.config
        # Without the view the query is rejected — the paper's omission.
        db, _ = self._tpcw(config.scale_users_per_node[0], views=False)
        try:
            db.prepare(
                TpcwWorkload(materialized_views=True).query_sql("best_sellers_wi")
            )
            rejected = False
        except NotScaleIndependentError:
            rejected = True

        points = [
            self.run_scale_point(users) for users in config.scale_users_per_node
        ]
        serving, correctness = self.run_serving_and_correctness()
        return ViewMaintenanceResult(
            config=config,
            scale_points=points,
            rejected_without_view=rejected,
            serving=serving,
            correctness=correctness,
        )


def check_result(result: ViewMaintenanceResult) -> None:
    """Regression guard shared by the CLI run and the benchmark suite."""
    assert result.rejected_without_view, (
        "best-sellers must be rejected without the materialized view"
    )
    points = result.scale_points
    # Write amplification: maintenance cost bounded by the static write
    # bound at every scale, and independent of table cardinality (the
    # largest scale may not cost more than the smallest plus rounding).
    for point in points:
        assert point.insert_ops_with_view <= point.write_bound, (
            f"insert cost {point.insert_ops_with_view:.2f} exceeds static "
            f"write bound {point.write_bound} at {point.users_per_node} users"
        )
    spread = max(p.maintenance_ops for p in points) - min(
        p.maintenance_ops for p in points
    )
    assert spread <= 1.0, (
        f"per-write maintenance cost varies by {spread:.2f} ops across a "
        f"{points[-1].order_line_rows / points[0].order_line_rows:.0f}x "
        "cardinality range — not scale-independent"
    )
    # Bounded reads: measured ops never exceed the static bound, and the
    # bound (and measured ceiling) is identical at every cardinality.
    assert len({p.read_bound for p in points}) == 1
    for point in points:
        assert point.read_ops_max <= point.read_bound
    latencies = [p.read_mean_latency_ms for p in points]
    assert max(latencies) <= 2.0 * min(latencies) + 0.5, (
        f"view-scan latency grew with cardinality: {latencies}"
    )
    # Correctness: the view-scan rows are identical to offline recomputation.
    assert result.correctness["best_sellers_mismatches"] == 0
    assert result.correctness["scadr_mismatches"] == 0
    assert result.correctness["subjects_compared"] > 0
    # The serving tier actually served traffic (including buy-confirms that
    # exercised maintenance under load).
    assert result.serving["completed"] > 0
    assert result.serving["buy_confirms"] > 0


def print_result(result: ViewMaintenanceResult) -> None:
    print("== write amplification & bounded reads across cardinalities ==")
    print(
        format_table(
            ["users/node", "order_line rows", "ins ops (view)",
             "ins ops (base)", "maint ops", "write bound",
             "read ops<=", "read bound", "read ms"],
            [
                (
                    p.users_per_node,
                    p.order_line_rows,
                    f"{p.insert_ops_with_view:.2f}",
                    f"{p.insert_ops_without_view:.2f}",
                    f"{p.maintenance_ops:.2f}",
                    p.write_bound,
                    p.read_ops_max,
                    p.read_bound,
                    f"{p.read_mean_latency_ms:.2f}",
                )
                for p in result.scale_points
            ],
        )
    )
    print(
        f"best-sellers rejected without the view: "
        f"{result.rejected_without_view}"
    )
    print("\n== serving-tier closed loop (views in the interaction mix) ==")
    print(
        f"completed {result.serving['completed']:.0f} interactions "
        f"({result.serving['throughput_per_second']:.1f}/s, "
        f"p99 {result.serving['p99_ms']:.1f} ms); "
        f"best-sellers pages served: {result.serving['best_sellers_served']:.0f}; "
        f"buy-confirms (maintenance under load): "
        f"{result.serving['buy_confirms']:.0f}"
    )
    print("\n== view scan versus offline recomputation ==")
    print(
        f"best-sellers: {result.correctness['subjects_compared']} subjects "
        f"compared, {result.correctness['best_sellers_mismatches']} mismatches; "
        f"SCADr thought counts: {result.correctness['scadr_users_compared']} "
        f"users compared, {result.correctness['scadr_mismatches']} mismatches"
    )


def main(argv: Optional[List[str]] = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    config = ViewMaintenanceConfig()
    if "--quick" in args:
        config = config.quick()
    result = ViewMaintenanceExperiment(config).run()
    print_result(result)
    save_results("view_maintenance", result.summary_payload())
    check_result(result)


if __name__ == "__main__":
    main()
