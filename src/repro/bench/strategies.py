"""Execution-strategy comparison (Figure 12).

The paper compares three variants of the PIQL execution engine on TPC-W
running on a 10-node cluster with 5 client machines: the Lazy executor (one
tuple per request), the Simple executor (batched requests using the
compiler's limit hints, issued sequentially), and the Parallel executor
(batched requests issued in parallel).  The result — Parallel < Simple <
Lazy at the 99th percentile — demonstrates the value of both limit-hint
batching and intra-query parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.database import PiqlDatabase
from ..execution.context import ExecutionStrategy
from ..kvstore.cluster import ClusterConfig
from ..workloads.base import Workload, WorkloadScale
from ..workloads.tpcw.workload import TpcwWorkload
from .harness import ClientSimulationConfig, run_workload


@dataclass
class StrategyMeasurement:
    """99th-percentile interaction latency for one execution strategy."""

    strategy: str
    p99_latency_ms: float
    mean_latency_ms: float
    throughput: float


@dataclass
class ExecutorStrategyConfig:
    """Setup of the Figure 12 experiment (10 storage nodes, 5 clients)."""

    storage_nodes: int = 10
    client_machines: int = 5
    threads_per_client: int = 4
    interactions_per_thread: int = 20
    users_per_node: int = 60
    items_total: int = 600
    utilization: float = 0.30
    seed: int = 23


class ExecutorStrategyExperiment:
    """Runs the same workload under the three execution strategies."""

    def __init__(
        self,
        workload_factory=TpcwWorkload,
        config: Optional[ExecutorStrategyConfig] = None,
    ):
        self.workload_factory = workload_factory
        self.config = config or ExecutorStrategyConfig()

    def run(self) -> List[StrategyMeasurement]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(storage_nodes=config.storage_nodes, seed=config.seed)
        )
        workload: Workload = self.workload_factory()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=config.storage_nodes,
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        measurements: List[StrategyMeasurement] = []
        for strategy in (
            ExecutionStrategy.LAZY,
            ExecutionStrategy.SIMPLE,
            ExecutionStrategy.PARALLEL,
        ):
            # Paired comparison: every strategy sees the same service-time
            # noise streams, so the measured differences come from the
            # executor's request shape (batching, parallelism), not from
            # which run happened to draw the stragglers.
            db.cluster.reseed_latency_models(config.seed)
            measurement = run_workload(
                db,
                workload,
                ClientSimulationConfig(
                    client_machines=config.client_machines,
                    threads_per_client=config.threads_per_client,
                    interactions_per_thread=config.interactions_per_thread,
                    utilization=config.utilization,
                    strategy=strategy,
                    seed=config.seed,
                ),
            )
            measurements.append(
                StrategyMeasurement(
                    strategy=strategy.value,
                    p99_latency_ms=measurement.latency_percentile_ms(0.99),
                    mean_latency_ms=measurement.mean_latency_ms(),
                    throughput=measurement.throughput,
                )
            )
        return measurements

    @staticmethod
    def as_dict(measurements: List[StrategyMeasurement]) -> Dict[str, float]:
        return {m.strategy: m.p99_latency_ms for m in measurements}
