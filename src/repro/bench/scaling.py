"""Scale-up experiments (Figures 8-11).

For each cluster size the experiment loads a dataset whose size grows with
the cluster (constant data per server), runs one client machine per two
storage servers, and records throughput and 99th-percentile web-interaction
response time.  The paper's claims are (a) near-linear throughput scale-up
(R^2 > 0.98) and (b) essentially flat 99th-percentile latency as the system
grows — both of which the simulated reproduction exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..engine.database import PiqlDatabase
from ..kvstore.cluster import ClusterConfig
from ..workloads.base import Workload, WorkloadScale
from .harness import ClientSimulationConfig, RunMeasurement, run_workload
from .reporting import linear_fit_r_squared


@dataclass
class ScalePoint:
    """Measurements for one cluster size."""

    storage_nodes: int
    client_machines: int
    throughput: float
    p99_latency_ms: float
    mean_latency_ms: float
    interactions: int


@dataclass
class ScalingResult:
    """The full scale-up curve plus its linearity statistic."""

    workload_name: str
    points: List[ScalePoint] = field(default_factory=list)

    @property
    def throughput_r_squared(self) -> float:
        xs = [float(p.storage_nodes) for p in self.points]
        ys = [p.throughput for p in self.points]
        return linear_fit_r_squared(xs, ys)

    @property
    def max_p99_ms(self) -> float:
        return max(p.p99_latency_ms for p in self.points)

    @property
    def min_p99_ms(self) -> float:
        return min(p.p99_latency_ms for p in self.points)

    def latency_flatness(self) -> float:
        """Ratio of the largest to the smallest 99th-percentile latency.

        A value close to 1 means response time is independent of scale.
        """
        return self.max_p99_ms / max(self.min_p99_ms, 1e-9)

    def rows(self) -> List[Sequence[object]]:
        return [
            (
                p.storage_nodes,
                p.client_machines,
                round(p.throughput, 1),
                round(p.p99_latency_ms, 1),
                round(p.mean_latency_ms, 1),
            )
            for p in self.points
        ]


@dataclass
class ScalingExperimentConfig:
    """Knobs of the scale-up experiment.

    The node counts follow the paper (20 to 100 storage nodes); the per-node
    data sizes and per-thread interaction counts are scaled down so the
    simulation completes quickly — the scaling *shape* does not depend on
    them.
    """

    node_counts: Sequence[int] = (20, 40, 60, 80, 100)
    users_per_node: int = 60
    items_total: int = 600
    threads_per_client: int = 5
    interactions_per_thread: int = 12
    replication: int = 2
    utilization: float = 0.30
    seed: int = 17


class ScalingExperiment:
    """Runs a workload at several cluster sizes (Figures 8-11)."""

    def __init__(
        self,
        workload_factory: Callable[[], Workload],
        config: Optional[ScalingExperimentConfig] = None,
    ):
        self.workload_factory = workload_factory
        self.config = config or ScalingExperimentConfig()

    def run_point(self, storage_nodes: int) -> ScalePoint:
        """Run one cluster size and return its measurements."""
        config = self.config
        cluster_config = ClusterConfig(
            storage_nodes=storage_nodes,
            replication=min(config.replication, storage_nodes),
            seed=config.seed + storage_nodes,
        )
        db = PiqlDatabase.simulated(cluster_config)
        workload = self.workload_factory()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=storage_nodes,
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        # One client machine per two storage servers, as in the paper.
        client_machines = max(1, storage_nodes // 2)
        measurement: RunMeasurement = run_workload(
            db,
            workload,
            ClientSimulationConfig(
                client_machines=client_machines,
                threads_per_client=config.threads_per_client,
                interactions_per_thread=config.interactions_per_thread,
                utilization=config.utilization,
                seed=config.seed + storage_nodes,
            ),
        )
        return ScalePoint(
            storage_nodes=storage_nodes,
            client_machines=client_machines,
            throughput=measurement.throughput,
            p99_latency_ms=measurement.latency_percentile_ms(0.99),
            mean_latency_ms=measurement.mean_latency_ms(),
            interactions=measurement.interactions,
        )

    def run(self) -> ScalingResult:
        """Run every cluster size of the configured sweep."""
        workload_name = self.workload_factory().name
        result = ScalingResult(workload_name=workload_name)
        for storage_nodes in self.config.node_counts:
            result.points.append(self.run_point(storage_nodes))
        return result
