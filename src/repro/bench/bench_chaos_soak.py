"""CLI for the deterministic chaos soak (see :mod:`repro.bench.chaos`).

Runs the paired naive/resilient soak across several seeds, prints the
invariant verdicts and the partition-window dominance comparison, writes
``results/chaos_soak.json`` plus the first seed's rendered
``incident-report/v1`` artifact (``results/incident_report.json``), and
exits non-zero if any invariant fails on any seed — CI runs this with
``--quick`` as a smoke job.

Usage::

    PYTHONPATH=src python -m repro.bench.bench_chaos_soak [--quick]
        [--seeds 11,23,47]
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from .chaos import ChaosSoakConfig, ChaosSoakExperiment, ChaosSoakResult
from .reporting import format_table, save_results

DEFAULT_SEEDS = (11, 23, 47)


def run_seeds(
    base: ChaosSoakConfig, seeds: List[int]
) -> Dict[int, ChaosSoakResult]:
    from dataclasses import replace

    results: Dict[int, ChaosSoakResult] = {}
    for seed in seeds:
        results[seed] = ChaosSoakExperiment(replace(base, seed=seed)).run()
    return results


def print_results(results: Dict[int, ChaosSoakResult]) -> None:
    first = next(iter(results.values())).config
    print(
        f"Chaos soak: {first.storage_nodes} nodes "
        f"(N={first.replication}, R={first.read_quorum}, "
        f"W={first.write_quorum}), {first.clients} closed-loop clients, "
        f"{first.duration_seconds:.0f}s per arm "
        f"({first.warmup_seconds:.0f}s warmup + "
        f"{first.fault_seconds:.0f}s faults + "
        f"{first.settle_seconds:.0f}s settle)\n"
    )
    rows = []
    for seed, result in results.items():
        naive = result.arms["naive"]
        resilient = result.arms["resilient"]
        rows.append(
            (
                seed,
                "PASS" if result.holds else "FAIL",
                f"{resilient.report.availability:.3f}",
                f"{naive.report.availability:.3f}",
                resilient.window_failures,
                naive.window_failures,
                resilient.audit["lost"],
                resilient.post_heal_divergence,
            )
        )
    print(
        format_table(
            [
                "seed", "invariants", "avail (res)", "avail (naive)",
                "window fails (res)", "window fails (naive)", "lost", "diverged",
            ],
            rows,
        )
    )
    for seed, result in results.items():
        failing = [
            name for name, ok in result.invariants().items() if not ok
        ]
        if failing:
            print(f"\nseed {seed} FAILED: {', '.join(failing)}")


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    config = ChaosSoakConfig()
    if "--quick" in args:
        config = config.quick()
    seeds = list(DEFAULT_SEEDS)
    for index, arg in enumerate(args):
        if arg == "--seeds" and index + 1 < len(args):
            seeds = [int(part) for part in args[index + 1].split(",")]
        elif arg.startswith("--seeds="):
            seeds = [int(part) for part in arg.split("=", 1)[1].split(",")]
    results = run_seeds(config, seeds)
    print_results(results)
    payload = {
        "quick": "--quick" in args,
        "seeds": {str(seed): result.payload() for seed, result in results.items()},
        "all_invariants_hold": all(r.holds for r in results.values()),
    }
    target = save_results("chaos_soak", payload)
    print(f"\nresults written to {target}")
    # The first seed's resilient-arm incident report is the run's forensic
    # artifact: the rendered timeline goes to stdout (a CI log is often the
    # only thing anyone reads) and the machine-readable incident-report/v1
    # JSON lands next to the soak results for upload.
    first = next(iter(results.values()))
    incident = first.arms["resilient"].incident
    if incident is not None:
        print()
        print(incident.render())
        report_path = target.parent / "incident_report.json"
        incident.save(str(report_path))
        print(f"\nincident report written to {report_path}")
    return 0 if payload["all_invariants_hold"] else 1


if __name__ == "__main__":
    sys.exit(main())
