"""Operator-fusion benchmark: tuple-at-a-time versus batch-at-a-time rounds.

The executor plans its fetches batch-at-a-time by default: sorted-index-join
dereferences are fused into one deduplicated bulk round across all children,
data stops are applied to the index entries *before* the base records are
fetched, and index-only residual predicates are evaluated server-side.  This
experiment measures exactly what that buys, by running the same work with
fusion disabled (``PiqlDatabase.simulated(..., fused=False)``) and enabled.

Three phases:

* **paired replay** — one application server replays the same TPC-W
  interaction sequence on two identically seeded databases, fused off/on.
  Because fusion only restructures rounds, every interaction must issue
  *identical per-query operation counts* and every prepared query must
  report *identical static bounds* in both arms; the replay verifies both
  and times each arm's wall clock (same logical work, so the wall-clock
  ratio is the Python-time win).
* **query microbench** — the sorted-join-heavy queries (TPC-W
  search-by-author and new-products, SCADr thoughtstream) are executed
  repeatedly with paired parameters, recording dereference RPC rounds,
  total RPCs, and simulated latency per execution.  Multi-child
  sorted-index joins must show a multiplicative (>= 2x) drop in
  dereference rounds.
* **closed loop** — a think-time population drives the serving tier's
  event kernel against each arm; the measured wall-clock throughput
  (interactions completed per wall second) shows the end-to-end effect.
* **tracing overhead** — the fused replay is repeated with the query-trace
  subsystem off and on (chunk-paired arms, median per-chunk ratio):
  recording a full span tree per interaction must stay within single-digit
  percent of the untraced wall clock, the budget the observability tier
  promises.
* **forensics overhead** — the traced fused replay is repeated with the
  latency-forensics hot path attached (flight recorder + critical-path
  analysis on every finished query): the chunk-paired median ratio against
  the tracing-only arm must stay <= 1.10x and the recorder's retained-trace
  memory must stay inside its configured budget.

Run with ``PYTHONPATH=src python -m repro.bench.bench_operator_fusion``
(add ``--quick`` for the CI-sized configuration, which also acts as the
wall-clock regression guard).  Results land in
``results/operator_fusion.json``.
"""

from __future__ import annotations

import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..kvstore.cluster import ClusterConfig
from ..obs.criticalpath import CriticalPathAggregator
from ..obs.flightrec import FlightRecorder, ForensicsConfig
from ..serving.simulator import ServingConfig, ServingSimulation
from ..storage.rows import clear_row_caches
from ..workloads.base import Workload, WorkloadScale
from ..workloads.scadr.workload import ScadrWorkload
from ..workloads.tpcw.workload import TpcwWorkload
from .reporting import format_table, percentile, save_results

ARMS = ("serial", "fused")

#: Queries of the per-query microbench: (workload, query name).  The TPC-W
#: search-by-author query is the multi-child sorted-index-join class this
#: PR is about (one secondary range per matching author, each entry
#: dereferenced); thoughtstream is the primary-index join class whose win
#: is deserialisation work, not rounds.
MICRO_QUERIES = (
    ("tpcw", "search_by_author_wi"),
    ("tpcw", "new_products_wi"),
    ("scadr", "thoughtstream"),
)


@dataclass(frozen=True)
class OperatorFusionConfig:
    """Cluster, workload, and traffic shape of the comparison."""

    storage_nodes: int = 6
    node_capacity_ops_per_second: float = 4000.0
    users_per_node: int = 30
    #: Authors are ``items // 4`` drawn from a 16-name pool, so 400 items
    #: give ~6 authors per last name — real multi-child sorted joins.
    items_total: int = 400
    scadr_users_per_node: int = 40
    subscriptions_per_user: int = 10
    #: Paired-replay phase: interactions replayed per arm by one server.
    replay_interactions: int = 400
    #: Query microbench: executions per query per arm.
    micro_executions: int = 120
    #: Closed-loop phase: population, think time, and horizon.  The load is
    #: deliberately near saturation (short think time, large population):
    #: that is the regime where round structure matters — every extra
    #: sequential dereference round sits in a storage-node queue — so the
    #: fused arm's lower per-interaction round count turns into both higher
    #: simulated throughput and more completed work per wall second.  The
    #: simulation itself is deterministic; repetitions only average the
    #: wall clock, and arms are interleaved across repetitions so slow
    #: machine-load drift cancels instead of biasing one arm.
    clients: int = 60
    think_time_seconds: float = 0.1
    duration_seconds: float = 15.0
    closed_loop_repetitions: int = 3
    #: Tracing-overhead phase: full chunk-paired replay passes; the median
    #: per-chunk traced/untraced ratio over all passes is the reported
    #: overhead (robust against machine-load drift and spikes).
    tracing_repetitions: int = 4
    seed: int = 13

    def quick(self) -> "OperatorFusionConfig":
        """A CI-smoke-sized variant (seconds of wall-clock time)."""
        return replace(
            self,
            users_per_node=10,
            items_total=320,
            scadr_users_per_node=20,
            replay_interactions=100,
            micro_executions=40,
            clients=20,
            duration_seconds=5.0,
            closed_loop_repetitions=3,
        )


@dataclass(frozen=True)
class ReplayRecord:
    """One interaction of the paired replay, as one arm saw it."""

    name: str
    latency_seconds: float
    rpcs: int
    dereference_rounds: int
    query_operations: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class MicroRecord:
    """Aggregates of one query's paired microbench in one arm."""

    executions: int
    operations: int
    rpcs: int
    dereference_rounds: int
    mean_latency_ms: float


@dataclass
class OperatorFusionResult:
    """All three phases' measurements for both arms."""

    config: OperatorFusionConfig
    replay: Dict[str, List[ReplayRecord]]
    replay_wall_seconds: Dict[str, float]
    replay_bounds: Dict[str, Dict[str, int]]
    micro: Dict[str, Dict[str, MicroRecord]]
    closed_loop: Dict[str, Dict[str, float]]
    tracing_overhead: Dict[str, float] = field(default_factory=dict)
    forensics_overhead: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Replay-phase summaries
    # ------------------------------------------------------------------
    def replay_operations_identical(self) -> bool:
        """Whether every replayed interaction did identical per-query work."""
        serial, fused = self.replay["serial"], self.replay["fused"]
        return len(serial) == len(fused) and all(
            a.name == b.name and a.query_operations == b.query_operations
            for a, b in zip(serial, fused)
        )

    def bounds_identical(self) -> bool:
        """Whether every prepared query reports the same static bound."""
        return self.replay_bounds["serial"] == self.replay_bounds["fused"]

    def replay_percentile_ms(self, arm: str, fraction: float) -> float:
        return percentile(
            [record.latency_seconds for record in self.replay[arm]], fraction
        ) * 1000.0

    def replay_totals(self, arm: str) -> Tuple[int, int]:
        """(total RPCs, total dereference rounds) of one replay arm."""
        records = self.replay[arm]
        return (
            sum(r.rpcs for r in records),
            sum(r.dereference_rounds for r in records),
        )

    def micro_round_reduction(self, query: str) -> float:
        """serial / fused dereference-round ratio for one microbench query."""
        serial = self.micro["serial"][query].dereference_rounds
        fused = self.micro["fused"][query].dereference_rounds
        if fused == 0:
            return 1.0 if serial == 0 else float(serial)
        return serial / fused

    def summary_payload(self) -> Dict:
        serial_rpcs, serial_rounds = self.replay_totals("serial")
        fused_rpcs, fused_rounds = self.replay_totals("fused")
        return {
            "config": {
                "storage_nodes": self.config.storage_nodes,
                "users_per_node": self.config.users_per_node,
                "items_total": self.config.items_total,
                "replay_interactions": self.config.replay_interactions,
                "micro_executions": self.config.micro_executions,
                "clients": self.config.clients,
                "duration_seconds": self.config.duration_seconds,
                "seed": self.config.seed,
            },
            "replay": {
                "operations_identical": self.replay_operations_identical(),
                "bounds_identical": self.bounds_identical(),
                "static_bounds": self.replay_bounds["fused"],
                "rpcs": {"serial": serial_rpcs, "fused": fused_rpcs},
                "dereference_rounds": {
                    "serial": serial_rounds, "fused": fused_rounds,
                },
                "wall_seconds": self.replay_wall_seconds,
                "p50_ms": {
                    arm: self.replay_percentile_ms(arm, 0.50) for arm in ARMS
                },
                "p99_ms": {
                    arm: self.replay_percentile_ms(arm, 0.99) for arm in ARMS
                },
            },
            "micro": {
                arm: {
                    query: {
                        "executions": record.executions,
                        "operations": record.operations,
                        "rpcs": record.rpcs,
                        "dereference_rounds": record.dereference_rounds,
                        "mean_latency_ms": record.mean_latency_ms,
                    }
                    for query, record in per_query.items()
                }
                for arm, per_query in self.micro.items()
            },
            "micro_round_reduction": {
                query: self.micro_round_reduction(query)
                for query in self.micro["serial"]
            },
            "closed_loop": self.closed_loop,
            "tracing_overhead": self.tracing_overhead,
            "forensics_overhead": self.forensics_overhead,
        }


class OperatorFusionExperiment:
    """Run all three phases of the serial-versus-fused comparison."""

    def __init__(self, config: Optional[OperatorFusionConfig] = None):
        self.config = config or OperatorFusionConfig()

    # ------------------------------------------------------------------
    # Shared setup
    # ------------------------------------------------------------------
    def _tpcw_database(self, fused: bool) -> Tuple[PiqlDatabase, TpcwWorkload]:
        config = self.config
        # Both arms decode identical payload bytes, so the process-global
        # row caches warmed by one arm would hand the other a head start;
        # every arm starts cold so the wall-clock comparison is fair.
        clear_row_caches()
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=config.seed,
            ),
            fused=fused,
        )
        workload = TpcwWorkload()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        # Paired arms replay the same service-time noise so the measured
        # difference is the arms' round structure, not luck.
        db.cluster.reseed_latency_models(config.seed)
        return db, workload

    def _scadr_database(self, fused: bool) -> Tuple[PiqlDatabase, ScadrWorkload]:
        config = self.config
        clear_row_caches()
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=config.seed + 1,
            ),
            fused=fused,
        )
        workload = ScadrWorkload(
            max_subscriptions=config.subscriptions_per_user,
            subscriptions_per_user=config.subscriptions_per_user,
        )
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=config.scadr_users_per_node,
                seed=config.seed + 1,
            ),
        )
        db.cluster.reseed_latency_models(config.seed + 1)
        return db, workload

    # ------------------------------------------------------------------
    # Phase 1: paired replay
    # ------------------------------------------------------------------
    def run_replay(
        self, fused: bool
    ) -> Tuple[List[ReplayRecord], float, Dict[str, int]]:
        config = self.config
        db, workload = self._tpcw_database(fused)
        db.reset_measurements()
        rng = random.Random(config.seed + 2)
        records: List[ReplayRecord] = []
        started = time.perf_counter()
        for _ in range(config.replay_interactions):
            plan = workload.interaction_plan(db, rng)
            result = workload.run_plan(db, plan)
            records.append(
                ReplayRecord(
                    name=result.name,
                    latency_seconds=result.latency_seconds,
                    rpcs=result.rpcs,
                    dereference_rounds=result.dereference_rounds,
                    query_operations=tuple(sorted(result.query_operations.items())),
                )
            )
        wall = time.perf_counter() - started
        bounds = {
            name: db.prepare(workload.query_sql(name)).operation_bound
            for name in workload.query_names()
        }
        return records, wall, bounds

    # ------------------------------------------------------------------
    # Phase 2: query microbench
    # ------------------------------------------------------------------
    def run_micro(self, fused: bool) -> Dict[str, MicroRecord]:
        config = self.config
        databases: Dict[str, Tuple[PiqlDatabase, Workload]] = {
            "tpcw": self._tpcw_database(fused),
            "scadr": self._scadr_database(fused),
        }
        measurements: Dict[str, MicroRecord] = {}
        for workload_key, query in MICRO_QUERIES:
            db, workload = databases[workload_key]
            rng = random.Random(config.seed + 3)
            stats = db.client.stats
            operations = rpcs = rounds = 0
            latency = 0.0
            for _ in range(config.micro_executions):
                before = stats.snapshot()
                result = workload.run_query(db, query, rng)
                delta = stats.snapshot().delta(before)
                operations += delta.operations
                rpcs += delta.rpcs
                rounds += delta.dereference_rounds
                latency += result.latency_seconds
            measurements[query] = MicroRecord(
                executions=config.micro_executions,
                operations=operations,
                rpcs=rpcs,
                dereference_rounds=rounds,
                mean_latency_ms=latency / config.micro_executions * 1000.0,
            )
        return measurements

    # ------------------------------------------------------------------
    # Phase 3: closed loop
    # ------------------------------------------------------------------
    def run_closed_loop(self, fused: bool) -> Dict[str, float]:
        config = self.config
        db, workload = self._tpcw_database(fused)
        simulation = ServingSimulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=config.clients,
                think_time_seconds=config.think_time_seconds,
                duration_seconds=config.duration_seconds,
                seed=config.seed,
            ),
        )
        started = time.perf_counter()
        report = simulation.run()
        wall = time.perf_counter() - started
        return {
            "completed": float(report.completed),
            "throughput_per_second": report.throughput,
            "p50_ms": report.response_percentile_ms(0.50),
            "p99_ms": report.response_percentile_ms(0.99),
            "wall_seconds": wall,
            "completed_per_wall_second": report.completed / wall if wall > 0 else 0.0,
        }

    def run_closed_loops(self) -> Dict[str, Dict[str, float]]:
        """Interleaved repetitions of the closed loop, wall clock averaged.

        Each repetition replays the identical deterministic simulation; the
        only quantity that varies is the wall clock, so the repetitions
        exist purely to average machine noise, and interleaving the arms
        keeps slow load drift from favouring whichever arm runs last.
        """
        runs: Dict[str, List[Dict[str, float]]] = {arm: [] for arm in ARMS}
        for _ in range(max(1, self.config.closed_loop_repetitions)):
            for arm in ARMS:
                runs[arm].append(self.run_closed_loop(arm == "fused"))
        aggregated: Dict[str, Dict[str, float]] = {}
        for arm, samples in runs.items():
            wall = sum(s["wall_seconds"] for s in samples) / len(samples)
            merged = dict(samples[0])
            merged["wall_seconds"] = wall
            merged["repetitions"] = float(len(samples))
            merged["completed_per_wall_second"] = (
                merged["completed"] / wall if wall > 0 else 0.0
            )
            aggregated[arm] = merged
        return aggregated

    # ------------------------------------------------------------------
    # Phase 4: tracing overhead
    # ------------------------------------------------------------------
    def run_tracing_overhead(self) -> Dict[str, float]:
        """Paired tracing-off/on replay on the fused executor.

        Both arms replay the identical deterministic interaction sequence on
        identically seeded databases; the traced arm additionally records a
        full span tree per interaction (bounded root retention, so memory
        stays flat).  The replay is split into small chunks whose two arms
        run back to back; the reported ``overhead_ratio`` is the *median*
        of the per-chunk paired ratios, which is robust against both
        machine-load drift (each pair is adjacent in time) and load spikes
        (the median discards them).
        """
        config = self.config
        arms = ("untraced", "traced")
        databases: Dict[str, Tuple[PiqlDatabase, TpcwWorkload]] = {}
        rngs: Dict[str, random.Random] = {}
        for arm in arms:
            db, workload = self._tpcw_database(fused=True)
            db.reset_measurements()
            if arm == "traced":
                db.enable_tracing()
            databases[arm] = (db, workload)
            rngs[arm] = random.Random(config.seed + 4)
        walls: Dict[str, float] = {arm: 0.0 for arm in arms}
        ratios: List[float] = []
        chunk = 10
        chunks, remainder = divmod(config.replay_interactions, chunk)
        sizes = [chunk] * chunks + ([remainder] if remainder else [])
        for _ in range(max(1, config.tracing_repetitions)):
            for index, size in enumerate(sizes):
                # The two arms of a chunk run back to back (alternating which
                # goes first), so machine-load drift hits both equally; each
                # chunk yields one paired overhead ratio and the median over
                # all chunks is immune to load spikes that a total-wall
                # comparison would absorb into one arm.
                ordered = arms if index % 2 == 0 else arms[::-1]
                elapsed = {}
                for arm in ordered:
                    db, workload = databases[arm]
                    rng = rngs[arm]
                    started = time.perf_counter()
                    for _ in range(size):
                        plan = workload.interaction_plan(db, rng)
                        workload.run_plan(db, plan)
                    elapsed[arm] = time.perf_counter() - started
                    walls[arm] += elapsed[arm]
                if elapsed["untraced"] > 0:
                    ratios.append(elapsed["traced"] / elapsed["untraced"])
        untraced = walls["untraced"]
        traced = walls["traced"]
        ratios.sort()
        median_ratio = ratios[len(ratios) // 2] if ratios else 1.0
        # Tracing must observe the work, never change it: both arms end with
        # identical operation counts on their deterministic twins.
        operations = {
            arm: databases[arm][0].client.stats.operations for arm in arms
        }
        return {
            "interactions": float(config.replay_interactions),
            "repetitions": float(max(1, config.tracing_repetitions)),
            "untraced_wall_seconds": untraced,
            "traced_wall_seconds": traced,
            "overhead_ratio": median_ratio,
            "total_wall_ratio": traced / untraced if untraced > 0 else 1.0,
            "operations_identical": float(
                operations["untraced"] == operations["traced"]
            ),
        }

    # ------------------------------------------------------------------
    # Phase 5: forensics overhead
    # ------------------------------------------------------------------
    def run_forensics_overhead(self) -> Dict[str, float]:
        """Paired tracing-only versus tracing-plus-forensics fused replay.

        Both arms trace every interaction; the forensics arm additionally
        attaches a :class:`~repro.obs.flightrec.FlightRecorder` (with its
        critical-path aggregator) as the bound auditor's recorder hook, so
        every finished query is critical-path-analysed and considered for
        retention — the full latency-forensics hot path.  Chunk-paired
        like the tracing phase; the reported ``overhead_ratio`` is the
        median per-chunk forensics/traced ratio.
        """
        config = self.config
        arms = ("traced", "forensics")
        databases: Dict[str, Tuple[PiqlDatabase, TpcwWorkload]] = {}
        rngs: Dict[str, random.Random] = {}
        recorder: Optional[FlightRecorder] = None
        for arm in arms:
            db, workload = self._tpcw_database(fused=True)
            db.reset_measurements()
            db.enable_tracing()
            if arm == "forensics":
                recorder = FlightRecorder(
                    ForensicsConfig(),
                    aggregator=CriticalPathAggregator(),
                )
                db.auditor.recorder = recorder
            databases[arm] = (db, workload)
            rngs[arm] = random.Random(config.seed + 5)
        walls: Dict[str, float] = {arm: 0.0 for arm in arms}
        ratios: List[float] = []
        chunk = 10
        chunks, remainder = divmod(config.replay_interactions, chunk)
        sizes = [chunk] * chunks + ([remainder] if remainder else [])
        for _ in range(max(1, config.tracing_repetitions)):
            for index, size in enumerate(sizes):
                ordered = arms if index % 2 == 0 else arms[::-1]
                elapsed = {}
                for arm in ordered:
                    db, workload = databases[arm]
                    rng = rngs[arm]
                    started = time.perf_counter()
                    for _ in range(size):
                        plan = workload.interaction_plan(db, rng)
                        workload.run_plan(db, plan)
                    elapsed[arm] = time.perf_counter() - started
                    walls[arm] += elapsed[arm]
                if elapsed["traced"] > 0:
                    ratios.append(elapsed["forensics"] / elapsed["traced"])
        ratios.sort()
        median_ratio = ratios[len(ratios) // 2] if ratios else 1.0
        operations = {
            arm: databases[arm][0].client.stats.operations for arm in arms
        }
        assert recorder is not None
        return {
            "interactions": float(config.replay_interactions),
            "repetitions": float(max(1, config.tracing_repetitions)),
            "traced_wall_seconds": walls["traced"],
            "forensics_wall_seconds": walls["forensics"],
            "overhead_ratio": median_ratio,
            "total_wall_ratio": (
                walls["forensics"] / walls["traced"]
                if walls["traced"] > 0 else 1.0
            ),
            "operations_identical": float(
                operations["traced"] == operations["forensics"]
            ),
            "traces_seen": float(recorder.seen),
            "retained_traces": float(len(recorder.traces)),
            "memory_bytes": float(recorder.memory_bytes),
            "memory_budget_bytes": float(recorder.config.memory_budget_bytes),
        }

    # ------------------------------------------------------------------
    # Whole experiment
    # ------------------------------------------------------------------
    def run(self) -> OperatorFusionResult:
        replay: Dict[str, List[ReplayRecord]] = {}
        replay_wall: Dict[str, float] = {}
        replay_bounds: Dict[str, Dict[str, int]] = {}
        for arm in ARMS:
            records, wall, bounds = self.run_replay(arm == "fused")
            replay[arm] = records
            replay_wall[arm] = wall
            replay_bounds[arm] = bounds
        micro = {arm: self.run_micro(arm == "fused") for arm in ARMS}
        closed_loop = self.run_closed_loops()
        tracing_overhead = self.run_tracing_overhead()
        forensics_overhead = self.run_forensics_overhead()
        return OperatorFusionResult(
            config=self.config,
            replay=replay,
            replay_wall_seconds=replay_wall,
            replay_bounds=replay_bounds,
            micro=micro,
            closed_loop=closed_loop,
            tracing_overhead=tracing_overhead,
            forensics_overhead=forensics_overhead,
        )


def check_result(result: OperatorFusionResult, quick: bool = False) -> None:
    """Regression guard shared by the CLI run and the benchmark suite.

    Raises ``AssertionError`` when fusion changes the logical work (it never
    may), fails to collapse multi-child dereference rounds, or regresses
    the wall clock of the paired replay beyond a generous tolerance.
    """
    assert result.replay_operations_identical(), (
        "fused arm issued different per-query operation counts"
    )
    assert result.bounds_identical(), (
        "fused arm compiled different static bounds"
    )
    # Multiplicative drop in dereference rounds on the multi-child
    # sorted-index-join class.
    reduction = result.micro_round_reduction("search_by_author_wi")
    assert reduction >= 2.0, (
        f"dereference-round reduction on search_by_author_wi was "
        f"{reduction:.2f}x, expected >= 2x"
    )
    # Identical logical work per execution, arm to arm, in the microbench.
    for query in result.micro["serial"]:
        assert (
            result.micro["serial"][query].operations
            == result.micro["fused"][query].operations
        ), query
    # Coarse wall-clock guard: both replay arms do identical logical work
    # from cold caches, so the fused arm must not be meaningfully slower.
    # The tolerance is deliberately generous — the quick replay lasts well
    # under a second on a shared CI runner, so this only catches
    # pathological regressions (an accidental quadratic path), not noise.
    serial_wall = result.replay_wall_seconds["serial"]
    fused_wall = result.replay_wall_seconds["fused"]
    tolerance = 1.60 if quick else 1.25
    assert fused_wall <= serial_wall * tolerance, (
        f"fused replay took {fused_wall:.2f}s versus serial {serial_wall:.2f}s "
        f"(tolerance {tolerance}x)"
    )
    # Tracing observes the work without changing it, and the span recording
    # stays within the observability tier's wall-clock budget.  The target
    # is <= 5% overhead; the guard is looser (the chunk-paired median tames
    # but does not eliminate shared-runner noise on sub-second quick arms).
    if result.tracing_overhead:
        assert result.tracing_overhead["operations_identical"] == 1.0, (
            "tracing changed the operation count of the replay"
        )
        ratio = result.tracing_overhead["overhead_ratio"]
        budget = 1.25 if quick else 1.15
        assert ratio <= budget, (
            f"tracing overhead was {ratio:.3f}x untraced wall clock "
            f"(budget {budget}x)"
        )
    # The latency-forensics hot path (critical-path analysis + retention
    # decision per finished query) must stay within 10% of the tracing-only
    # wall clock (the quick guard is slightly looser for the same
    # sub-second-chunk noise reason as the tracing budget above), and the
    # recorder's retained memory inside its budget.
    if result.forensics_overhead:
        overhead = result.forensics_overhead
        assert overhead["operations_identical"] == 1.0, (
            "the flight recorder changed the operation count of the replay"
        )
        ratio = overhead["overhead_ratio"]
        budget = 1.15 if quick else 1.10
        assert ratio <= budget, (
            f"forensics overhead was {ratio:.3f}x the tracing-only wall "
            f"clock (budget {budget}x)"
        )
        assert overhead["memory_bytes"] <= overhead["memory_budget_bytes"], (
            f"flight recorder held {overhead['memory_bytes']:.0f} bytes, "
            f"budget {overhead['memory_budget_bytes']:.0f}"
        )


def print_result(result: OperatorFusionResult) -> None:
    serial_rpcs, serial_rounds = result.replay_totals("serial")
    fused_rpcs, fused_rounds = result.replay_totals("fused")
    print("== paired replay (one application server, identical seeds) ==")
    print(
        f"per-query operation counts identical: "
        f"{result.replay_operations_identical()}; "
        f"static bounds identical: {result.bounds_identical()}"
    )
    print(
        format_table(
            ["arm", "RPCs", "deref rounds", "p50 ms", "p99 ms", "wall s"],
            [
                (
                    arm,
                    result.replay_totals(arm)[0],
                    result.replay_totals(arm)[1],
                    f"{result.replay_percentile_ms(arm, 0.5):.2f}",
                    f"{result.replay_percentile_ms(arm, 0.99):.2f}",
                    f"{result.replay_wall_seconds[arm]:.2f}",
                )
                for arm in ARMS
            ],
        )
    )
    print(
        f"replay totals: RPCs {serial_rpcs} -> {fused_rpcs}, dereference "
        f"rounds {serial_rounds} -> {fused_rounds}\n"
    )
    print("== query microbench (paired parameters) ==")
    rows = []
    for _, query in MICRO_QUERIES:
        serial = result.micro["serial"][query]
        fused = result.micro["fused"][query]
        rows.append(
            (
                query,
                serial.operations,
                fused.operations,
                serial.dereference_rounds,
                fused.dereference_rounds,
                f"{result.micro_round_reduction(query):.2f}x",
                f"{serial.mean_latency_ms:.2f}",
                f"{fused.mean_latency_ms:.2f}",
            )
        )
    print(
        format_table(
            ["query", "serial ops", "fused ops", "serial rounds",
             "fused rounds", "round cut", "serial ms", "fused ms"],
            rows,
        )
    )
    print()
    print("== closed loop (think-time population, event kernel) ==")
    print(
        format_table(
            ["arm", "completed", "sim throughput/s", "p50 ms", "p99 ms",
             "wall s", "completed/wall s"],
            [
                (
                    arm,
                    result.closed_loop[arm]["completed"],
                    f"{result.closed_loop[arm]['throughput_per_second']:.1f}",
                    f"{result.closed_loop[arm]['p50_ms']:.2f}",
                    f"{result.closed_loop[arm]['p99_ms']:.2f}",
                    f"{result.closed_loop[arm]['wall_seconds']:.2f}",
                    f"{result.closed_loop[arm]['completed_per_wall_second']:.1f}",
                )
                for arm in ARMS
            ],
        )
    )
    serial_rate = result.closed_loop["serial"]["completed_per_wall_second"]
    fused_rate = result.closed_loop["fused"]["completed_per_wall_second"]
    if serial_rate > 0:
        print(
            f"wall-clock throughput gain: {fused_rate / serial_rate:.2f}x"
        )
    if result.tracing_overhead:
        overhead = result.tracing_overhead
        print()
        print("== tracing overhead (paired tracing-off/on fused replay) ==")
        print(
            f"untraced {overhead['untraced_wall_seconds']:.3f}s, traced "
            f"{overhead['traced_wall_seconds']:.3f}s over "
            f"{overhead['interactions']:.0f} interactions x "
            f"{overhead['repetitions']:.0f} chunk-paired passes: "
            f"{(overhead['overhead_ratio'] - 1.0) * 100.0:+.1f}% wall clock "
            f"(chunk-median; total-wall ratio "
            f"{overhead['total_wall_ratio']:.3f}x)"
        )
    if result.forensics_overhead:
        overhead = result.forensics_overhead
        print()
        print("== forensics overhead (traced versus traced+flight-recorder) ==")
        print(
            f"traced {overhead['traced_wall_seconds']:.3f}s, forensics "
            f"{overhead['forensics_wall_seconds']:.3f}s: "
            f"{(overhead['overhead_ratio'] - 1.0) * 100.0:+.1f}% wall clock "
            f"(chunk-median; total-wall ratio "
            f"{overhead['total_wall_ratio']:.3f}x); recorder retained "
            f"{overhead['retained_traces']:.0f}/{overhead['traces_seen']:.0f} "
            f"traces in {overhead['memory_bytes']:.0f}B "
            f"(budget {overhead['memory_budget_bytes']:.0f}B)"
        )


def main(argv: Optional[List[str]] = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    config = OperatorFusionConfig()
    if quick:
        config = config.quick()
    result = OperatorFusionExperiment(config).run()
    print_result(result)
    save_results("operator_fusion", result.summary_payload())
    check_result(result, quick=quick)


if __name__ == "__main__":
    main()
