"""Serving-tier benchmark: SLO violation under a traffic surge, then recovery.

The scenario models the event the PIQL paper's SLO methodology is designed
to survive — a site whose traffic suddenly outgrows its provisioned
capacity:

* **normal** phase: open-loop TPC-W traffic well under cluster capacity;
  the SLO holds comfortably.
* **surge** phase: the arrival rate jumps past what the storage nodes can
  absorb; dispatch backlogs and per-node queues build and the observed SLO
  quantile blows through the objective.
* **recovery** phase: traffic returns to normal and the backlog drains.

The experiment runs the scenario twice — once with the admission controller
disabled (every request is accepted and the p99 diverges) and once enabled
(a fraction of requests is shed, the requests that are admitted stay close
to the objective) — and reports per-phase and per-SLO-window summaries, the
shape of Figures 8–11 of the paper.

Run with ``PYTHONPATH=src python -m repro.bench.bench_serving_slo``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..kvstore.cluster import ClusterConfig
from ..prediction.slo import ServiceLevelObjective
from ..serving.simulator import ServingConfig, ServingReport, ServingSimulation
from ..workloads.base import WorkloadScale
from ..workloads.tpcw.workload import TpcwWorkload
from .reporting import format_table, percentile, save_results


@dataclass(frozen=True)
class ServingSloConfig:
    """Cluster, workload, and traffic shape of the surge scenario."""

    storage_nodes: int = 4
    node_capacity_ops_per_second: float = 400.0
    users_per_node: int = 30
    items_total: int = 100
    clients: int = 50
    normal_rate_per_second: float = 40.0
    surge_rate_per_second: float = 200.0
    normal_seconds: float = 10.0
    surge_seconds: float = 10.0
    recovery_seconds: float = 10.0
    slo: ServiceLevelObjective = field(
        default_factory=lambda: ServiceLevelObjective(
            quantile=0.99, latency_seconds=0.1, interval_seconds=5.0
        )
    )
    seed: int = 7

    @property
    def duration_seconds(self) -> float:
        return self.normal_seconds + self.surge_seconds + self.recovery_seconds

    def phases(self) -> List[Tuple[str, float, float]]:
        """(name, start, end) of each traffic phase."""
        surge_start = self.normal_seconds
        surge_end = surge_start + self.surge_seconds
        return [
            ("normal", 0.0, surge_start),
            ("surge", surge_start, surge_end),
            ("recovery", surge_end, self.duration_seconds),
        ]


@dataclass(frozen=True)
class PhaseSummary:
    """Latency summary of one traffic phase of one run."""

    phase: str
    completed: int
    shed: int
    p50_ms: float
    p99_ms: float
    compliance: float


@dataclass
class ServingSloResult:
    """Reports and per-phase summaries for both runs of the scenario."""

    config: ServingSloConfig
    reports: Dict[str, ServingReport]
    phase_summaries: Dict[str, List[PhaseSummary]]

    def summary_payload(self) -> Dict:
        return {
            label: [summary.__dict__ for summary in summaries]
            for label, summaries in self.phase_summaries.items()
        }


class ServingSloExperiment:
    """Run the surge scenario with and without admission control."""

    def __init__(self, config: Optional[ServingSloConfig] = None):
        self.config = config or ServingSloConfig()

    # ------------------------------------------------------------------
    # One variant
    # ------------------------------------------------------------------
    def _fresh_database(self) -> Tuple[PiqlDatabase, TpcwWorkload]:
        config = self.config
        db = PiqlDatabase.simulated(
            ClusterConfig(
                storage_nodes=config.storage_nodes,
                node_capacity_ops_per_second=config.node_capacity_ops_per_second,
                seed=config.seed,
            )
        )
        workload = TpcwWorkload()
        workload.setup(
            db,
            WorkloadScale(
                storage_nodes=max(2, config.storage_nodes // 2),
                users_per_node=config.users_per_node,
                items_total=config.items_total,
                seed=config.seed,
            ),
        )
        return db, workload

    def run_variant(self, admission_enabled: bool) -> ServingReport:
        """Run the three-phase scenario once (fresh database per variant)."""
        config = self.config
        db, workload = self._fresh_database()
        serving_config = ServingConfig(
            mode="open",
            clients=config.clients,
            arrival_rate_per_second=config.normal_rate_per_second,
            duration_seconds=config.duration_seconds,
            slo=config.slo,
            admission_enabled=admission_enabled,
            seed=config.seed,
        )
        simulation = ServingSimulation(db, workload, serving_config)
        driver = simulation.driver

        surge_start = config.normal_seconds
        surge_end = surge_start + config.surge_seconds
        simulation.sim.schedule_at(
            surge_start,
            lambda _sim: driver.set_rate(config.surge_rate_per_second),
            name="surge-begins",
        )
        simulation.sim.schedule_at(
            surge_end,
            lambda _sim: driver.set_rate(config.normal_rate_per_second),
            name="surge-ends",
        )
        return simulation.run()

    # ------------------------------------------------------------------
    # Whole experiment
    # ------------------------------------------------------------------
    def summarise_phases(self, report: ServingReport) -> List[PhaseSummary]:
        slo = self.config.slo
        summaries = []
        for name, start, end in self.config.phases():
            responses = [
                record.response_seconds
                for record in report.log.records
                if start <= record.arrival_seconds < end
            ]
            if responses:
                compliant = sum(1 for r in responses if r <= slo.latency_seconds)
                summaries.append(
                    PhaseSummary(
                        phase=name,
                        completed=len(responses),
                        shed=0,  # per-phase shed counts live in the log total
                        p50_ms=percentile(responses, 0.50) * 1000.0,
                        p99_ms=percentile(responses, 0.99) * 1000.0,
                        compliance=compliant / len(responses),
                    )
                )
            else:
                summaries.append(
                    PhaseSummary(
                        phase=name, completed=0, shed=0,
                        p50_ms=0.0, p99_ms=0.0, compliance=1.0,
                    )
                )
        return summaries

    def run(self) -> ServingSloResult:
        reports: Dict[str, ServingReport] = {}
        summaries: Dict[str, List[PhaseSummary]] = {}
        for label, admission in (("no_admission", False), ("admission", True)):
            report = self.run_variant(admission)
            reports[label] = report
            summaries[label] = self.summarise_phases(report)
        return ServingSloResult(
            config=self.config, reports=reports, phase_summaries=summaries
        )


def main() -> None:
    experiment = ServingSloExperiment()
    result = experiment.run()
    slo = experiment.config.slo
    print(
        f"SLO: {slo.quantile:.0%} of interactions under {slo.latency_ms:.0f} ms "
        f"per {slo.interval_seconds:.0f} s interval\n"
    )
    for label, summaries in result.phase_summaries.items():
        report = result.reports[label]
        shed = report.admission.shed if report.admission else 0
        print(f"== {label} (completed={report.completed}, shed={shed}) ==")
        print(
            format_table(
                ["phase", "completed", "p50 ms", "p99 ms", "SLO compliance"],
                [
                    (s.phase, s.completed, s.p50_ms, s.p99_ms, s.compliance)
                    for s in summaries
                ],
            )
        )
        print(
            format_table(
                ["window", "count", "p50 ms", "p99 ms", "violated"],
                [
                    (w.index, w.count, w.p50_ms, w.quantile_ms, w.violated)
                    for w in report.windows
                ],
            )
        )
        print()
    save_results("serving_slo", result.summary_payload())


if __name__ == "__main__":
    main()
