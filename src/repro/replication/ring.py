"""Consistent-hashing replica placement ring with virtual nodes.

Replica placement answers one question: *which storage nodes hold copies of
this key?*  The classic answer (Dynamo, Cassandra, and the SCADS lineage the
PIQL paper builds on) is a consistent-hashing ring: every physical node owns
many pseudo-random points ("virtual nodes") on a circular 64-bit token
space; a key hashes to a token and its ``n`` replicas are the first ``n``
*distinct* physical nodes encountered walking the ring clockwise from that
token.

Properties the rest of the replication tier relies on:

* **Pure function of topology** — the preference list depends only on the
  key bytes and the set of node ids currently in the ring (vnode positions
  are deterministic hashes of ``(seed, node_id, vnode_index)``), never on
  request order, so interleaved clients route identically run to run.
* **Minimal movement** — adding or removing one node only reassigns the
  keys whose ring walk crosses that node's vnodes, roughly ``1/nodes`` of
  the key space, which keeps anti-entropy rebalances proportional to the
  topology change rather than to the cluster size.
* **Distinct replicas** — a preference list never names the same physical
  node twice, even though adjacent vnodes often belong to the same node.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


def stable_hash64(data: bytes) -> int:
    """A fast, deterministic 64-bit hash (stable across processes/runs)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """A consistent-hashing ring mapping keys to ordered replica lists."""

    def __init__(self, vnodes_per_node: int = 128, seed: int = 0):
        if vnodes_per_node < 1:
            raise ValueError("vnodes_per_node must be >= 1")
        self.vnodes_per_node = vnodes_per_node
        self.seed = seed
        #: Monotonic counter bumped on every topology change; callers use it
        #: to invalidate cached preference lists.
        self.epoch = 0
        self._members: Dict[int, Tuple[int, ...]] = {}
        self._tokens: List[int] = []
        self._owners: List[int] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _vnode_tokens(self, node_id: int) -> Tuple[int, ...]:
        return tuple(
            stable_hash64(f"vnode:{self.seed}:{node_id}:{index}".encode())
            for index in range(self.vnodes_per_node)
        )

    def add_node(self, node_id: int) -> None:
        """Place a node's virtual nodes on the ring (idempotent)."""
        if node_id in self._members:
            return
        self._members[node_id] = self._vnode_tokens(node_id)
        self._rebuild()

    def remove_node(self, node_id: int) -> None:
        """Take a node's virtual nodes off the ring."""
        if self._members.pop(node_id, None) is not None:
            self._rebuild()

    def _rebuild(self) -> None:
        points = sorted(
            (token, node_id)
            for node_id, tokens in self._members.items()
            for token in tokens
        )
        self._tokens = [token for token, _ in points]
        self._owners = [node_id for _, node_id in points]
        self.epoch += 1

    def node_ids(self) -> List[int]:
        """Ids of all ring members, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def preference_list(self, token_bytes: bytes, n: int) -> List[int]:
        """First ``n`` distinct node ids clockwise from ``hash(token_bytes)``.

        Returns fewer than ``n`` ids only when the ring has fewer than ``n``
        members.
        """
        if not self._members:
            return []
        n = min(n, len(self._members))
        start = bisect.bisect_right(self._tokens, stable_hash64(token_bytes))
        total = len(self._owners)
        chosen: List[int] = []
        seen = set()
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == n:
                    break
        return chosen

    def ownership_fractions(self) -> Dict[int, float]:
        """Approximate fraction of the token space each node owns (primary).

        Used by tests and diagnostics to check placement balance.
        """
        if not self._tokens:
            return {}
        space = float(2**64)
        fractions: Dict[int, float] = {node_id: 0.0 for node_id in self._members}
        for index, token in enumerate(self._tokens):
            previous = self._tokens[index - 1] if index else self._tokens[-1] - 2**64
            fractions[self._owners[index]] += (token - previous) / space
        return fractions


def placement_token(namespace: str, key: bytes) -> bytes:
    """The ring token for one key of one namespace.

    Including the namespace spreads identically-keyed records of different
    namespaces (e.g. a record and its index entry) over different replicas.
    """
    return namespace.encode("utf-8") + b"\x00" + key


def moved_keys(
    before: "HashRing", after: "HashRing", tokens: Sequence[bytes], n: int
) -> int:
    """How many of ``tokens`` change any replica between two ring states."""
    return sum(
        1
        for token in tokens
        if before.preference_list(token, n) != after.preference_list(token, n)
    )
