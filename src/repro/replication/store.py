"""Per-node versioned replica storage.

Each :class:`~repro.kvstore.node.StorageNode` now physically owns the data
it is a replica for — one ordered map per namespace, holding **versioned
records**.  A record is the stored value prefixed with an 8-byte write
sequence number and a flag byte::

    record = seq (8 bytes, big endian) | flags (1 byte) | payload

The sequence number is issued by the cluster coordinator at write time and
totally orders all writes, so every conflict-resolution site in the
replication tier — quorum reads, read repair, hinted-handoff replay, and
anti-entropy — applies the same rule: **newest sequence wins**.  Deletes
are tombstones (flag bit set, empty payload) rather than physical removals,
so a delete can propagate to replicas that missed it exactly like any other
write.

The *physical* side — how those per-namespace ordered maps are actually
held — is delegated to a pluggable
:class:`~repro.kvstore.engine.base.StorageEngine` (the in-memory dict
engine by default, or the persistent LSM engine).  Everything logical
(record encoding, newest-wins conflict resolution) lives here and is
engine-independent, which is what keeps query results and operation counts
bit-identical across engines.  Per-node range scans stay byte-ordered
either way, which the scatter-gather range path merges across replicas.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ..kvstore.engine import DictEngine
from ..kvstore.engine.base import StorageEngine

_HEADER = struct.Struct(">QB")
_TOMBSTONE = 0x01

#: Sequence number reported for a key a replica has never heard of.
MISSING_SEQ = -1


def encode_record(seq: int, value: Optional[bytes]) -> bytes:
    """Encode one versioned record; ``value=None`` encodes a tombstone."""
    if seq < 0:
        raise ValueError("sequence numbers must be non-negative")
    flags = _TOMBSTONE if value is None else 0
    return _HEADER.pack(seq, flags) + (value or b"")


def decode_record(record: bytes) -> Tuple[int, Optional[bytes]]:
    """Decode a versioned record to ``(seq, value)``; tombstones give ``None``."""
    seq, flags = _HEADER.unpack_from(record)
    return seq, (None if flags & _TOMBSTONE else record[_HEADER.size:])


def record_seq(record: Optional[bytes]) -> int:
    """Sequence number of an encoded record (``MISSING_SEQ`` for ``None``)."""
    if record is None:
        return MISSING_SEQ
    return _HEADER.unpack_from(record)[0]


class ReplicaStore:
    """One storage node's replica of every namespace it participates in."""

    def __init__(self, engine: Optional[StorageEngine] = None) -> None:
        self.engine: StorageEngine = engine if engine is not None else DictEngine()

    # ------------------------------------------------------------------
    # Namespaces
    # ------------------------------------------------------------------
    def map(self, namespace: str):
        """The (created-on-demand) ordered map backing one namespace."""
        return self.engine.map(namespace)

    def namespaces(self) -> List[str]:
        return self.engine.namespaces()

    def drop_namespace(self, namespace: str) -> None:
        self.engine.drop_namespace(namespace)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def get_record(self, namespace: str, key: bytes) -> Optional[bytes]:
        existing = self.engine.peek(namespace)
        return existing.get(key) if existing is not None else None

    def seq_of(self, namespace: str, key: bytes) -> int:
        return record_seq(self.get_record(namespace, key))

    def apply_record(self, namespace: str, key: bytes, record: bytes) -> bool:
        """Store ``record`` unless a newer version is already present.

        Newest-wins idempotence is what lets read repair, hint replay, and
        anti-entropy all blindly push records at replicas.  Returns whether
        the record was applied.
        """
        if record_seq(record) <= self.seq_of(namespace, key):
            return False
        self.map(namespace).put(key, record)
        return True

    def discard(self, namespace: str, key: bytes) -> bool:
        """Physically remove a key (the node is no longer a replica for it)."""
        existing = self.engine.peek(namespace)
        return existing.delete(key) if existing is not None else False

    def range_records(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
    ) -> List[Tuple[bytes, bytes]]:
        """This replica's encoded records with ``start <= key < end``.

        Tombstones are *included* — the merge layer needs them to suppress
        deleted keys that another replica still carries live.
        """
        existing = self.engine.peek(namespace)
        if existing is None:
            return []
        return existing.range(start, end, limit, ascending)

    def iter_range_records(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        ascending: bool = True,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Lazily iterate this replica's records in a key range (tombstones
        included), so limit-honouring merges can stop early."""
        existing = self.engine.peek(namespace)
        if existing is None:
            return iter(())
        return existing.iter_range(start, end, ascending)

    def iter_records(self, namespace: str) -> Iterator[Tuple[bytes, bytes]]:
        existing = self.engine.peek(namespace)
        if existing is None:
            return iter(())
        return existing.iter_items()

    def key_count(self, namespace: str) -> int:
        """Number of stored records (tombstones included) in a namespace."""
        existing = self.engine.peek(namespace)
        return len(existing) if existing is not None else 0
