"""Replication manager: placement, hinted handoff, and anti-entropy repair.

The manager is the bookkeeping half of the replication tier.  It owns

* the :class:`~repro.replication.ring.HashRing` that places every key on
  ``replication`` distinct nodes,
* one :class:`~repro.replication.store.ReplicaStore` per attached node (the
  node's physical copy of its share of every namespace),
* the cluster-wide **write sequence** that versions records,
* the **hint buffers** — writes acknowledged while a replica was down, kept
  by the coordinator and replayed when the replica recovers, and
* **anti-entropy repair**: after any topology change (node added, removed,
  or recovered) it walks the merged key set, re-replicates every record to
  its current preference list, and drops records from nodes that no longer
  own them.

It deliberately knows nothing about liveness or latency — the
:class:`~repro.kvstore.cluster.KeyValueCluster` decides which node ids are
up and charges the simulated cost of the work the manager reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..kvstore.engine.base import StorageEngine
from .ring import HashRing, placement_token
from .store import (
    MISSING_SEQ,
    ReplicaStore,
    decode_record,
    record_seq,
)

#: Keys resolved per pass by the chunked offline scans (anti-entropy and
#: :meth:`ReplicationManager.iter_live`).  Bounds resident memory: a pass
#: materialises at most this many resolved keys before its replica
#: iterators are abandoned and mutations (or the consumer) run.
SCAN_CHUNK_KEYS = 1024


def _key_after(key: bytes) -> bytes:
    """The smallest byte string strictly greater than ``key``."""
    return key + b"\x00"


@dataclass
class RepairReport:
    """What one anti-entropy / recovery pass actually moved.

    ``bytes_copied`` is what benchmark reports charge as repair bandwidth;
    ``per_node_copies`` lets the cluster charge each destination node's
    latency model for the records it received.
    """

    keys_examined: int = 0
    keys_copied: int = 0
    keys_removed: int = 0
    hints_replayed: int = 0
    bytes_copied: int = 0
    per_node_copies: Dict[int, int] = field(default_factory=dict)
    per_node_bytes: Dict[int, int] = field(default_factory=dict)

    def _count_copy(self, node_id: int, nbytes: int) -> None:
        self.keys_copied += 1
        self.bytes_copied += nbytes
        self.per_node_copies[node_id] = self.per_node_copies.get(node_id, 0) + 1
        self.per_node_bytes[node_id] = self.per_node_bytes.get(node_id, 0) + nbytes

    def merged_with(self, other: "RepairReport") -> "RepairReport":
        merged = RepairReport(
            keys_examined=self.keys_examined + other.keys_examined,
            keys_copied=self.keys_copied + other.keys_copied,
            keys_removed=self.keys_removed + other.keys_removed,
            hints_replayed=self.hints_replayed + other.hints_replayed,
            bytes_copied=self.bytes_copied + other.bytes_copied,
            per_node_copies=dict(self.per_node_copies),
            per_node_bytes=dict(self.per_node_bytes),
        )
        for node_id, count in other.per_node_copies.items():
            merged.per_node_copies[node_id] = (
                merged.per_node_copies.get(node_id, 0) + count
            )
        for node_id, nbytes in other.per_node_bytes.items():
            merged.per_node_bytes[node_id] = (
                merged.per_node_bytes.get(node_id, 0) + nbytes
            )
        return merged

    def summary(self) -> Dict[str, int]:
        return {
            "keys_examined": self.keys_examined,
            "keys_copied": self.keys_copied,
            "keys_removed": self.keys_removed,
            "hints_replayed": self.hints_replayed,
            "bytes_copied": self.bytes_copied,
        }


class ReplicationManager:
    """Placement, per-node stores, hints, and repair for one cluster."""

    def __init__(
        self, replication: int, vnodes_per_node: int = 128, seed: int = 0
    ):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self.ring = HashRing(vnodes_per_node=vnodes_per_node, seed=seed)
        self.stores: Dict[int, ReplicaStore] = {}
        self._hints: Dict[int, Dict[Tuple[str, bytes], bytes]] = {}
        self._seq = 0
        self._preference_cache: Dict[Tuple[str, bytes], List[int]] = {}
        self._cache_epoch = -1

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def attach_node(
        self, node_id: int, engine: Optional[StorageEngine] = None
    ) -> ReplicaStore:
        """Register a node: empty replica store + ring membership.

        ``engine`` selects the node's physical storage (default: the
        in-memory dict engine).
        """
        store = ReplicaStore(engine)
        self.stores[node_id] = store
        self._hints.setdefault(node_id, {})
        self.ring.add_node(node_id)
        return store

    def forget_node(self, node_id: int) -> None:
        """Drop a node's store, hints, and ring membership (idempotent).

        Callers that still need the leaving node's data as a rebalance
        source must run :meth:`rebalance` *before* forgetting it.
        """
        self.ring.remove_node(node_id)
        self.stores.pop(node_id, None)
        self._hints.pop(node_id, None)

    def store(self, node_id: int) -> ReplicaStore:
        return self.stores[node_id]

    def drop_namespace(self, namespace: str) -> None:
        """Remove a namespace's replicas and any hints still destined for it."""
        for store in self.stores.values():
            store.drop_namespace(namespace)
        for hints in self._hints.values():
            for hint_key in [hk for hk in hints if hk[0] == namespace]:
                del hints[hint_key]

    # ------------------------------------------------------------------
    # Versioning / placement
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def preference_list(self, namespace: str, key: bytes) -> List[int]:
        """The ``replication`` node ids that own ``key``, primary first.

        Cached per key; the cache is dropped whenever the ring's topology
        epoch moves (nodes added/removed).
        """
        if self._cache_epoch != self.ring.epoch:
            self._preference_cache = {}
            self._cache_epoch = self.ring.epoch
        cache_key = (namespace, key)
        cached = self._preference_cache.get(cache_key)
        if cached is None:
            cached = self.ring.preference_list(
                placement_token(namespace, key), self.replication
            )
            self._preference_cache[cache_key] = cached
        return cached

    # ------------------------------------------------------------------
    # Hinted handoff
    # ------------------------------------------------------------------
    def add_hint(self, node_id: int, namespace: str, key: bytes, record: bytes) -> None:
        """Buffer a write a down replica missed (newest hint per key wins)."""
        hints = self._hints.setdefault(node_id, {})
        existing = hints.get((namespace, key))
        if existing is None or record_seq(record) > record_seq(existing):
            hints[(namespace, key)] = record

    def hint_count(self, node_id: int) -> int:
        return len(self._hints.get(node_id, {}))

    def total_hint_count(self) -> int:
        """Hints buffered across every down node (fleet hint backlog)."""
        return sum(len(hints) for hints in self._hints.values())

    def take_hints(self, node_id: int) -> Dict[Tuple[str, bytes], bytes]:
        """Drain (and return) the hint buffer destined for a node."""
        hints = self._hints.get(node_id, {})
        self._hints[node_id] = {}
        return hints

    # ------------------------------------------------------------------
    # Merged (logical) views
    # ------------------------------------------------------------------
    def newest_record(
        self, namespace: str, key: bytes, node_ids: Iterable[int]
    ) -> Tuple[int, Optional[bytes]]:
        """Newest ``(seq, record)`` for a key across the given replicas."""
        best_seq = MISSING_SEQ
        best: Optional[bytes] = None
        for node_id in node_ids:
            record = self.stores[node_id].get_record(namespace, key)
            seq = record_seq(record)
            if seq > best_seq:
                best_seq, best = seq, record
        return best_seq, best

    def merged_range(
        self,
        namespace: str,
        node_ids: Sequence[int],
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
    ) -> List[Tuple[bytes, bytes, int]]:
        """Newest live ``(key, value, serving_node)`` triples in a range.

        Each node contributes its replica's slice; per key the newest record
        wins and tombstones suppress the key entirely.  ``serving_node`` is
        the node whose copy supplied the winning record — the cluster
        charges that node's latency model for returning it.

        The per-replica iterators are merged lazily in key order and the
        merge stops as soon as ``limit`` *live* keys have been produced, so
        a LIMIT-honouring caller (the Lazy executor fetches one row at a
        time) does O(limit x replication) work instead of scanning every
        replica's whole slice.  Applying the limit after conflict
        resolution — never per replica — is what keeps a slice that leads
        with tombstones from starving the result.
        """
        streams = [
            (
                (key, record, node_id)
                for key, record in self.stores[node_id].iter_range_records(
                    namespace, start, end, ascending
                )
            )
            for node_id in node_ids
        ]
        merged = heapq.merge(
            *streams, key=lambda entry: entry[0], reverse=not ascending
        )
        results: List[Tuple[bytes, bytes, int]] = []
        current_key: Optional[bytes] = None
        best_seq = MISSING_SEQ
        best_record: Optional[bytes] = None
        best_node = -1

        def flush() -> bool:
            """Emit the resolved current key; return True when limit is hit."""
            if current_key is None or best_record is None:
                return False
            value = decode_record(best_record)[1]
            if value is None:
                return False  # tombstone
            results.append((current_key, value, best_node))
            return limit is not None and len(results) >= limit

        for key, record, node_id in merged:
            if key != current_key:
                if flush():
                    return results
                current_key = key
                best_seq, best_record, best_node = MISSING_SEQ, None, -1
            seq = record_seq(record)
            if seq > best_seq:
                best_seq, best_record, best_node = seq, record, node_id
        flush()
        return results

    def live_key_count(self, namespace: str, node_ids: Sequence[int]) -> int:
        """Number of distinct live (non-tombstone) keys across replicas."""
        return sum(1 for _ in self.iter_live(namespace, node_ids))

    def iter_live(
        self,
        namespace: str,
        node_ids: Sequence[int],
        chunk_keys: int = SCAN_CHUNK_KEYS,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate the logical content of a namespace in key order.

        Resolved in chunks of ``chunk_keys``: each chunk is merged with
        fresh replica iterators starting after the previous chunk's last
        key, then yielded with no iterator left open.  Resident memory is
        bounded by the chunk size rather than the namespace size, and —
        since no replica iterator is live while the consumer runs — the
        consumer may write back into the cluster between chunks (view
        backfill does) without invalidating the scan, even on engines whose
        flushes restructure storage.
        """
        start: Optional[bytes] = None
        while True:
            triples = self.merged_range(
                namespace, node_ids, start, None, limit=chunk_keys
            )
            for key, value, _ in triples:
                yield key, value
            if len(triples) < chunk_keys:
                return
            start = _key_after(triples[-1][0])

    # ------------------------------------------------------------------
    # Anti-entropy repair
    # ------------------------------------------------------------------
    def rebalance(
        self,
        source_ids: Sequence[int],
        target_ids: Optional[Set[int]] = None,
    ) -> RepairReport:
        """Re-replicate every record onto its current preference list.

        ``source_ids`` are the nodes whose stores are trusted as input
        (normally the up nodes); ``target_ids`` optionally restricts which
        nodes are written to / pruned (e.g. just a recovered node).  Down
        nodes must be excluded from both — they catch up through their own
        recovery pass.
        """
        report = RepairReport()
        namespaces: Set[str] = set()
        for node_id in source_ids:
            namespaces.update(self.stores[node_id].namespaces())
        targets = (
            set(self.stores) if target_ids is None else target_ids & set(self.stores)
        )
        # The pass is an external merge in chunks of SCAN_CHUNK_KEYS keys:
        # each chunk streams fresh per-replica iterators from a cursor,
        # resolves newest-wins, *then* applies its copies and discards with
        # no iterator left open (mutating a store under iteration — or
        # triggering an engine flush — would invalidate them).  Resident
        # memory is bounded by the chunk size, never the namespace size.
        extra_holders = [nid for nid in sorted(targets) if nid not in set(source_ids)]
        for namespace in sorted(namespaces):
            cursor: Optional[bytes] = None
            while True:
                chunk = self._resolve_chunk(
                    namespace, source_ids, extra_holders, cursor,
                    SCAN_CHUNK_KEYS,
                )
                for key, record, holders in chunk:
                    report.keys_examined += 1
                    owners = self.preference_list(namespace, key)
                    for node_id in owners:
                        if node_id not in targets:
                            continue
                        if self.stores[node_id].apply_record(
                            namespace, key, record
                        ):
                            report._count_copy(node_id, len(record))
                    for node_id in holders:
                        if node_id in targets and node_id not in owners:
                            if self.stores[node_id].discard(namespace, key):
                                report.keys_removed += 1
                if len(chunk) < SCAN_CHUNK_KEYS:
                    break
                cursor = chunk[-1][0]
        return report

    def _resolve_chunk(
        self,
        namespace: str,
        source_ids: Sequence[int],
        extra_holders: Sequence[int],
        cursor: Optional[bytes],
        chunk_keys: int,
    ) -> List[Tuple[bytes, bytes, List[int]]]:
        """Resolve up to ``chunk_keys`` keys after ``cursor`` for repair.

        Returns ``(key, newest source record, holder node ids)`` per key
        that at least one *source* holds (keys present only on
        ``extra_holders`` are skipped — repair never trusts them as input);
        holders span sources and extras.  All replica iterators are
        exhausted or dropped before returning, so the caller may freely
        mutate the stores afterwards.
        """
        start = None if cursor is None else _key_after(cursor)
        trusted = set(source_ids)

        def tagged(node_id: int):
            # Binds node_id eagerly — a genexp here would close over the
            # loop variable and tag every stream with the last node.
            return (
                (key, record, node_id)
                for key, record in self.stores[node_id].iter_range_records(
                    namespace, start, None
                )
            )

        streams = [
            tagged(node_id)
            for node_id in list(source_ids) + list(extra_holders)
        ]
        merged = heapq.merge(*streams, key=lambda entry: entry[0])
        chunk: List[Tuple[bytes, bytes, List[int]]] = []
        current_key: Optional[bytes] = None
        best: Optional[bytes] = None
        holders: List[int] = []

        def flush() -> None:
            if current_key is not None and best is not None:
                chunk.append((current_key, best, holders))

        for key, record, node_id in merged:
            if key != current_key:
                flush()
                if len(chunk) >= chunk_keys:
                    return chunk
                current_key, best, holders = key, None, []
            holders.append(node_id)
            if node_id in trusted and (
                best is None or record_seq(record) > record_seq(best)
            ):
                best = record
        flush()
        return chunk

    def replay_hints(self, node_id: int) -> RepairReport:
        """Apply (and drain) the hint buffer for a recovered node."""
        report = RepairReport()
        store = self.stores[node_id]
        for (namespace, key), record in self.take_hints(node_id).items():
            report.hints_replayed += 1
            if store.apply_record(namespace, key, record):
                report._count_copy(node_id, len(record))
        return report

    def sync_node(self, node_id: int, source_ids: Sequence[int]) -> RepairReport:
        """Bring one (just-recovered) node up to date: hints + anti-entropy."""
        report = self.replay_hints(node_id)
        sources = [nid for nid in source_ids if nid != node_id] or [node_id]
        return report.merged_with(self.rebalance(sources, target_ids={node_id}))
