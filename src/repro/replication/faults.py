"""Failure injection: scheduled crash / recover / slow-node / network events.

The injector turns a declarative timeline of :class:`FaultSpec`\\ s into
state changes on a :class:`~repro.kvstore.cluster.KeyValueCluster`, driven
through the serving tier's discrete-event kernel (any object exposing
``schedule_at(time, action, name)`` — the injector deliberately duck-types
the kernel so this package does not import the serving tier).

Supported fault kinds:

* ``crash`` — the node stops serving; quorum paths skip it, writes it owns
  turn into hints, reads fall over to the surviving replicas.
* ``recover`` — the node returns; the cluster replays its hints and runs a
  targeted anti-entropy pass, and the injector records the resulting
  :class:`~repro.replication.manager.RepairReport`.
* ``slow`` — degraded capacity: the node's service times are multiplied by
  ``factor`` and its effective capacity divided by it (a straggling VM, the
  paper's Section 6.3 "cloud weather" made persistent).
* ``restore`` — undo ``slow``.
* ``partition`` — split the network into link ``groups`` (message-level:
  nodes stay up but cannot exchange messages across groups; the client
  lands in the implicit remainder group unless listed).
* ``heal`` — clear *all* network faults: partitions, flaky links, delays.
* ``flaky`` — links touching the node drop each message with seeded
  ``probability``; a dropped message surfaces as a timeout, not a no-op.
* ``delay`` — add ``delay_seconds`` of latency to every message touching
  the node.

Every applied fault is recorded as a :class:`FaultEvent` so benchmark
reports can print the failure timeline next to the SLO timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .manager import RepairReport

if TYPE_CHECKING:  # imported lazily: kvstore.cluster imports this package
    from ..kvstore.cluster import KeyValueCluster

_KINDS = (
    "crash",
    "recover",
    "slow",
    "restore",
    "partition",
    "heal",
    "flaky",
    "delay",
)

#: Kinds that target one node (and therefore need a valid ``node_id``).
_NODE_KINDS = ("crash", "recover", "slow", "restore", "flaky", "delay")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what happens to which node/link, and when.

    ``partition`` and ``heal`` are network-wide: their ``node_id`` defaults
    to ``-1`` and is ignored.  ``partition`` requires ``groups`` — a tuple
    of endpoint-id tuples (see
    :meth:`repro.kvstore.network.NetworkModel.partition`).
    """

    time: float
    kind: str
    node_id: int = -1
    #: Service-time multiplier for ``slow`` faults.
    factor: float = 4.0
    #: Per-message drop probability for ``flaky`` faults.
    probability: float = 0.0
    #: Added per-message latency for ``delay`` faults.
    delay_seconds: float = 0.0
    #: Link groups for ``partition`` faults.
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {_KINDS}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind == "slow" and self.factor <= 1.0:
            raise ValueError("slow-node factor must be > 1")
        if self.kind in _NODE_KINDS and self.node_id < 0:
            raise ValueError(f"{self.kind} fault requires a node_id")
        if self.kind == "flaky" and not (0.0 <= self.probability <= 1.0):
            raise ValueError("flaky probability must be in [0, 1]")
        if self.kind == "delay" and self.delay_seconds < 0.0:
            raise ValueError("delay_seconds must be non-negative")
        if self.kind == "partition":
            if not self.groups:
                raise ValueError("partition fault requires non-empty groups")
            # Normalize to hashable tuple-of-tuples so frozen specs compare.
            normalized = tuple(
                tuple(int(member) for member in group) for group in self.groups
            )
            if all(not group for group in normalized):
                raise ValueError("partition fault requires non-empty groups")
            object.__setattr__(self, "groups", normalized)


@dataclass(frozen=True)
class FaultEvent:
    """One fault as it was actually applied."""

    time: float
    kind: str
    node_id: int
    up_nodes_after: int
    detail: str = ""
    repair: Optional[RepairReport] = None


def fault_event_payload(event: FaultEvent) -> Dict[str, object]:
    """JSON-friendly view of one applied fault event.

    Structured repair data (``hints_replayed``/``keys_copied``/
    ``bytes_copied``) is exported as first-class fields — reports should
    not have to parse the free-text ``detail`` string.
    """
    payload: Dict[str, object] = {
        "time": event.time,
        "kind": event.kind,
        "node_id": event.node_id,
        "up_nodes_after": event.up_nodes_after,
        "detail": event.detail,
    }
    if event.repair is not None:
        payload["hints_replayed"] = event.repair.hints_replayed
        payload["keys_copied"] = event.repair.keys_copied
        payload["bytes_copied"] = event.repair.bytes_copied
    return payload


def crash_recover_timeline(
    node_id: int, crash_at: float, recover_at: float
) -> List[FaultSpec]:
    """The classic failover scenario: one node crashes, later recovers."""
    if recover_at <= crash_at:
        raise ValueError("recover_at must be after crash_at")
    return [
        FaultSpec(time=crash_at, kind="crash", node_id=node_id),
        FaultSpec(time=recover_at, kind="recover", node_id=node_id),
    ]


def validate_timeline(specs: Sequence[FaultSpec]) -> None:
    """Reject malformed fault timelines before anything is scheduled.

    Two classes of mistakes are caught here (previously only the
    ``crash_recover_timeline`` helper checked ordering):

    * a ``recover`` scheduled at-or-before its matching ``crash`` — the
      i-th recover of a node must come strictly after the i-th crash;
    * two node-targeted specs for the same node at the same tick, whose
      apply order (and therefore the resulting cluster state) would be
      an accident of sort stability.
    """
    crashes: Dict[int, List[float]] = {}
    recovers: Dict[int, List[float]] = {}
    seen_ticks: Dict[Tuple[float, int], FaultSpec] = {}
    for spec in specs:
        if spec.kind in _NODE_KINDS:
            key = (spec.time, spec.node_id)
            if key in seen_ticks:
                raise ValueError(
                    f"duplicate faults for node {spec.node_id} at "
                    f"t={spec.time:g}: {seen_ticks[key].kind!r} and "
                    f"{spec.kind!r}"
                )
            seen_ticks[key] = spec
        if spec.kind == "crash":
            crashes.setdefault(spec.node_id, []).append(spec.time)
        elif spec.kind == "recover":
            recovers.setdefault(spec.node_id, []).append(spec.time)
    for node_id, recover_times in recovers.items():
        crash_times = sorted(crashes.get(node_id, []))
        for index, recover_at in enumerate(sorted(recover_times)):
            if index >= len(crash_times):
                # Recovering an already-up node is a (tested) no-op edge,
                # not a schedule error.
                continue
            if recover_at <= crash_times[index]:
                raise ValueError(
                    f"recover of node {node_id} at t={recover_at:g} is "
                    f"at-or-before its matching crash at "
                    f"t={crash_times[index]:g}"
                )


class FaultInjector:
    """Applies fault specs to a cluster, immediately or via an event kernel."""

    def __init__(self, cluster: "KeyValueCluster"):
        self.cluster = cluster
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, spec: FaultSpec, now: Optional[float] = None) -> FaultEvent:
        """Apply one fault right now (``now`` defaults to the spec's time).

        A fault aimed at a node that no longer exists (the autoscaler may
        have removed it between scheduling and firing) is recorded as a
        skipped event rather than aborting the simulation.
        """
        at = spec.time if now is None else now
        repair: Optional[RepairReport] = None
        detail = ""
        if spec.kind in _NODE_KINDS and not (
            0 <= spec.node_id < len(self.cluster.nodes)
        ):
            event = FaultEvent(
                time=at,
                kind=spec.kind,
                node_id=spec.node_id,
                up_nodes_after=len(self.cluster.up_nodes()),
                detail="skipped: node no longer provisioned",
            )
            self.events.append(event)
            return event
        if spec.kind == "crash":
            self.cluster.crash_node(spec.node_id)
        elif spec.kind == "recover":
            repair = self.cluster.recover_node(spec.node_id, sim_time=at)
            detail = (
                f"hints={repair.hints_replayed} copied={repair.keys_copied}"
            )
        elif spec.kind == "slow":
            self.cluster.degrade_node(spec.node_id, spec.factor)
            detail = f"factor={spec.factor:g}"
        elif spec.kind == "restore":
            self.cluster.restore_node(spec.node_id)
        elif spec.kind == "partition":
            self.cluster.network.partition(spec.groups or ())
            detail = "groups=" + "|".join(
                ",".join(str(member) for member in group)
                for group in (spec.groups or ())
            )
        elif spec.kind == "heal":
            dropped = self.cluster.network.dropped_messages
            self.cluster.network.heal()
            detail = f"dropped={dropped}"
        elif spec.kind == "flaky":
            self.cluster.network.set_flaky(spec.node_id, spec.probability)
            detail = f"p={spec.probability:g}"
        else:  # delay
            self.cluster.network.set_delay(spec.node_id, spec.delay_seconds)
            detail = f"delay={spec.delay_seconds:g}s"
        event = FaultEvent(
            time=at,
            kind=spec.kind,
            node_id=spec.node_id,
            up_nodes_after=len(self.cluster.up_nodes()),
            detail=detail,
            repair=repair,
        )
        self.events.append(event)
        return event

    def schedule(self, kernel, specs: Sequence[FaultSpec]) -> None:
        """Schedule every spec on an event kernel (``schedule_at`` duck type).

        The timeline is validated first (see :func:`validate_timeline`) so
        an impossible schedule fails loudly at construction, not as a
        confusing mid-run state.
        """
        validate_timeline(specs)
        for spec in sorted(specs, key=lambda s: s.time):
            def fire(sim, spec=spec):
                self.apply(spec, now=sim.now)

            kernel.schedule_at(
                spec.time, fire, name=f"fault-{spec.kind}-{spec.node_id}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_repair(self) -> RepairReport:
        """Aggregate repair work across every recovery processed so far."""
        total = RepairReport()
        for event in self.events:
            if event.repair is not None:
                total = total.merged_with(event.repair)
        return total

    def timeline(self) -> List[Dict[str, object]]:
        """JSON-friendly view of the applied fault events.

        Recovery events carry structured ``hints_replayed``/``keys_copied``
        (and ``bytes_copied``) fields in addition to the free-text detail.
        """
        return [fault_event_payload(event) for event in self.events]
