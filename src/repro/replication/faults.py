"""Failure injection: scheduled crash / recover / slow-node events.

The injector turns a declarative timeline of :class:`FaultSpec`\\ s into
state changes on a :class:`~repro.kvstore.cluster.KeyValueCluster`, driven
through the serving tier's discrete-event kernel (any object exposing
``schedule_at(time, action, name)`` — the injector deliberately duck-types
the kernel so this package does not import the serving tier).

Supported fault kinds:

* ``crash`` — the node stops serving; quorum paths skip it, writes it owns
  turn into hints, reads fall over to the surviving replicas.
* ``recover`` — the node returns; the cluster replays its hints and runs a
  targeted anti-entropy pass, and the injector records the resulting
  :class:`~repro.replication.manager.RepairReport`.
* ``slow`` — degraded capacity: the node's service times are multiplied by
  ``factor`` and its effective capacity divided by it (a straggling VM, the
  paper's Section 6.3 "cloud weather" made persistent).
* ``restore`` — undo ``slow``.

Every applied fault is recorded as a :class:`FaultEvent` so benchmark
reports can print the failure timeline next to the SLO timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .manager import RepairReport

if TYPE_CHECKING:  # imported lazily: kvstore.cluster imports this package
    from ..kvstore.cluster import KeyValueCluster

_KINDS = ("crash", "recover", "slow", "restore")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what happens to which node, and when."""

    time: float
    kind: str
    node_id: int
    #: Service-time multiplier for ``slow`` faults.
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {_KINDS}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind == "slow" and self.factor <= 1.0:
            raise ValueError("slow-node factor must be > 1")


@dataclass(frozen=True)
class FaultEvent:
    """One fault as it was actually applied."""

    time: float
    kind: str
    node_id: int
    up_nodes_after: int
    detail: str = ""
    repair: Optional[RepairReport] = None


def crash_recover_timeline(
    node_id: int, crash_at: float, recover_at: float
) -> List[FaultSpec]:
    """The classic failover scenario: one node crashes, later recovers."""
    if recover_at <= crash_at:
        raise ValueError("recover_at must be after crash_at")
    return [
        FaultSpec(time=crash_at, kind="crash", node_id=node_id),
        FaultSpec(time=recover_at, kind="recover", node_id=node_id),
    ]


class FaultInjector:
    """Applies fault specs to a cluster, immediately or via an event kernel."""

    def __init__(self, cluster: "KeyValueCluster"):
        self.cluster = cluster
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, spec: FaultSpec, now: Optional[float] = None) -> FaultEvent:
        """Apply one fault right now (``now`` defaults to the spec's time).

        A fault aimed at a node that no longer exists (the autoscaler may
        have removed it between scheduling and firing) is recorded as a
        skipped event rather than aborting the simulation.
        """
        at = spec.time if now is None else now
        repair: Optional[RepairReport] = None
        detail = ""
        if not (0 <= spec.node_id < len(self.cluster.nodes)):
            event = FaultEvent(
                time=at,
                kind=spec.kind,
                node_id=spec.node_id,
                up_nodes_after=len(self.cluster.up_nodes()),
                detail="skipped: node no longer provisioned",
            )
            self.events.append(event)
            return event
        if spec.kind == "crash":
            self.cluster.crash_node(spec.node_id)
        elif spec.kind == "recover":
            repair = self.cluster.recover_node(spec.node_id, sim_time=at)
            detail = (
                f"hints={repair.hints_replayed} copied={repair.keys_copied}"
            )
        elif spec.kind == "slow":
            self.cluster.degrade_node(spec.node_id, spec.factor)
            detail = f"factor={spec.factor:g}"
        else:  # restore
            self.cluster.restore_node(spec.node_id)
        event = FaultEvent(
            time=at,
            kind=spec.kind,
            node_id=spec.node_id,
            up_nodes_after=len(self.cluster.up_nodes()),
            detail=detail,
            repair=repair,
        )
        self.events.append(event)
        return event

    def schedule(self, kernel, specs: Sequence[FaultSpec]) -> None:
        """Schedule every spec on an event kernel (``schedule_at`` duck type)."""
        for spec in sorted(specs, key=lambda s: s.time):
            def fire(sim, spec=spec):
                self.apply(spec, now=sim.now)

            kernel.schedule_at(
                spec.time, fire, name=f"fault-{spec.kind}-{spec.node_id}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_repair(self) -> RepairReport:
        """Aggregate repair work across every recovery processed so far."""
        total = RepairReport()
        for event in self.events:
            if event.repair is not None:
                total = total.merged_with(event.repair)
        return total

    def timeline(self) -> List[Dict[str, object]]:
        """JSON-friendly view of the applied fault events."""
        return [
            {
                "time": event.time,
                "kind": event.kind,
                "node_id": event.node_id,
                "up_nodes_after": event.up_nodes_after,
                "detail": event.detail,
            }
            for event in self.events
        ]
