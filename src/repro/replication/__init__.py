"""Replication & fault-tolerance tier.

Gives the simulated key/value cluster *real* replica copies: a consistent-
hashing placement ring assigns every key to ``replication`` distinct
storage nodes, each node physically stores its share of every namespace as
versioned records, and the cluster's data path becomes quorum
scatter-gather (configurable R/W with R+W>N) with read repair, hinted
handoff for writes that miss a down replica, and anti-entropy repair after
topology changes.  ``faults.py`` injects crash / recover / slow-node events
through the serving tier's discrete-event kernel so SLO experiments can
measure failover and recovery.
"""

from .faults import FaultEvent, FaultInjector, FaultSpec, crash_recover_timeline
from .manager import RepairReport, ReplicationManager
from .ring import HashRing, moved_keys, placement_token, stable_hash64
from .store import (
    MISSING_SEQ,
    ReplicaStore,
    decode_record,
    encode_record,
    record_seq,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "HashRing",
    "MISSING_SEQ",
    "RepairReport",
    "ReplicaStore",
    "ReplicationManager",
    "crash_recover_timeline",
    "decode_record",
    "encode_record",
    "moved_keys",
    "placement_token",
    "record_seq",
    "stable_hash64",
]
