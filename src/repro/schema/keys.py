"""Order-preserving key encoding.

PIQL requires the key/value store to support *range requests* so that index
scans have data locality (Section 3).  For that to work, composite keys —
tuples of column values such as ``(owner, timestamp)`` — must be encoded as
byte strings whose lexicographic order equals the tuple order of the
original values.

The encoding here follows the well-known "tuple layer" approach: each value
is prefixed with a type tag, fixed-width numeric values are bias/flip
encoded so that signed comparisons become unsigned byte comparisons, and
strings are NUL-terminated with embedded NULs escaped.

Two properties are exercised heavily by the rest of the system (and covered
by property-based tests):

* **Order preservation** — ``encode_key(a) < encode_key(b)`` iff ``a < b``
  for tuples of the same shape.
* **Prefix ranges** — all keys whose first components equal a prefix ``p``
  fall in ``[encode_key(p), prefix_upper_bound(encode_key(p)))``, which is
  exactly the range an IndexScan issues for its equality predicates.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import PiqlError

# Type tags.  Tag order defines cross-type ordering, but in practice a key
# position always holds a single type so only within-type order matters.
_TAG_NULL = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STRING = 0x05
_TAG_BYTES = 0x06

_INT_BIAS = 1 << 63
_STRING_TERMINATOR = b"\x00"
_STRING_ESCAPE = b"\x00\xff"


class KeyEncodingError(PiqlError):
    """Raised when a value cannot be encoded into (or decoded from) a key."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_value(value: Any) -> bytes:
    """Encode a single scalar value with its type tag."""
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        return bytes([_TAG_TRUE if value else _TAG_FALSE])
    if isinstance(value, int):
        biased = value + _INT_BIAS
        if not (0 <= biased < (1 << 64)):
            raise KeyEncodingError(f"integer out of 64-bit range: {value}")
        return bytes([_TAG_INT]) + biased.to_bytes(8, "big")
    if isinstance(value, float):
        packed = struct.pack(">d", value)
        if packed[0] & 0x80:
            # Negative: flip every bit so that more-negative sorts first.
            flipped = bytes(b ^ 0xFF for b in packed)
        else:
            # Positive: set the sign bit so positives sort after negatives.
            flipped = bytes([packed[0] | 0x80]) + packed[1:]
        return bytes([_TAG_FLOAT]) + flipped
    if isinstance(value, str):
        encoded = value.encode("utf-8").replace(b"\x00", _STRING_ESCAPE)
        return bytes([_TAG_STRING]) + encoded + _STRING_TERMINATOR
    if isinstance(value, (bytes, bytearray)):
        encoded = bytes(value).replace(b"\x00", _STRING_ESCAPE)
        return bytes([_TAG_BYTES]) + encoded + _STRING_TERMINATOR
    raise KeyEncodingError(f"cannot encode value of type {type(value).__name__}")


def encode_key(values: Sequence[Any]) -> bytes:
    """Encode a tuple of values into one order-preserving byte key."""
    return b"".join(encode_value(v) for v in values)


def prefix_upper_bound(prefix: bytes) -> bytes:
    """Exclusive upper bound of the range of keys extending ``prefix``.

    Works because every component starts with a type tag strictly below
    ``0xff``; see the module docstring.
    """
    return prefix + b"\xff"


def prefix_range(values: Sequence[Any]) -> Tuple[bytes, bytes]:
    """Inclusive-start / exclusive-end byte range of keys with this prefix."""
    prefix = encode_key(values)
    return prefix, prefix_upper_bound(prefix)


def successor(key: bytes) -> bytes:
    """Smallest byte string strictly greater than ``key``.

    Used by pagination cursors to resume a range scan *after* the last key
    already returned.
    """
    return key + b"\x00"


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode_terminated(data: bytes, offset: int) -> Tuple[bytes, int]:
    """Decode an escaped, NUL-terminated byte sequence starting at ``offset``."""
    out = bytearray()
    i = offset
    n = len(data)
    while i < n:
        byte = data[i]
        if byte == 0x00:
            if i + 1 < n and data[i + 1] == 0xFF:
                out.append(0x00)
                i += 2
                continue
            return bytes(out), i + 1
        out.append(byte)
        i += 1
    raise KeyEncodingError("unterminated string in encoded key")


def decode_value(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one value starting at ``offset``; return ``(value, next_offset)``."""
    if offset >= len(data):
        raise KeyEncodingError("unexpected end of encoded key")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        if offset + 8 > len(data):
            raise KeyEncodingError("truncated integer in encoded key")
        biased = int.from_bytes(data[offset : offset + 8], "big")
        return biased - _INT_BIAS, offset + 8
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise KeyEncodingError("truncated float in encoded key")
        packed = data[offset : offset + 8]
        if packed[0] & 0x80:
            restored = bytes([packed[0] & 0x7F]) + packed[1:]
        else:
            restored = bytes(b ^ 0xFF for b in packed)
        return struct.unpack(">d", restored)[0], offset + 8
    if tag == _TAG_STRING:
        raw, next_offset = _decode_terminated(data, offset)
        return raw.decode("utf-8"), next_offset
    if tag == _TAG_BYTES:
        raw, next_offset = _decode_terminated(data, offset)
        return raw, next_offset
    raise KeyEncodingError(f"unknown type tag: {tag:#x}")


def decode_key(data: bytes, count: Optional[int] = None) -> List[Any]:
    """Decode an entire key (or its first ``count`` components)."""
    values: List[Any] = []
    offset = 0
    while offset < len(data):
        if count is not None and len(values) >= count:
            break
        value, offset = decode_value(data, offset)
        values.append(value)
    return values
