"""Schema layer: column types, tables, PIQL DDL extensions, key encoding."""

from .catalog import Catalog
from .ddl import (
    CardinalityLimit,
    Column,
    ForeignKey,
    IndexColumn,
    IndexDefinition,
    Table,
)
from .keys import (
    KeyEncodingError,
    decode_key,
    decode_value,
    encode_key,
    encode_value,
    prefix_range,
    prefix_upper_bound,
    successor,
)
from .types import (
    BooleanType,
    ColumnType,
    FloatType,
    IntType,
    TimestampType,
    VarcharType,
    type_from_name,
)

__all__ = [
    "BooleanType",
    "Catalog",
    "CardinalityLimit",
    "Column",
    "ColumnType",
    "FloatType",
    "ForeignKey",
    "IndexColumn",
    "IndexDefinition",
    "IntType",
    "KeyEncodingError",
    "Table",
    "TimestampType",
    "VarcharType",
    "decode_key",
    "decode_value",
    "encode_key",
    "encode_value",
    "prefix_range",
    "prefix_upper_bound",
    "successor",
    "type_from_name",
]
