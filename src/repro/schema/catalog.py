"""Schema catalog: the set of tables and indexes known to a PIQL database."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import SchemaError, UnknownTableError
from .ddl import IndexColumn, IndexDefinition, Table


class Catalog:
    """Holds all table and index definitions for one database instance.

    The catalog is consulted by the parser (column resolution), the
    optimizer (cardinality constraints, available indexes), and the storage
    layer (which namespaces and index structures to maintain on writes).
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, IndexDefinition] = {}
        #: Materialized views by lower-cased name.  The values are
        #: :class:`repro.views.definition.MaterializedView` objects; the
        #: catalog stores them opaquely to avoid a schema -> views import
        #: cycle.  Each view also registers a backing :class:`Table` (one
        #:  row per group) and, for top-k views, an ordered index on it.
        self._views: Dict[str, object] = {}
        #: Names (lower-cased) of indexes the optimizer's index selection
        #: invented, as opposed to indexes declared by the schema (CREATE
        #: INDEX, cardinality-constraint support indexes).  Plans keep
        #: reporting these under ``required_indexes`` even after they exist,
        #: so "which additional indexes does this query need" (Table 1) does
        #: not depend on which query happened to be compiled first.
        self._auto_created: set = set()
        #: Bumped on every schema change.  Plan caches (one per database
        #: view, all sharing this catalog) compare against it so DDL issued
        #: through any view invalidates every view's cached plans.
        self.version = 0

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self.version += 1

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise UnknownTableError(name)
        del self._tables[key]
        for index_name in [
            n for n, ix in self._indexes.items() if ix.table.lower() == key
        ]:
            del self._indexes[index_name]
            self._auto_created.discard(index_name)
        self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return [self._tables[k] for k in sorted(self._tables)]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def add_index(
        self, index: IndexDefinition, auto_created: bool = False
    ) -> IndexDefinition:
        """Register an index; adding an identical index twice is a no-op.

        ``auto_created=True`` records that the index came from automatic
        index selection rather than the schema (see :meth:`is_auto_created`).
        """
        if not self.has_table(index.table):
            raise UnknownTableError(index.table)
        table = self.table(index.table)
        for column in index.columns:
            if not table.has_column(column.name):
                raise SchemaError(
                    f"index {index.name!r} references unknown column "
                    f"{column.name!r} of table {index.table!r}"
                )
        key = index.name.lower()
        existing = self._indexes.get(key)
        if existing is not None:
            if existing.columns == index.columns and existing.table == index.table:
                return existing
            raise SchemaError(f"index {index.name!r} already exists")
        self._indexes[key] = index
        if auto_created:
            self._auto_created.add(key)
        self.version += 1
        return index

    def index(self, name: str) -> IndexDefinition:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown index: {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indexes

    def is_auto_created(self, name: str) -> bool:
        """Whether the index was invented by automatic index selection."""
        return name.lower() in self._auto_created

    def indexes(self) -> List[IndexDefinition]:
        return [self._indexes[k] for k in sorted(self._indexes)]

    def indexes_for_table(self, table: str) -> List[IndexDefinition]:
        return [ix for ix in self.indexes() if ix.table.lower() == table.lower()]

    # ------------------------------------------------------------------
    # Materialized views
    # ------------------------------------------------------------------
    def add_view(self, view) -> None:
        """Register a materialized view (its backing table must exist)."""
        key = view.name.lower()
        if key in self._views:
            raise SchemaError(f"materialized view {view.name!r} already exists")
        if not self.has_table(view.backing_table.name):
            raise SchemaError(
                f"materialized view {view.name!r} has no registered backing table"
            )
        self._views[key] = view
        self.version += 1

    def view(self, name: str):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown materialized view: {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def views(self) -> List[object]:
        return [self._views[k] for k in sorted(self._views)]

    def views_for_table(self, table: str) -> List[object]:
        """Views whose *driving* table is ``table`` (maintenance triggers)."""
        return [
            v for v in self.views() if v.driving_table.lower() == table.lower()
        ]

    # ------------------------------------------------------------------
    # Index search (used by the optimizer's index selection, Section 5.3)
    # ------------------------------------------------------------------
    def find_index(
        self,
        table: str,
        prefix_columns: Sequence[IndexColumn],
        followed_by: Sequence[str] = (),
    ) -> Optional[IndexDefinition]:
        """Find an index on ``table`` whose leading columns match exactly.

        ``prefix_columns`` must match the index's leading columns (name and
        tokenisation); ``followed_by`` (plain column names) must then appear
        in order.  Returns ``None`` if no such index exists.
        """
        wanted = list(prefix_columns) + [IndexColumn(c) for c in followed_by]
        for index in self.indexes_for_table(table):
            if len(index.columns) < len(wanted):
                continue
            if all(
                index.columns[i].name == wanted[i].name
                and index.columns[i].tokenized == wanted[i].tokenized
                for i in range(len(wanted))
            ):
                return index
        return None

    @staticmethod
    def index_name(table: str, columns: Iterable[IndexColumn]) -> str:
        """Canonical generated name for an index on ``columns`` of ``table``."""
        parts = []
        for column in columns:
            parts.append(("tok_" if column.tokenized else "") + column.name.lower())
        return f"idx_{table.lower()}__" + "__".join(parts)
