"""Schema objects: tables, constraints, and PIQL's DDL extensions.

The one genuinely new DDL construct in PIQL is the **relationship
cardinality constraint** (Section 4.2)::

    CREATE TABLE Subscriptions (
        ownerUserId INT,
        targetUserId INT,
        ...
        CARDINALITY LIMIT 100 (ownerUserId)
    )

which tells the optimizer that at most 100 rows may share any particular
value of ``ownerUserId``.  Together with primary keys (cardinality one) and
foreign keys (cardinality one in the child-to-parent direction), these
constraints are what let the optimizer insert *data-stop* operators and
bound intermediate results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SchemaError, UnknownColumnError
from .types import ColumnType


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    type: ColumnType
    nullable: bool = True

    def estimated_size(self) -> int:
        return self.type.estimated_size()


@dataclass(frozen=True)
class ForeignKey:
    """A referential-integrity constraint.

    From the optimizer's point of view a foreign key states that an equality
    join from ``columns`` to the *primary key* of ``ref_table`` produces at
    most one matching tuple per input tuple (Section 4.2).
    """

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                "foreign key column count does not match referenced columns"
            )


@dataclass(frozen=True)
class CardinalityLimit:
    """PIQL's ``CARDINALITY LIMIT n (columns)`` constraint.

    At most ``limit`` rows of the table may share any one combination of
    values for ``columns``.
    """

    limit: int
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise SchemaError("CARDINALITY LIMIT must be at least 1")
        if not self.columns:
            raise SchemaError("CARDINALITY LIMIT requires at least one column")


@dataclass(frozen=True)
class IndexColumn:
    """A column participating in an index, optionally token-ised.

    ``tokenized=True`` models the inverted full-text indexes of Section 7.3
    (the DDL/optimizer spell it ``token(column)``): the index contains one
    entry per lower-cased word of the column value instead of one entry per
    value.
    """

    name: str
    tokenized: bool = False

    def render(self) -> str:
        return f"token({self.name})" if self.tokenized else self.name


@dataclass(frozen=True)
class IndexDefinition:
    """A secondary index over a table.

    The key of an index entry is the index columns followed by the table's
    primary key (so entries are unique and point back at the base record).
    """

    name: str
    table: str
    columns: Tuple[IndexColumn, ...]
    unique: bool = False

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def describe(self) -> str:
        cols = ", ".join(c.render() for c in self.columns)
        return f"{self.table}({cols})"


@dataclass
class Table:
    """A relational table stored on the key/value store."""

    name: str
    columns: List[Column]
    primary_key: Tuple[str, ...]
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    cardinality_limits: List[CardinalityLimit] = field(default_factory=list)
    #: Set when this table is the backing store of a materialized view (one
    #: row per group, maintained incrementally by :mod:`repro.views`).  Such
    #: tables are written by the view-maintenance engine only — never through
    #: the DML API — and are what the optimizer's view rewrite scans.
    backing_view: Optional[str] = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        self._columns_by_name: Dict[str, Column] = {c.name: c for c in self.columns}
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} must declare a primary key")
        for pk_col in self.primary_key:
            if pk_col not in self._columns_by_name:
                raise UnknownColumnError(pk_col, self.name)
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self._columns_by_name:
                    raise UnknownColumnError(col, self.name)
        for limit in self.cardinality_limits:
            for col in limit.columns:
                if col not in self._columns_by_name:
                    raise UnknownColumnError(col, self.name)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        try:
            return self._columns_by_name[name]
        except KeyError:
            raise UnknownColumnError(name, self.name) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns_by_name

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def namespace(self) -> str:
        """Key/value store namespace holding this table's records."""
        return f"table:{self.name.lower()}"

    # ------------------------------------------------------------------
    # Constraint reasoning (used by the optimizer)
    # ------------------------------------------------------------------
    def covers_primary_key(self, attributes: Sequence[str]) -> bool:
        """True if ``attributes`` includes every primary-key column."""
        return set(self.primary_key) <= set(attributes)

    def matching_cardinality(self, attributes: Sequence[str]) -> Optional[int]:
        """Return the tightest cardinality bound implied by equality on ``attributes``.

        A full primary-key match gives a bound of one; otherwise the
        smallest ``CARDINALITY LIMIT`` whose columns are all contained in
        ``attributes`` applies; otherwise ``None`` (unbounded).
        """
        attrs = set(attributes)
        if self.covers_primary_key(attrs):
            return 1
        best: Optional[int] = None
        for limit in self.cardinality_limits:
            if set(limit.columns) <= attrs:
                if best is None or limit.limit < best:
                    best = limit.limit
        return best

    def cardinality_limit_for(self, attributes: Sequence[str]) -> Optional[CardinalityLimit]:
        """Return the tightest matching ``CardinalityLimit`` object, if any."""
        attrs = set(attributes)
        best: Optional[CardinalityLimit] = None
        for limit in self.cardinality_limits:
            if set(limit.columns) <= attrs:
                if best is None or limit.limit < best.limit:
                    best = limit
        return best

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def validate_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and coerce a row dict; unknown columns are rejected."""
        validated: Dict[str, Any] = {}
        for key in row:
            if key not in self._columns_by_name:
                raise UnknownColumnError(key, self.name)
        for column in self.columns:
            if column.name in row and row[column.name] is not None:
                validated[column.name] = column.type.validate(row[column.name])
            else:
                if column.name in self.primary_key:
                    raise SchemaError(
                        f"primary key column {column.name!r} of table "
                        f"{self.name!r} must not be null"
                    )
                if not column.nullable:
                    raise SchemaError(
                        f"column {column.name!r} of table {self.name!r} "
                        "must not be null"
                    )
                validated[column.name] = None
        return validated

    def primary_key_values(self, row: Dict[str, Any]) -> List[Any]:
        """Extract the primary-key values from a row, in key order."""
        return [row[c] for c in self.primary_key]

    def estimated_row_bytes(self) -> int:
        """Estimated serialised size of one row (the beta of Section 6.1)."""
        return sum(c.estimated_size() for c in self.columns)
