"""Column types for the PIQL schema layer.

The paper's benchmark schemas (TPC-W and SCADr) only need a small set of
scalar types.  Each type knows how to validate/coerce Python values and how
to estimate its serialised size in bytes — the size feeds the tuple-size
parameter (beta) of the SLO prediction model (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import SchemaError


@dataclass(frozen=True)
class ColumnType:
    """Base class for column types."""

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to this type, raising :class:`SchemaError` on failure."""
        raise NotImplementedError

    def estimated_size(self) -> int:
        """Estimated serialised size in bytes of one value of this type."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.upper()


@dataclass(frozen=True)
class IntType(ColumnType):
    """64-bit signed integer (also used for timestamps stored as epoch micros)."""

    def validate(self, value: Any) -> int:
        if isinstance(value, bool):
            raise SchemaError(f"expected INT, got boolean {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SchemaError(f"expected INT, got {value!r}")

    def estimated_size(self) -> int:
        return 8

    @property
    def name(self) -> str:
        return "INT"


@dataclass(frozen=True)
class FloatType(ColumnType):
    """Double-precision floating point number."""

    def validate(self, value: Any) -> float:
        if isinstance(value, bool):
            raise SchemaError(f"expected FLOAT, got boolean {value!r}")
        if isinstance(value, (int, float)):
            return float(value)
        raise SchemaError(f"expected FLOAT, got {value!r}")

    def estimated_size(self) -> int:
        return 8

    @property
    def name(self) -> str:
        return "FLOAT"


@dataclass(frozen=True)
class BooleanType(ColumnType):
    """Boolean flag (e.g. the ``approved`` column of SCADr subscriptions)."""

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise SchemaError(f"expected BOOLEAN, got {value!r}")

    def estimated_size(self) -> int:
        return 1

    @property
    def name(self) -> str:
        return "BOOLEAN"


@dataclass(frozen=True)
class VarcharType(ColumnType):
    """Variable-length string with a declared maximum length."""

    max_length: int = 255

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise SchemaError(f"expected VARCHAR, got {value!r}")
        if len(value) > self.max_length:
            raise SchemaError(
                f"string of length {len(value)} exceeds VARCHAR({self.max_length})"
            )
        return value

    def estimated_size(self) -> int:
        # Average string length is assumed to be half the declared maximum,
        # which matches how the paper's tuple sizes (e.g. 40 bytes for a
        # subscription) relate to their schemas.
        return max(1, self.max_length // 2)

    @property
    def name(self) -> str:
        return f"VARCHAR({self.max_length})"


@dataclass(frozen=True)
class TimestampType(ColumnType):
    """A point in time stored as integer epoch microseconds."""

    def validate(self, value: Any) -> int:
        if isinstance(value, bool):
            raise SchemaError(f"expected TIMESTAMP, got boolean {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SchemaError(f"expected TIMESTAMP (epoch micros), got {value!r}")

    def estimated_size(self) -> int:
        return 8

    @property
    def name(self) -> str:
        return "TIMESTAMP"


def type_from_name(name: str, argument: int = None) -> ColumnType:
    """Build a :class:`ColumnType` from its DDL spelling.

    ``argument`` carries the parenthesised length for ``VARCHAR(n)``.
    """
    upper = name.upper()
    if upper in ("INT", "INTEGER", "BIGINT"):
        return IntType()
    if upper in ("FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL"):
        return FloatType()
    if upper in ("BOOLEAN", "BOOL"):
        return BooleanType()
    if upper in ("VARCHAR", "CHAR", "TEXT", "STRING"):
        return VarcharType(argument if argument is not None else 255)
    if upper in ("TIMESTAMP", "DATETIME", "DATE"):
        return TimestampType()
    raise SchemaError(f"unknown column type: {name!r}")
