#!/usr/bin/env python
"""Asynchronous sessions: futures, streaming cursors, and query pipelining.

The classic client API is blocking — ``db.execute`` charges each query's
simulated latency to the application server's clock before returning, so an
interaction that renders a page from several independent queries pays their
latencies in sequence.  A :class:`~repro.engine.session.Session` overlaps
them:

1. ``session.submit(...)`` queues a query and returns a ``QueryFuture``
   without charging anything;
2. ``session.gather(*futures)`` resolves them *concurrently* — every branch
   starts at the same simulated instant and the session clock advances by
   the slowest branch only, with duplicate point reads across branches
   coalesced into one fetch;
3. results stream back as ``ResultCursor`` objects — pages of a PAGINATE
   query are fetched lazily as you iterate, ``fetch_all()`` materialises.

This walkthrough renders the SCADr home page (Section 8.1.2) both ways and
shows the pipelined render costing the max of its four queries instead of
their sum.

Run with ``PYTHONPATH=src python examples/async_session.py``.
"""

from __future__ import annotations

import random

from repro import ClusterConfig, PiqlDatabase
from repro.workloads import ScadrWorkload, WorkloadScale

SEED = 7


def fresh_scadr():
    """A small SCADr database (fresh per arm so both replay the same noise)."""
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=SEED))
    workload = ScadrWorkload(
        max_subscriptions=10, subscriptions_per_user=5, thoughts_per_user=10
    )
    workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=40, seed=SEED))
    db.reset_measurements()
    return db, workload


def main() -> None:
    # --- one home-page render, the blocking way ---------------------------
    db, workload = fresh_scadr()
    uname = workload.usernames[3]
    queries = {name: workload.query_sql(name) for name in workload.query_names()}

    serial_latencies = {}
    for name, sql in queries.items():
        result = db.execute(sql, uname=uname)
        serial_latencies[name] = result.latency_seconds
    serial_total = db.client.clock.now

    print(f"SCADr home page for {uname!r}, rendered serially:")
    for name, latency in serial_latencies.items():
        print(f"  {name:<16} {latency * 1000:7.2f} ms")
    print(f"  {'total':<16} {serial_total * 1000:7.2f} ms  (latencies add)\n")

    # --- the same render through a session --------------------------------
    db, workload = fresh_scadr()
    session = db.session()
    futures = [
        session.submit(sql, uname=uname, label=name)
        for name, sql in queries.items()
    ]
    assert not any(future.done() for future in futures), "submit is non-blocking"
    session.gather(*futures)
    pipelined_total = session.now

    print("the same page through session.submit / session.gather:")
    for future in futures:
        print(f"  {future.label:<16} {future.latency_seconds * 1000:7.2f} ms")
    print(
        f"  {'total':<16} {pipelined_total * 1000:7.2f} ms  "
        f"(= slowest branch; {serial_total / pipelined_total:.2f}x faster)\n"
    )

    # --- the interaction plan does this for every page --------------------
    db, workload = fresh_scadr()
    rng = random.Random(SEED)
    plan = workload.interaction_plan(db, rng)
    result = workload.run_plan(db, plan, session=db.session())
    print(
        f"workload.run_plan(..., session=...): {result.name!r} rendered in "
        f"{result.latency_ms:.2f} ms, {result.operations} k/v operations "
        f"across {len(result.query_latencies)} parallel steps\n"
    )

    # --- streaming cursors -------------------------------------------------
    db, workload = fresh_scadr()
    session = db.session()
    cursor = session.execute(
        "SELECT * FROM thoughts WHERE owner = <uname> "
        "ORDER BY timestamp DESC PAGINATE 3",
        uname=uname,
    )
    print("streaming a PAGINATE query through a ResultCursor:")
    rows_seen = 0
    for row in cursor:  # pages are fetched lazily as iteration proceeds
        rows_seen += 1
    print(
        f"  iterated {rows_seen} rows over {cursor.pages_fetched} lazily "
        f"fetched pages ({cursor.operations} operations, "
        f"{cursor.latency_ms:.2f} ms total)"
    )
    print(f"  fetch_all() compatibility: {len(cursor.fetch_all())} rows")


if __name__ == "__main__":
    main()
