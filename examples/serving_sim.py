#!/usr/bin/env python
"""Serving-tier demo: 50 concurrent application servers against one cluster.

Walks the serving subsystem end to end on the SCADr workload:

1. closed-loop traffic at three think-time levels — watch p99 climb as the
   offered load approaches the storage nodes' capacity;
2. an open-loop overload with admission control — the controller sheds a
   fraction of arrivals and the admitted requests stay near the SLO;
3. a saturated closed loop with the autoscaler — capacity is added instead
   of work being refused, and throughput rises with it.

Run with ``PYTHONPATH=src python examples/serving_sim.py``.
"""

from __future__ import annotations

from repro import ClusterConfig, PiqlDatabase
from repro.bench.reporting import format_table
from repro.prediction.slo import ServiceLevelObjective
from repro.serving import AutoscaleConfig, ServingConfig, run_serving_simulation
from repro.workloads import ScadrWorkload, WorkloadScale

SLO = ServiceLevelObjective(quantile=0.99, latency_seconds=0.1, interval_seconds=5.0)


def fresh_database():
    db = PiqlDatabase.simulated(
        ClusterConfig(storage_nodes=4, node_capacity_ops_per_second=400.0, seed=11)
    )
    workload = ScadrWorkload(thoughts_per_user=10, subscriptions_per_user=5)
    workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=40, seed=11))
    return db, workload


def closed_loop_ramp() -> None:
    print("== closed loop: 50 clients, shrinking think time ==")
    db, workload = fresh_database()
    rows = []
    for think in (2.0, 0.5, 0.1):
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=50,
                think_time_seconds=think,
                duration_seconds=10.0,
                slo=SLO,
                seed=2,
            ),
        )
        rows.append(
            (
                f"{think * 1000:.0f} ms",
                report.completed,
                f"{report.throughput:.0f}/s",
                report.response_percentile_ms(0.50),
                report.response_percentile_ms(0.99),
                report.mean_utilization,
            )
        )
    print(
        format_table(
            ["think time", "completed", "throughput", "p50 ms", "p99 ms", "util"],
            rows,
        )
    )
    print()


def open_loop_overload() -> None:
    print("== open loop overload: admission control on/off ==")
    rows = []
    for admission in (False, True):
        db, workload = fresh_database()
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="open",
                clients=50,
                arrival_rate_per_second=140.0,
                duration_seconds=15.0,
                slo=SLO,
                admission_enabled=admission,
                seed=2,
            ),
        )
        shed = report.admission.shed if report.admission else 0
        rows.append(
            (
                "on" if admission else "off",
                report.completed,
                shed,
                report.response_percentile_ms(0.99),
                report.overall_compliance,
            )
        )
    print(
        format_table(
            ["admission", "completed", "shed", "p99 ms", "SLO compliance"], rows
        )
    )
    print()


def closed_loop_autoscale() -> None:
    print("== saturated closed loop: autoscaler adds storage nodes ==")
    for autoscale in (False, True):
        db, workload = fresh_database()
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=100,
                think_time_seconds=0.05,
                duration_seconds=30.0,
                slo=SLO,
                autoscale_enabled=autoscale,
                autoscale=AutoscaleConfig(
                    high_utilization=0.7, low_utilization=0.15, cooldown_seconds=3.0
                ),
                seed=2,
            ),
        )
        label = "on " if autoscale else "off"
        print(
            f"  autoscale {label}: {report.throughput:5.0f} interactions/s, "
            f"p99 {report.response_percentile_ms(0.99):6.0f} ms, "
            f"utilisation {report.mean_utilization:.2f}, "
            f"{report.final_nodes} nodes"
        )
        for action in report.scaling_actions:
            print(
                f"    t={action.time:5.1f}s  {action.action}  -> "
                f"{action.nodes_after} nodes "
                f"(mean utilisation was {action.utilization:.2f})"
            )


def main() -> None:
    print(
        f"SLO: {SLO.quantile:.0%} of interactions under {SLO.latency_ms:.0f} ms "
        f"per {SLO.interval_seconds:.0f} s interval\n"
    )
    closed_loop_ramp()
    open_loop_overload()
    closed_loop_autoscale()


if __name__ == "__main__":
    main()
