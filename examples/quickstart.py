#!/usr/bin/env python
"""Quickstart: define a schema, load data, and run scale-independent queries.

This walks through the core PIQL workflow on a tiny micro-blogging schema:

1. create tables with PIQL's ``CARDINALITY LIMIT`` extension,
2. insert data (secondary indexes and constraints are maintained for you),
3. compile queries — the optimizer either returns a plan with a hard upper
   bound on key/value store operations, or rejects the query and explains
   which ``CARDINALITY LIMIT`` would fix it,
4. execute queries and paginate through large results one bounded page at a
   time.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import ClusterConfig, NotScaleIndependentError, PiqlDatabase

DDL = """
CREATE TABLE users (
    username  VARCHAR(32),
    hometown  VARCHAR(64),
    PRIMARY KEY (username)
);

CREATE TABLE posts (
    author    VARCHAR(32),
    posted_at INT,
    body      VARCHAR(140),
    PRIMARY KEY (author, posted_at),
    FOREIGN KEY (author) REFERENCES users (username)
);

CREATE TABLE follows (
    follower  VARCHAR(32),
    followee  VARCHAR(32),
    PRIMARY KEY (follower, followee),
    CARDINALITY LIMIT 50 (follower)
)
"""

TIMELINE = """
SELECT p.*
FROM follows f JOIN posts p
WHERE p.author = f.followee
  AND f.follower = <me>
ORDER BY p.posted_at DESC
LIMIT 10
"""


def main() -> None:
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=42))
    db.execute_ddl(DDL)

    # --- load a little data -------------------------------------------------
    people = ["ada", "grace", "alan", "edsger"]
    for person in people:
        db.insert("users", {"username": person, "hometown": "berkeley"})
    for follower in people:
        for followee in people:
            if follower != followee:
                db.insert("follows", {"follower": follower, "followee": followee})
    for person in people:
        for t in range(30):
            db.insert(
                "posts",
                {"author": person, "posted_at": 1_000 + t, "body": f"post {t}"},
            )

    # --- a bounded query ----------------------------------------------------
    timeline = db.prepare(TIMELINE)
    print("compiled timeline query; plan:")
    print(timeline.describe())
    print(f"\nupper bound: {timeline.operation_bound} key/value operations\n")

    result = timeline.execute(me="ada")
    print(f"ada's timeline ({len(result.rows)} rows, "
          f"{result.operations} operations, {result.latency_ms:.1f} ms simulated):")
    for row in result.rows[:3]:
        print("  ", row)

    # --- pagination ----------------------------------------------------------
    pages = db.prepare(
        "SELECT * FROM posts WHERE author = <who> ORDER BY posted_at ASC PAGINATE 8"
    )
    total = 0
    for page_number, page in enumerate(pages.pages(who="grace"), start=1):
        total += len(page.rows)
        print(f"page {page_number}: {len(page.rows)} posts "
              f"(cursor is {len(page.cursor or '')} bytes)")
    print(f"walked {total} posts, one bounded interaction at a time\n")

    # --- a query PIQL refuses -----------------------------------------------
    try:
        db.prepare("SELECT * FROM posts WHERE body LIKE [1: word]")
    except NotScaleIndependentError as error:
        print("rejected as not scale-independent:")
        print(error.explain())
    print()
    print(db.diagnose("SELECT * FROM users WHERE hometown = <town>").render())


if __name__ == "__main__":
    main()
