#!/usr/bin/env python
"""TPC-W online bookstore: every customer web interaction, end to end.

Loads a scaled-down TPC-W dataset, compiles all nine customer-facing queries
of Table 1 (creating the same secondary indexes the paper lists), runs a
short burst of the ordering mix, and prints per-query latencies together
with their static operation bounds.

Run with ``python examples/tpcw_store.py``.
"""

from __future__ import annotations

import random

from repro import ClusterConfig, PiqlDatabase
from repro.bench import format_table, percentile
from repro.workloads import TpcwWorkload, WorkloadScale
from repro.workloads.tpcw.queries import QUERY_MODIFICATIONS


def main() -> None:
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=10, seed=21))
    workload = TpcwWorkload()
    workload.setup(db, WorkloadScale(storage_nodes=4, users_per_node=100,
                                     items_total=500))
    rng = random.Random(3)

    print("indexes created for scale-independent execution:")
    for index in db.catalog.indexes():
        print("  ", index.describe())

    rows = []
    for name in workload.query_names():
        prepared = db.prepare(workload.query_sql(name))
        latencies = [
            workload.run_query(db, name, rng).latency_seconds for _ in range(60)
        ]
        rows.append(
            (
                name,
                QUERY_MODIFICATIONS[name],
                prepared.operation_bound,
                round(percentile(latencies, 0.5) * 1000, 1),
                round(percentile(latencies, 0.99) * 1000, 1),
            )
        )
    print("\nper-query cost (simulated):")
    print(format_table(
        ["query", "modifications", "op bound", "median (ms)", "p99 (ms)"], rows
    ))

    print("\nrunning 200 web interactions of the ordering mix ...")
    interactions = [workload.interaction(db, rng) for _ in range(200)]
    latencies = [i.latency_seconds for i in interactions]
    updates = sum(
        1 for i in interactions
        if i.name in ("shopping_cart", "customer_registration", "buy_confirm")
    )
    print(f"  p50 = {percentile(latencies, 0.5) * 1000:.1f} ms, "
          f"p99 = {percentile(latencies, 0.99) * 1000:.1f} ms, "
          f"updates = {updates}/200")


if __name__ == "__main__":
    main()
