#!/usr/bin/env python
"""SCADr walk-through: the paper's Figure 3 worked example plus the assistant.

Shows, for the micro-blogging benchmark SCADr:

* the initial, pushed-down logical and physical plans of the thoughtstream
  query (the three stages of Figure 3),
* how the cardinality constraint on subscriptions makes the plan bounded —
  and the Performance Insight Assistant's diagnosis when it is missing,
* the three execution strategies of Figure 12 on the same query.

Run with ``python examples/scadr_thoughtstream.py``.
"""

from __future__ import annotations

import random

from repro import ClusterConfig, ExecutionStrategy, PiqlDatabase
from repro.plans.printer import plan_to_string
from repro.workloads.scadr.data import ScadrDataConfig, ScadrDataGenerator
from repro.workloads.scadr.queries import THOUGHTSTREAM
from repro.workloads.scadr.schema import scadr_ddl


def main() -> None:
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=10, seed=7))
    db.execute_ddl(scadr_ddl(max_subscriptions=100))
    generator = ScadrDataGenerator(
        ScadrDataConfig(users=500, thoughts_per_user=30, subscriptions_per_user=10)
    )
    generator.load(db)
    usernames = generator.usernames()

    # --- Figure 3: the stages of optimization --------------------------------
    print("=== (a) PIQL query ===")
    print(THOUGHTSTREAM.strip())
    print("\n=== (b) initial logical plan ===")
    print(plan_to_string(db.optimizer.initial_logical_plan(THOUGHTSTREAM)))
    print("\n=== (c) logical plan with stop / data-stop push-down ===")
    print(plan_to_string(db.optimizer.prepared_logical_plan(THOUGHTSTREAM)))
    prepared = db.prepare(THOUGHTSTREAM)
    print("\n=== (d) physical plan ===")
    print(plan_to_string(prepared.physical_plan))
    print(f"\nstatic bound: {prepared.operation_bound} key/value operations")

    # --- executing under the three strategies --------------------------------
    rng = random.Random(1)
    print("\n=== execution strategies (Figure 12, single query) ===")
    for strategy in ExecutionStrategy:
        latencies = [
            prepared.execute({"uname": rng.choice(usernames)}, strategy=strategy)
            for _ in range(50)
        ]
        p99 = sorted(r.latency_seconds for r in latencies)[int(0.99 * 50) - 1]
        print(f"{strategy.value:9s} p99 = {p99 * 1000:6.1f} ms   "
              f"operations = {latencies[0].operations}")

    # --- what happens without the cardinality constraint ---------------------
    print("\n=== Performance Insight Assistant ===")
    bare = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=8))
    bare.execute_ddl(
        scadr_ddl(100).replace("CARDINALITY LIMIT 100 (owner)", "note VARCHAR(10)")
    )
    print(bare.diagnose(THOUGHTSTREAM).render())


if __name__ == "__main__":
    main()
