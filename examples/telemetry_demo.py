#!/usr/bin/env python
"""Fleet telemetry: time-series, burn-rate alerts, and drift, live.

A four-node cluster serves a closed-loop point-lookup workload while the
telemetry collector scrapes the fleet every 500 ms of simulated time into
a fixed-memory time-series store.  Mid-run, two faults hit at once:

1. t=5s   node 1 crashes; node 2 silently degrades to 12x its normal
   service time (the nastier failure — it still answers, just slowly);
2. the SLO error budget starts burning; the fast/slow burn-rate pair
   crosses its threshold *during* the fault, fires an alert into the SLO
   monitor, and pre-arms the admission controller;
3. t=10s  both nodes repair — the fast window forgets the incident within
   seconds and the alert clears, while the time-series keep the whole
   story (the crash window, the backlog spike, the recovery).

The run ends by rendering the ASCII fleet dashboard — per-node sparklines,
the alert timeline, and the prediction-drift table (the fault hurt tail
latency, but the latency model's medians stayed truthful, so no class
drifts) — and writing the full telemetry artifact to ``results/``.

Run with ``PYTHONPATH=src python examples/telemetry_demo.py``.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List

from repro import ClusterConfig, PiqlDatabase
from repro.obs import BurnRateRule
from repro.prediction import QueryLatencyModel, train_default_model
from repro.prediction.slo import ServiceLevelObjective
from repro.replication import FaultSpec
from repro.serving import ServingConfig, run_serving_simulation
from repro.workloads.base import InteractionResult, Workload, WorkloadScale

SEED = 9
FAULT_START = 5.0
FAULT_END = 10.0
DURATION = 16.0


class StatusLookupWorkload(Workload):
    """A tiny status-board service: every interaction is one point lookup."""

    name = "status-lookup"

    def __init__(self, rows: int = 200):
        self.rows = rows

    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(
            "CREATE TABLE items (id INT, payload VARCHAR(64), PRIMARY KEY (id))"
        )
        db.bulk_load(
            "items",
            ({"id": i, "payload": f"payload-{i}"} for i in range(self.rows)),
        )
        self.prepare_all(db)

    def query_names(self) -> List[str]:
        return ["get_item"]

    def query_sql(self, name: str) -> str:
        return "SELECT * FROM items WHERE id = <id>"

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        return {"id": rng.randrange(self.rows)}

    def interaction(self, db: PiqlDatabase, rng: random.Random) -> InteractionResult:
        result = db.prepare(self.query_sql("get_item")).execute(
            self.sample_parameters("get_item", rng)
        )
        return InteractionResult(
            name="get_item",
            latency_seconds=result.latency_seconds,
            operations=result.operations,
            query_latencies={"get_item": result.latency_seconds},
        )


def main() -> None:
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=4, node_capacity_ops_per_second=400.0, seed=SEED
        )
    )
    workload = StatusLookupWorkload()
    workload.setup(db, WorkloadScale(storage_nodes=4))
    # A trained latency model turns the bound auditor into a drift feed:
    # every audited query's observed-vs-predicted residual lands in the
    # telemetry bundle's per-class drift detector.
    db.auditor.latency_model = QueryLatencyModel(
        train_default_model(db.cluster), db.catalog
    )

    healthy = db.prepare("SELECT * FROM items WHERE id = <id>").execute(
        {"id": 5}
    )
    slo = ServiceLevelObjective(
        quantile=0.9,
        latency_seconds=healthy.latency_seconds * 1.5,
        interval_seconds=4.0,
    )
    print(
        f"SLO: {slo.quantile:.0%} of interactions under "
        f"{slo.latency_ms:.2f} ms (healthy latency x1.5)"
    )
    print(
        f"faults: node 1 crashes and node 2 slows 12x at t={FAULT_START:.0f}s, "
        f"both repair at t={FAULT_END:.0f}s\n"
    )

    report = run_serving_simulation(
        db,
        workload,
        ServingConfig(
            mode="closed",
            clients=20,
            think_time_seconds=0.2,
            duration_seconds=DURATION,
            slo=slo,
            faults=[
                FaultSpec(time=FAULT_START, kind="crash", node_id=1),
                FaultSpec(time=FAULT_START, kind="slow", node_id=2, factor=12.0),
                FaultSpec(time=FAULT_END, kind="recover", node_id=1),
                FaultSpec(time=FAULT_END, kind="restore", node_id=2),
            ],
            telemetry_enabled=True,
            admission_enabled=True,
            burn_rules=[
                BurnRateRule(fast_seconds=2.0, slow_seconds=4.0, threshold=2.0)
            ],
            seed=3,
        ),
    )

    telemetry = report.telemetry

    # --- the incident, as the alerter saw it ------------------------------
    print("burn-rate alert timeline:")
    for alert in telemetry.alerts:
        print(f"  {alert.describe()}")
    for alert in telemetry.alerts:
        assert FAULT_START < alert.fired_at, "alert fired before the fault?"
        assert alert.cleared_at is not None, "alert never cleared"
    print()

    # --- the fleet dashboard ----------------------------------------------
    print(report.dashboard())
    print()

    # --- the artifact ------------------------------------------------------
    out = Path("results")
    out.mkdir(exist_ok=True)
    path = out / "telemetry_fault.json"
    telemetry.save(str(path))
    store = telemetry.store
    print(
        f"wrote {len(store)} series ({telemetry.collector.scrapes} scrapes) "
        f"to {path}"
    )


if __name__ == "__main__":
    main()
