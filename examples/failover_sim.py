#!/usr/bin/env python
"""Failover demo: a 50-client TPC-W run that survives a node crash.

The cluster keeps three real replicas of every key (consistent-hashing
placement) and serves reads/writes at quorum ``R=W=2``, so killing any
single node mid-run must not fail a request or lose an acknowledged
write — it just gets slower while the survivors carry the extra load:

1. t=0s   healthy: four nodes, SLO comfortably met;
2. t=10s  node 1 crashes — reads fail over to the surviving replicas and
   writes that miss the dead replica are buffered as hints;
3. t=22s  node 1 recovers — hints are replayed, anti-entropy repair
   re-syncs the replica, and p99 returns to its healthy level.

Run with ``PYTHONPATH=src python examples/failover_sim.py``.
"""

from __future__ import annotations

from repro import ClusterConfig, PiqlDatabase
from repro.bench.reporting import format_table, percentile
from repro.prediction.slo import ServiceLevelObjective
from repro.replication import crash_recover_timeline
from repro.serving import ServingConfig, run_serving_simulation
from repro.workloads import TpcwWorkload, WorkloadScale

SLO = ServiceLevelObjective(quantile=0.99, latency_seconds=0.1, interval_seconds=4.0)

CRASH_AT = 10.0
RECOVER_AT = 22.0
DURATION = 34.0


def main() -> None:
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=4,
            replication=3,
            read_quorum=2,
            write_quorum=2,
            node_capacity_ops_per_second=400.0,
            seed=7,
        )
    )
    workload = TpcwWorkload()
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=30, items_total=100,
                          seed=7)
    )
    print(
        f"cluster: 4 nodes, replication=3, R=W=2 — node 1 crashes at "
        f"t={CRASH_AT:.0f}s, recovers at t={RECOVER_AT:.0f}s"
    )
    print(
        f"SLO: {SLO.quantile:.0%} of interactions under {SLO.latency_ms:.0f} ms "
        f"per {SLO.interval_seconds:.0f} s interval\n"
    )

    report = run_serving_simulation(
        db,
        workload,
        ServingConfig(
            mode="closed",
            clients=50,
            think_time_seconds=0.6,
            duration_seconds=DURATION,
            slo=SLO,
            faults=crash_recover_timeline(1, CRASH_AT, RECOVER_AT),
            seed=2,
        ),
    )

    phases = [
        ("before crash", 0.0, CRASH_AT),
        ("during crash", CRASH_AT, RECOVER_AT),
        ("after recovery", RECOVER_AT + 2.0, DURATION),
    ]
    rows = []
    for name, start, end in phases:
        responses = [
            record.response_seconds
            for record in report.log.records
            if start <= record.arrival_seconds < end
        ]
        if not responses:
            rows.append((name, 0, 0.0, 0.0, 1.0))
            continue
        compliant = sum(1 for value in responses if value <= SLO.latency_seconds)
        rows.append(
            (
                name,
                len(responses),
                percentile(responses, 0.50) * 1000.0,
                percentile(responses, 0.99) * 1000.0,
                compliant / len(responses),
            )
        )
    print(
        format_table(
            ["phase", "completed", "p50 ms", "p99 ms", "SLO compliance"], rows
        )
    )

    print(
        f"\navailability: {report.availability:.4f} "
        f"({report.completed} completed, {report.failed} failed)"
    )
    for event in report.fault_events:
        print(
            f"  t={event.time:5.1f}s  {event.kind:<8} node {event.node_id}"
            f"  ({event.detail or 'applied'})"
        )
    if report.repair is not None:
        summary = report.repair.summary()
        print(
            f"recovery repair: {summary['hints_replayed']} hinted writes "
            f"replayed, {summary['keys_copied']} records re-replicated "
            f"({summary['bytes_copied']} bytes)"
        )


if __name__ == "__main__":
    main()
