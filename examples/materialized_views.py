#!/usr/bin/env python
"""Materialized views: the precomputation escape hatch for rejected queries.

PIQL's scale-independence comes from refusing queries it cannot statically
bound — which rejects a whole class of useful pages, like TPC-W's Best
Sellers ("total quantity sold per item, top 50 in a subject").  The paper's
prescribed alternative is precomputation; this example shows the
materialized-view tier doing exactly that:

1. an aggregate ranking query is *rejected* against the base tables,
2. ``CREATE MATERIALIZED VIEW ... GROUP BY ... ORDER BY ... LIMIT k``
   registers an incrementally maintained view (counters per group plus a
   bounded top-k view index per partition),
3. the same query now compiles to a bounded view-index scan with a static
   operation bound, and
4. every write to the driving table maintains the view at a constant,
   statically bounded cost — charged to the writer, through the replicated
   quorum path.

Run with ``python examples/materialized_views.py``.
"""

from __future__ import annotations

import random

from repro import ClusterConfig, NotScaleIndependentError, PiqlDatabase
from repro.plans.bounds import write_operation_bound

DDL = """
CREATE TABLE item (
    I_ID      INT,
    I_TITLE   VARCHAR(60),
    I_SUBJECT VARCHAR(20),
    PRIMARY KEY (I_ID)
);

CREATE TABLE order_line (
    OL_O_ID INT,
    OL_ID   INT,
    OL_I_ID INT,
    OL_QTY  INT,
    PRIMARY KEY (OL_O_ID, OL_ID),
    FOREIGN KEY (OL_I_ID) REFERENCES item (I_ID),
    CARDINALITY LIMIT 100 (OL_O_ID)
)
"""

VIEW_DDL = """
CREATE MATERIALIZED VIEW best_sellers_by_subject AS
SELECT i.I_SUBJECT, ol.OL_I_ID, SUM(ol.OL_QTY) AS total_sold
FROM order_line ol JOIN item i
WHERE i.I_ID = ol.OL_I_ID
GROUP BY i.I_SUBJECT, ol.OL_I_ID
ORDER BY total_sold DESC LIMIT 5
"""

BEST_SELLERS = """
SELECT ol.OL_I_ID, SUM(ol.OL_QTY) AS total_sold
FROM order_line ol JOIN item i
WHERE i.I_ID = ol.OL_I_ID
  AND i.I_SUBJECT = [1: subject]
GROUP BY ol.OL_I_ID
ORDER BY total_sold DESC
LIMIT 5
"""


def main() -> None:
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4))
    db.execute_ddl(DDL)
    rng = random.Random(7)
    subjects = ["HISTORY", "COOKING"]
    for item_id in range(20):
        db.insert("item", {
            "I_ID": item_id,
            "I_TITLE": f"book {item_id}",
            "I_SUBJECT": subjects[item_id % 2],
        })

    # 1. Without precomputation the ranking query is rejected: ranking every
    #    item ever ordered cannot be bounded by any base-table plan.
    try:
        db.prepare(BEST_SELLERS)
    except NotScaleIndependentError as error:
        print("rejected against base tables:")
        print(f"  {error}")
        for suggestion in error.suggestions:
            print(f"  suggestion: {suggestion}")

    # 2. Register the view.  From now on order-line writes maintain the
    #    per-(subject, item) counters and the bounded top-5 index.
    view = db.create_materialized_view(VIEW_DDL)
    print(f"\ncreated view: {view.describe()}")
    print(
        "static write bound for order_line (incl. maintenance): "
        f"{write_operation_bound(db.catalog, 'order_line')} operations"
    )

    # 3. Stream in orders; each insert pays a constant maintenance cost.
    before = db.client.stats.operations
    orders = 0
    for order_id in range(60):
        for line in range(1, rng.randrange(2, 4)):
            db.insert("order_line", {
                "OL_O_ID": order_id,
                "OL_ID": line,
                "OL_I_ID": rng.randrange(20),
                "OL_QTY": rng.randrange(1, 5),
            })
            orders += 1
    per_write = (db.client.stats.operations - before) / orders
    print(f"mean operations per order-line insert: {per_write:.2f}")

    # 4. The same query now compiles to a bounded view-index scan.
    query = db.prepare(BEST_SELLERS)
    print(
        f"\nnow served by view {query.optimized.view_used!r} with a static "
        f"bound of {query.operation_bound} operations:"
    )
    for subject in subjects:
        result = query.execute(subject=subject)
        print(f"  {subject}: {result.rows} ({result.operations} ops)")


if __name__ == "__main__":
    main()
