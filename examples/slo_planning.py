#!/usr/bin/env python
"""SLO compliance planning with the prediction framework (Sections 6 and 6.4).

Trains the per-operator latency models on a simulated 10-node cluster, then:

* predicts the 99th-percentile latency distribution of the SCADr
  thoughtstream query and checks it against an SLO,
* prints the cardinality heatmap of Figure 6, and
* asks the Performance Insight Assistant for the largest subscription limit
  that still meets the SLO.

Run with ``python examples/slo_planning.py`` (training takes a few seconds).
"""

from __future__ import annotations

from repro import ClusterConfig, PiqlDatabase
from repro.prediction import (
    QueryLatencyModel,
    ServiceLevelObjective,
    TrainingConfig,
    thoughtstream_heatmap,
    train_default_model,
)
from repro.workloads.scadr.queries import THOUGHTSTREAM
from repro.workloads.scadr.schema import scadr_ddl


def main() -> None:
    print("training operator models on a simulated 10-node cluster ...")
    store = train_default_model(config=TrainingConfig(intervals=10))
    print(f"  trained {len(store.keys())} (operator, cardinality, size) settings "
          f"over {len(store.intervals())} intervals")

    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=10, seed=5))
    db.execute_ddl(scadr_ddl(max_subscriptions=100))
    model = QueryLatencyModel(store, db.catalog)
    slo = ServiceLevelObjective(quantile=0.99, latency_seconds=0.5,
                                interval_seconds=600)

    prepared = db.prepare(THOUGHTSTREAM)
    prediction = model.predict(prepared.physical_plan, quantile=slo.quantile)
    print("\nthoughtstream query (subscription limit 100, 10 per page):")
    print(f"  predicted 99th percentile, worst interval: {prediction.max_ms:.1f} ms")
    print(f"  violation risk against a {slo.latency_ms:.0f} ms SLO: "
          f"{prediction.violation_risk(slo) * 100:.1f}% of intervals")
    print(f"  meets the SLO: {prediction.meets(slo)}")

    print("\nFigure 6 heatmap (predicted 99th percentile, ms):")
    heatmap = thoughtstream_heatmap(model)
    print(heatmap.render())

    def predict_for_limit(limit: int) -> float:
        return thoughtstream_heatmap(
            model, subscription_counts=(limit,), page_sizes=(10,)
        ).cells_seconds[0][0]

    recommended = db.assistant.recommend_max_cardinality(
        predict_for_limit,
        slo_latency_seconds=slo.latency_seconds,
        candidates=[100, 200, 300, 400, 500],
    )
    print(f"\nlargest subscription limit meeting the SLO at 10 per page: {recommended}")


if __name__ == "__main__":
    main()
