#!/usr/bin/env python
"""Query tracing: span trees, EXPLAIN ANALYZE, and Chrome-trace export.

Every query (and every write, with everything the write triggers — index
maintenance, hinted handoff, materialized-view deltas) records a span tree
while tracing is enabled:

1. ``db.enable_tracing()`` attaches a tracer to the storage client; spans
   propagate through sessions (gathers become ``gather``/``branch`` spans),
   executor operators, and down to individual key/value RPCs;
2. ``render_span_tree`` dumps any recorded tree — the example renders a
   pipelined TPC-W web interaction, where the sibling branches of each
   gather and the coalesced point reads are visible structurally;
3. ``db.explain_analyze(sql, params)`` is the one-call version: it runs the
   query traced and prints the physical plan with observed operations, each
   operator's slice of the static bound, and observed latency per operator;
4. ``write_chrome_trace`` exports recorded trees to the Chrome trace-event
   format — open chrome://tracing (or https://ui.perfetto.dev) and load the
   file to see the interaction on a timeline;
5. ``analyze_trace`` partitions a finished tree's latency into exclusive
   segment classes (critical-path analysis), and a ``FlightRecorder``
   attached to the bound auditor retains the traces worth explaining —
   the latency-forensics layer the chaos soak's incident reports build on.

Run with ``PYTHONPATH=src python examples/tracing_demo.py``.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro import ClusterConfig, PiqlDatabase
from repro.obs import (
    CriticalPathAggregator,
    FlightRecorder,
    ForensicsConfig,
    analyze_trace,
    render_span_tree,
    write_chrome_trace,
)
from repro.workloads import TpcwWorkload, WorkloadScale
from repro.workloads.tpcw.queries import NEW_PRODUCTS_WI

SEED = 11


def fresh_tpcw():
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=SEED))
    workload = TpcwWorkload()
    workload.setup(
        db,
        WorkloadScale(
            storage_nodes=2, users_per_node=20, items_total=200, seed=SEED
        ),
    )
    db.reset_measurements()
    return db, workload


def main() -> None:
    db, workload = fresh_tpcw()
    tracer = db.enable_tracing()

    # --- one pipelined web interaction, as a span tree --------------------
    rng = random.Random(SEED)
    plan = workload.interaction_plan(db, rng)
    tracer.clear()
    result = workload.run_plan(db, plan, session=db.session())
    print(
        f"TPC-W interaction {result.name!r}: {result.latency_ms:.2f} ms, "
        f"{result.operations} k/v operations, {result.rpcs} RPCs\n"
    )
    for root in tracer.roots:
        print(render_span_tree(root))
        print()

    # --- EXPLAIN ANALYZE on the New Products multi-join -------------------
    # Observed operations per operator, the operator's slice of the static
    # bound, and simulated latency, straight off the span tree.
    print(db.explain_analyze(NEW_PRODUCTS_WI, {"subject": "COMPUTERS"}))
    print()

    # --- the runtime bound auditor is always on ---------------------------
    print(
        f"bound auditor: {db.auditor.audited} queries audited, "
        f"{db.auditor.violations} static-bound violations\n"
    )

    # --- critical path: where did the interaction's time go? --------------
    print("critical-path breakdown (exclusive segment classes):")
    for root in tracer.roots:
        print(f"  {analyze_trace(root).describe()}")
    print()

    # --- flight recorder: keep the traces worth explaining ----------------
    # Attach a tail-based recorder to the shared bound auditor, replay a
    # batch of interactions, and show what it decided to retain.  With no
    # trained latency model the "slow" predicate is off, so retention here
    # comes from the healthy-baseline reservoir — chaos runs add fault and
    # breaker windows on top (see results/incident_report.json).
    aggregator = CriticalPathAggregator()
    recorder = FlightRecorder(
        ForensicsConfig(reservoir_interval=20), aggregator=aggregator
    )
    db.auditor.recorder = recorder
    for _ in range(60):
        plan = workload.interaction_plan(db, rng)
        workload.run_plan(db, plan, session=db.session())
    db.auditor.recorder = None
    print(recorder.describe())
    for trace in recorder.traces[:3]:
        reasons = ",".join(trace.reasons)
        print(
            f"  {trace.trace_id}  {trace.latency_seconds * 1000.0:7.2f} ms "
            f"[{reasons}]  {trace.query_class[:60]}"
        )
    print("\nper-query-class profiles (time-weighted mean shares):")
    for profile in aggregator.profiles()[:4]:
        print(f"  {profile.describe()}")
    print()

    # --- Chrome trace-event export ----------------------------------------
    out = Path("results")
    out.mkdir(exist_ok=True)
    path = out / "tpcw_interaction_trace.json"
    write_chrome_trace(str(path), tracer.roots)
    print(
        f"wrote {len(tracer.roots)} span trees to {path} — load it in "
        "chrome://tracing or https://ui.perfetto.dev"
    )


if __name__ == "__main__":
    main()
