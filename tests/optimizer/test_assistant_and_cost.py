"""Tests for the Performance Insight Assistant and the cost-based baseline."""

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.optimizer.assistant import PerformanceInsightAssistant
from repro.optimizer.cost_based import CostBasedOptimizer, TableStatistics
from repro.plans import physical as P
from repro.workloads.scadr.queries import SUBSCRIBER_INTERSECTION
from repro.workloads.scadr.schema import scadr_ddl


@pytest.fixture
def scadr_catalog():
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=1))
    db.execute_ddl(scadr_ddl(100))
    return db.catalog


class TestAssistant:
    def test_diagnose_scale_independent_query(self, scadr_catalog, thoughtstream_sql):
        assistant = PerformanceInsightAssistant(scadr_catalog)
        diagnosis = assistant.diagnose(thoughtstream_sql)
        assert diagnosis.scale_independent
        assert diagnosis.optimized is not None
        assert "bounded plan found" in diagnosis.message
        assert "IndexScan" not in diagnosis.render() or diagnosis.logical_plan

    def test_diagnose_unbounded_query_suggests_cardinality(self, scadr_catalog):
        assistant = PerformanceInsightAssistant(scadr_catalog)
        diagnosis = assistant.diagnose("SELECT * FROM users WHERE hometown = <town>")
        assert not diagnosis.scale_independent
        assert diagnosis.problem_relation == "users"
        assert "hometown" in diagnosis.candidate_attributes
        rendered = diagnosis.render()
        assert "NOT scale-independent" in rendered
        assert "CARDINALITY LIMIT" in rendered

    def test_missing_subscription_limit_is_reported(self):
        # Without the CARDINALITY LIMIT on subscriptions, optimization of the
        # thoughtstream query must fail and point at the subscriptions join
        # (the scenario of Section 6.4).
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=1))
        ddl = scadr_ddl(100).replace(
            "CARDINALITY LIMIT 100 (owner)", "extra VARCHAR(10)"
        )
        db.execute_ddl(ddl)
        assistant = PerformanceInsightAssistant(db.catalog)
        diagnosis = assistant.diagnose(
            "SELECT t.* FROM subscriptions s JOIN thoughts t "
            "WHERE t.owner = s.target AND s.owner = <uname> "
            "ORDER BY t.timestamp DESC LIMIT 10"
        )
        assert not diagnosis.scale_independent
        assert diagnosis.problem_relation in ("s", "t")

    def test_evaluate_cardinalities_grid(self, scadr_catalog):
        assistant = PerformanceInsightAssistant(scadr_catalog)

        def fake_predict(subscriptions: int, per_page: int) -> float:
            return subscriptions * per_page / 100_000.0

        results = assistant.evaluate_cardinalities(
            fake_predict,
            {"subscriptions": [100, 200], "per_page": [10, 20]},
            slo_latency_seconds=0.03,
        )
        assert len(results) == 4
        meets = {(s["subscriptions"], s["per_page"]): ok for s, _, ok in results}
        assert meets[(100, 10)] is True
        assert meets[(200, 20)] is False

    def test_recommend_max_cardinality(self, scadr_catalog):
        assistant = PerformanceInsightAssistant(scadr_catalog)
        recommended = assistant.recommend_max_cardinality(
            lambda c: c / 1000.0, slo_latency_seconds=0.25, candidates=[50, 100, 250, 500]
        )
        assert recommended == 250
        assert assistant.recommend_max_cardinality(
            lambda c: 10.0, slo_latency_seconds=0.25, candidates=[50]
        ) is None


class TestCostBasedBaseline:
    def test_prefers_unbounded_scan_with_small_average(self, scadr_catalog):
        optimizer = CostBasedOptimizer(
            scadr_catalog,
            {"subscriptions": TableStatistics(
                row_count=1_000_000, avg_rows_per_value={("target",): 126.0}
            )},
        )
        plan = optimizer.optimize(SUBSCRIBER_INTERSECTION)
        assert not plan.scale_independent
        assert "unbounded index scan" in plan.description
        scans = P.find_scans(plan.physical_plan)
        assert scans and scans[0].limit_hint is None

    def test_prefers_bounded_lookups_with_huge_average(self, scadr_catalog):
        optimizer = CostBasedOptimizer(
            scadr_catalog,
            {"subscriptions": TableStatistics(
                row_count=10_000_000, avg_rows_per_value={("target",): 50_000.0}
            )},
        )
        plan = optimizer.optimize(SUBSCRIBER_INTERSECTION)
        assert plan.scale_independent
        assert "random" in plan.description

    def test_enumerates_both_candidates(self, scadr_catalog):
        optimizer = CostBasedOptimizer(scadr_catalog, {})
        candidates = optimizer.enumerate_plans(SUBSCRIBER_INTERSECTION)
        kinds = {c.scale_independent for c in candidates}
        assert kinds == {True, False}

    def test_multi_relation_queries_unsupported(self, scadr_catalog, thoughtstream_sql):
        optimizer = CostBasedOptimizer(scadr_catalog, {})
        with pytest.raises(Exception):
            optimizer.optimize(thoughtstream_sql)
