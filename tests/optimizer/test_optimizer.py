"""Tests for the scale-independent optimizer (Phases I and II)."""

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.errors import NotScaleIndependentError
from repro.plans import physical as P
from repro.plans.bounds import compute_bound
from repro.plans.printer import plan_operators
from repro.workloads.scadr.schema import scadr_ddl
from repro.workloads.tpcw.queries import QUERIES as TPCW_QUERIES
from repro.workloads.tpcw.schema import TPCW_DDL


@pytest.fixture
def scadr_optimizer():
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=1))
    db.execute_ddl(scadr_ddl(100))
    return db.optimizer


@pytest.fixture
def tpcw_optimizer():
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=1))
    db.execute_ddl(TPCW_DDL)
    return db.optimizer


class TestThoughtstreamPlan:
    """The worked example of Figure 3."""

    def test_logical_plan_contains_datastop_below_approval_filter(
        self, scadr_optimizer, thoughtstream_sql
    ):
        plan = scadr_optimizer.prepared_logical_plan(thoughtstream_sql)
        operators = plan_operators(plan)
        datastop_index = next(
            i for i, op in enumerate(operators) if op.startswith("DataStop")
        )
        approved_index = next(
            i for i, op in enumerate(operators) if "approved" in op
        )
        owner_index = next(
            i for i, op in enumerate(operators) if "s.owner" in op and "Selection" in op
        )
        # Pre-order rendering: parents come before children, so the data-stop
        # sits *below* the approval filter and *above* its causing predicate.
        assert approved_index < datastop_index < owner_index

    def test_physical_plan_matches_figure_3d(self, scadr_optimizer, thoughtstream_sql):
        optimized = scadr_optimizer.optimize(thoughtstream_sql)
        operators = plan_operators(optimized.physical_plan)
        joined = "\n".join(operators)
        assert "SortedIndexJoin(thoughts(primary)" in joined
        # The approval filter only reads the scanned record, so it is pushed
        # below the base-record fetch and evaluated server-side on the scan.
        assert "pushdown=(s.approved = True)" in joined
        assert "IndexScan(subscriptions(primary)" in joined
        assert "limitHint=100" in joined  # MaxSubscriptions
        assert "limitHint=10" in joined   # page size
        # No extra secondary index is required: the data-stop push-down lets
        # the primary index serve the subscriptions scan.
        assert optimized.required_indexes == []

    def test_operation_bound(self, scadr_optimizer, thoughtstream_sql):
        optimized = scadr_optimizer.optimize(thoughtstream_sql)
        bound = compute_bound(optimized.physical_plan)
        # 1 range request for subscriptions + at most 100 per-subscription
        # range requests for thoughts.
        assert bound.max_operations == 101
        assert bound.max_tuples == 10


class TestBoundedPlans:
    def test_primary_key_lookup_is_class_one(self, scadr_optimizer):
        optimized = scadr_optimizer.optimize(
            "SELECT * FROM users WHERE username = <u>"
        )
        assert optimized.operation_bound == 1
        remote = P.remote_operators(optimized.physical_plan)
        assert isinstance(remote[0], P.PhysicalIndexLookup)

    def test_limit_with_pk_prefix_uses_primary_index(self, scadr_optimizer):
        optimized = scadr_optimizer.optimize(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 10"
        )
        scans = P.find_scans(optimized.physical_plan)
        assert scans[0].index.primary
        assert scans[0].ascending is False
        assert optimized.operation_bound == 1
        assert optimized.required_indexes == []

    def test_cardinality_bounds_join(self, scadr_optimizer):
        optimized = scadr_optimizer.optimize(
            "SELECT u.* FROM subscriptions s JOIN users u "
            "WHERE s.owner = <u> AND u.username = s.target"
        )
        remote = P.remote_operators(optimized.physical_plan)
        assert any(isinstance(op, P.PhysicalIndexFKJoin) for op in remote)
        assert optimized.operation_bound == 101

    def test_in_over_primary_key_bounds_lookups(self, scadr_optimizer):
        optimized = scadr_optimizer.optimize(
            "SELECT * FROM subscriptions WHERE target = <t> AND owner IN [1: friends(50)]"
        )
        remote = P.remote_operators(optimized.physical_plan)
        assert isinstance(remote[0], P.PhysicalIndexLookup)
        assert optimized.operation_bound == 50

    def test_paginated_query_is_bounded(self, scadr_optimizer):
        optimized = scadr_optimizer.optimize(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp ASC PAGINATE 7"
        )
        assert optimized.is_paginated
        assert optimized.operation_bound == 1


class TestRejectedPlans:
    def test_unbounded_single_relation(self, scadr_optimizer):
        with pytest.raises(NotScaleIndependentError) as excinfo:
            scadr_optimizer.optimize("SELECT * FROM users WHERE hometown = <town>")
        assert "hometown" in " ".join(excinfo.value.candidate_attributes)
        assert excinfo.value.suggestions

    def test_full_table_scan_rejected(self, scadr_optimizer):
        with pytest.raises(NotScaleIndependentError):
            scadr_optimizer.optimize("SELECT * FROM users")

    def test_unbounded_join_rejected_with_suggestion(self, scadr_optimizer):
        # Without the cardinality limit column (owner) being constrained, the
        # join against thoughts cannot be bounded.
        with pytest.raises(NotScaleIndependentError) as excinfo:
            scadr_optimizer.optimize(
                "SELECT t.* FROM users u JOIN thoughts t "
                "WHERE u.hometown = <town> AND t.owner = u.username LIMIT 10"
            )
        assert excinfo.value.relation is not None

    def test_cartesian_product_rejected(self, scadr_optimizer):
        with pytest.raises(NotScaleIndependentError):
            scadr_optimizer.optimize(
                "SELECT * FROM users u1 JOIN thoughts t WHERE u1.username = <a> LIMIT 5"
            )

    def test_offset_style_unbounded_sort_rejected(self, scadr_optimizer):
        # Mixed-direction sorts cannot be satisfied by a single index scan.
        with pytest.raises(NotScaleIndependentError):
            scadr_optimizer.optimize(
                "SELECT * FROM thoughts WHERE owner = <u> "
                "ORDER BY timestamp DESC, text ASC LIMIT 10"
            )


class TestTpcwPlans:
    """Index selection for the TPC-W queries must match Table 1."""

    def _indexes(self, optimizer, sql):
        return [ix.describe() for ix in optimizer.optimize(sql).required_indexes]

    def test_every_tpcw_query_is_bounded(self, tpcw_optimizer):
        for name, sql in TPCW_QUERIES.items():
            optimized = tpcw_optimizer.optimize(sql)
            assert optimized.operation_bound > 0, name

    def test_new_products_index(self, tpcw_optimizer):
        indexes = self._indexes(tpcw_optimizer, TPCW_QUERIES["new_products_wi"])
        assert "item(token(I_SUBJECT), I_PUB_DATE, I_ID)" in indexes

    def test_search_by_title_index(self, tpcw_optimizer):
        indexes = self._indexes(tpcw_optimizer, TPCW_QUERIES["search_by_title_wi"])
        assert "item(token(I_TITLE), I_TITLE, I_A_ID, I_ID)" in indexes or \
            "item(token(I_TITLE), I_TITLE, I_ID)" in indexes

    def test_search_by_author_indexes(self, tpcw_optimizer):
        indexes = self._indexes(tpcw_optimizer, TPCW_QUERIES["search_by_author_wi"])
        assert any(ix.startswith("author(token(A_LNAME)") for ix in indexes)
        assert "item(I_A_ID, I_TITLE, I_ID)" in indexes

    def test_last_order_index(self, tpcw_optimizer):
        indexes = self._indexes(
            tpcw_optimizer, TPCW_QUERIES["order_display_get_last_order"]
        )
        assert "orders(O_C_UNAME, O_DATE_TIME, O_ID)" in indexes

    def test_point_queries_need_no_indexes(self, tpcw_optimizer):
        for name in ("home_wi", "product_detail_wi", "order_display_get_customer",
                     "order_display_get_order_lines", "buy_request_wi"):
            assert self._indexes(tpcw_optimizer, TPCW_QUERIES[name]) == [], name

    def test_fk_join_used_for_product_detail(self, tpcw_optimizer):
        optimized = tpcw_optimizer.optimize(TPCW_QUERIES["product_detail_wi"])
        remote = P.remote_operators(optimized.physical_plan)
        assert any(isinstance(op, P.PhysicalIndexFKJoin) for op in remote)
        assert optimized.operation_bound == 2


class TestDescribe:
    def test_describe_includes_bounds_and_plans(self, scadr_optimizer, thoughtstream_sql):
        optimized = scadr_optimizer.optimize(thoughtstream_sql)
        text = optimized.describe()
        assert "logical plan" in text
        assert "physical plan" in text
        assert "101 key/value operations" in text
