"""Execution engine tests: correctness, strategies, bounds, pagination."""

import pytest

from repro import ClusterConfig, ExecutionStrategy, PiqlDatabase
from repro.errors import CursorError
from repro.execution.cursor import PaginationCursor, query_fingerprint


class TestQueryCorrectness:
    """Query results must match a straightforward reference computation."""

    def test_point_lookup(self, scadr_db):
        result = scadr_db.execute(
            "SELECT * FROM users WHERE username = <u>", {"u": "bob"}
        )
        assert len(result.rows) == 1
        assert result.rows[0]["username"] == "bob"

    def test_point_lookup_missing(self, scadr_db):
        result = scadr_db.execute(
            "SELECT * FROM users WHERE username = <u>", {"u": "nobody"}
        )
        assert result.rows == []

    def test_projection_of_columns(self, scadr_db):
        result = scadr_db.execute(
            "SELECT password, hometown FROM users WHERE username = <u>", {"u": "bob"}
        )
        assert result.rows[0] == {"password": "pw1", "hometown": "seattle"}

    def test_recent_thoughts_order_and_limit(self, scadr_db):
        result = scadr_db.execute(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 5",
            {"u": "carol"},
        )
        timestamps = [row["timestamp"] for row in result.rows]
        assert timestamps == sorted(timestamps, reverse=True)
        assert len(timestamps) == 5
        assert timestamps[0] == 1_000_019

    def test_ascending_scan(self, scadr_db):
        result = scadr_db.execute(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp ASC LIMIT 3",
            {"u": "carol"},
        )
        assert [row["timestamp"] for row in result.rows] == [
            1_000_000, 1_000_001, 1_000_002
        ]

    def test_inequality_range(self, scadr_db):
        result = scadr_db.execute(
            "SELECT * FROM thoughts WHERE owner = <u> AND timestamp >= 1000015 "
            "ORDER BY timestamp ASC LIMIT 10",
            {"u": "carol"},
        )
        assert [row["timestamp"] for row in result.rows] == list(
            range(1_000_015, 1_000_020)
        )

    def test_thoughtstream_join(self, scadr_db, thoughtstream_sql):
        result = scadr_db.execute(thoughtstream_sql, {"uname": "alice"})
        # alice follows bob and carol (approved) and dave (not approved);
        # the 10 most recent thoughts therefore come from bob and carol only.
        owners = {row["owner"] for row in result.rows}
        assert owners == {"bob", "carol"}
        assert len(result.rows) == 10
        timestamps = [row["timestamp"] for row in result.rows]
        assert timestamps == sorted(timestamps, reverse=True)

    def test_fk_join(self, scadr_db):
        result = scadr_db.execute(
            "SELECT u.* FROM subscriptions s JOIN users u "
            "WHERE s.owner = <u> AND u.username = s.target",
            {"u": "alice"},
        )
        assert {row["username"] for row in result.rows} == {"bob", "carol", "dave"}

    def test_in_predicate_lookup(self, scadr_db):
        result = scadr_db.execute(
            "SELECT * FROM subscriptions WHERE target = <t> AND owner IN [1: friends(10)]",
            {"t": "alice", "friends": ["bob", "carol", "nobody"]},
        )
        assert [row["owner"] for row in result.rows] == ["bob"]

    def test_aggregate_count(self, scadr_db):
        result = scadr_db.execute(
            "SELECT COUNT(*) FROM subscriptions WHERE owner = <u>", {"u": "alice"}
        )
        assert result.rows[0]["count"] == 3

    def test_aggregate_group_by(self, scadr_db):
        result = scadr_db.execute(
            "SELECT approved, COUNT(*) AS n FROM subscriptions WHERE owner = <u> "
            "GROUP BY approved",
            {"u": "alice"},
        )
        counts = {row["approved"]: row["n"] for row in result.rows}
        assert counts == {True: 2, False: 1}

    def test_aggregate_min_max_avg(self, scadr_db):
        result = scadr_db.execute(
            "SELECT MIN(timestamp), MAX(timestamp), AVG(timestamp) FROM thoughts "
            "WHERE owner = <u> LIMIT 100",
            {"u": "bob"},
        )
        row = result.rows[0]
        assert row["min_timestamp"] == 1_000_000
        assert row["max_timestamp"] == 1_000_019
        assert row["avg_timestamp"] == pytest.approx(1_000_009.5)

    def test_missing_parameter_raises(self, scadr_db):
        with pytest.raises(KeyError):
            scadr_db.execute("SELECT * FROM users WHERE username = <u>", {})


class TestExecutionStrategies:
    def test_all_strategies_return_identical_rows(self, scadr_db, thoughtstream_sql):
        prepared = scadr_db.prepare(thoughtstream_sql)
        results = {
            strategy: prepared.execute({"uname": "alice"}, strategy=strategy).rows
            for strategy in ExecutionStrategy
        }
        assert results[ExecutionStrategy.LAZY] == results[ExecutionStrategy.SIMPLE]
        assert results[ExecutionStrategy.SIMPLE] == results[ExecutionStrategy.PARALLEL]

    def test_latency_ordering_lazy_simple_parallel(self, scadr_db, thoughtstream_sql):
        prepared = scadr_db.prepare(thoughtstream_sql)

        def average_latency(strategy):
            return sum(
                prepared.execute({"uname": "alice"}, strategy=strategy).latency_seconds
                for _ in range(30)
            ) / 30

        lazy = average_latency(ExecutionStrategy.LAZY)
        simple = average_latency(ExecutionStrategy.SIMPLE)
        parallel = average_latency(ExecutionStrategy.PARALLEL)
        assert lazy > simple > parallel

    def test_operations_never_exceed_bound(self, scadr_db, thoughtstream_sql):
        prepared = scadr_db.prepare(thoughtstream_sql)
        for strategy in ExecutionStrategy:
            result = prepared.execute({"uname": "alice"}, strategy=strategy)
            assert result.operations <= prepared.operation_bound


class TestPagination:
    PAGINATED = (
        "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp ASC PAGINATE 7"
    )

    def test_pages_cover_everything_without_duplicates(self, scadr_db):
        prepared = scadr_db.prepare(self.PAGINATED)
        seen = []
        for page in prepared.pages(u="carol"):
            seen.extend(row["timestamp"] for row in page.rows)
            assert len(page.rows) <= 7
        assert seen == list(range(1_000_000, 1_000_020))

    def test_descending_pagination(self, scadr_db):
        prepared = scadr_db.prepare(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 6"
        )
        seen = []
        for page in prepared.pages(u="carol"):
            seen.extend(row["timestamp"] for row in page.rows)
        assert seen == list(range(1_000_019, 999_999, -1))

    def test_cursor_is_serializable_and_resumable(self, scadr_db):
        prepared = scadr_db.prepare(self.PAGINATED)
        first = prepared.execute(u="carol")
        assert first.has_more
        assert isinstance(first.cursor, str)
        # The cursor round-trips through its string form (it could be shipped
        # to the browser and back, Section 4.1).
        token = PaginationCursor.deserialize(first.cursor).serialize()
        second = prepared.execute({"u": "carol"}, cursor=token)
        assert [r["timestamp"] for r in second.rows] == list(
            range(1_000_007, 1_000_014)
        )

    def test_cursor_for_wrong_query_rejected(self, scadr_db):
        prepared = scadr_db.prepare(self.PAGINATED)
        other = scadr_db.prepare(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 6"
        )
        cursor = prepared.execute(u="carol").cursor
        with pytest.raises(CursorError):
            other.execute({"u": "carol"}, cursor=cursor)

    def test_cursor_on_non_paginated_query_rejected(self, scadr_db):
        prepared = scadr_db.prepare(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp ASC LIMIT 5"
        )
        cursor = PaginationCursor(query_fingerprint("x", "y")).serialize()
        with pytest.raises(CursorError):
            prepared.execute({"u": "carol"}, cursor=cursor)

    def test_corrupt_cursor_rejected(self, scadr_db):
        prepared = scadr_db.prepare(self.PAGINATED)
        with pytest.raises(CursorError):
            prepared.execute({"u": "carol"}, cursor="not-a-cursor")

    def test_each_page_is_bounded(self, scadr_db):
        prepared = scadr_db.prepare(self.PAGINATED)
        for page in prepared.pages(u="carol"):
            assert page.operations <= prepared.operation_bound


class TestResultMetadata:
    def test_latency_and_operations_reported(self, scadr_db, thoughtstream_sql):
        result = scadr_db.execute(thoughtstream_sql, {"uname": "alice"})
        assert result.latency_seconds > 0
        assert result.latency_ms == pytest.approx(result.latency_seconds * 1000)
        assert result.operations >= 2
        assert result.rpcs >= 2
        assert len(result) == len(result.rows)
        assert list(iter(result)) == result.rows
