"""Batch-at-a-time executor tests: fusion, stop-aware dereference, pushdown.

Round fusion, stop-aware early termination, predicate pushdown, and key
deduplication must never change *what* a query computes — rows, per-query
operation counts, and static bounds are invariants; only the RPC round
structure and the latency composition may differ.  These tests pin the
invariants on the edge cases: empty child sets, duplicate keys, descending
paginated scans with resume positions, stop boundaries exactly on a chunk
edge, and the LAZY-versus-PARALLEL round split.
"""

import random

import pytest

from repro import ClusterConfig, ExecutionStrategy, PiqlDatabase
from repro.execution.evaluate import sort_rows, top_k_rows
from repro.plans import logical as L
from repro.storage.rows import (
    cached_pk_key,
    clear_row_caches,
    deserialize_pk,
    deserialize_row,
    pk_key,
    serialize_row,
)

LIBRARY_DDL = """
CREATE TABLE writers (
    wid     INT,
    lname   VARCHAR(32),
    PRIMARY KEY (wid),
    CARDINALITY LIMIT 10 (lname)
);

CREATE TABLE books (
    bid     INT,
    wid     INT,
    title   VARCHAR(64),
    PRIMARY KEY (bid),
    CARDINALITY LIMIT 20 (wid)
)
"""

BOOKS_BY_LNAME = (
    "SELECT b.title FROM writers w JOIN books b "
    "WHERE w.lname = <n> AND b.wid = w.wid ORDER BY b.title ASC LIMIT {limit}"
)


def library_db(fused: bool = True) -> PiqlDatabase:
    """Writers sharing a last name, each with a handful of titled books."""
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=21), fused=fused)
    db.execute_ddl(LIBRARY_DDL)
    bid = 0
    for wid, (lname, titles) in enumerate(
        [
            ("shared", ["delta", "alpha", "echo"]),
            ("shared", ["bravo", "golf"]),
            ("shared", ["charlie", "foxtrot", "hotel"]),
            ("solo", ["india"]),
            ("bookless", []),
        ]
    ):
        db.insert("writers", {"wid": wid, "lname": lname})
        for title in titles:
            db.insert("books", {"bid": bid, "wid": wid, "title": title})
            bid += 1
    # A second bookless writer shares the name, making a child whose range
    # comes back empty inside a multi-child join.
    db.insert("writers", {"wid": 90, "lname": "bookless"})
    return db


def all_strategy_rows(db, sql, parameters):
    prepared = db.prepare(sql)
    return {
        strategy: prepared.execute(dict(parameters), strategy=strategy).rows
        for strategy in ExecutionStrategy
    }


class TestFusedSortedJoin:
    def test_multi_child_join_rows_identical_everywhere(self):
        expected = [{"title": t} for t in
                    ["alpha", "bravo", "charlie", "delta", "echo"]]
        for fused in (False, True):
            db = library_db(fused=fused)
            rows = all_strategy_rows(
                db, BOOKS_BY_LNAME.format(limit=5), {"n": "shared"}
            )
            for strategy, got in rows.items():
                assert got == expected, (fused, strategy)

    def test_fused_join_issues_one_dereference_round(self):
        db = library_db(fused=True)
        prepared = db.prepare(BOOKS_BY_LNAME.format(limit=5))
        before = db.client.stats.snapshot()
        prepared.execute({"n": "shared"})
        delta = db.client.stats.snapshot().delta(before)
        # One bulk round for the join's dereference plus one for the
        # (secondary) writers scan — versus one round per matching writer.
        assert delta.dereference_rounds == 2
        # The stop (5) pruned the dereference of the other fetched entries.
        assert delta.saved_reads > 0

    def test_serial_join_pays_one_round_per_child(self):
        db = library_db(fused=False)
        prepared = db.prepare(BOOKS_BY_LNAME.format(limit=5))
        before = db.client.stats.snapshot()
        prepared.execute({"n": "shared"})
        delta = db.client.stats.snapshot().delta(before)
        # Scan dereference + one round per matching "shared" writer.
        assert delta.dereference_rounds == 1 + 3
        assert delta.saved_reads == 0

    def test_operations_identical_with_and_without_fusion(self):
        results = {}
        for fused in (False, True):
            db = library_db(fused=fused)
            result = db.prepare(BOOKS_BY_LNAME.format(limit=5)).execute(
                {"n": "shared"}
            )
            results[fused] = result.operations
        assert results[False] == results[True]

    def test_lazy_ignores_fusion_entirely(self):
        db = library_db(fused=True)
        prepared = db.prepare(BOOKS_BY_LNAME.format(limit=5))
        before = db.client.stats.snapshot()
        lazy = prepared.execute({"n": "shared"}, strategy=ExecutionStrategy.LAZY)
        delta = db.client.stats.snapshot().delta(before)
        parallel = prepared.execute({"n": "shared"})
        assert lazy.rows == parallel.rows
        # LAZY dereferences one tuple per request: every fetched entry of
        # the scan and the join pays its own round, nothing is saved.
        assert delta.dereference_rounds > 2
        assert delta.saved_reads == 0

    def test_empty_child_set(self):
        for fused in (False, True):
            db = library_db(fused=fused)
            result = db.prepare(BOOKS_BY_LNAME.format(limit=5)).execute(
                {"n": "nobody"}
            )
            assert result.rows == []

    def test_children_with_empty_ranges(self):
        # Both "bookless" writers match the scan but contribute no entries.
        for fused in (False, True):
            db = library_db(fused=fused)
            result = db.prepare(BOOKS_BY_LNAME.format(limit=5)).execute(
                {"n": "bookless"}
            )
            assert result.rows == []

    def test_stop_exactly_on_chunk_edge(self):
        # 8 "shared" books total: a stop of exactly 8 consumes the whole
        # entry stream in one chunk; 9 needs (and finds) nothing more.
        full = [{"title": t} for t in
                ["alpha", "bravo", "charlie", "delta", "echo",
                 "foxtrot", "golf", "hotel"]]
        for limit, expected in [(8, full), (9, full)]:
            for fused in (False, True):
                db = library_db(fused=fused)
                result = db.prepare(BOOKS_BY_LNAME.format(limit=limit)).execute(
                    {"n": "shared"}
                )
                assert result.rows == expected, (limit, fused)
                assert result.operations <= db.prepare(
                    BOOKS_BY_LNAME.format(limit=limit)
                ).operation_bound


class TestDuplicateKeyDedupe:
    FAN_IN = (
        "SELECT w.lname FROM books b JOIN writers w "
        "WHERE b.wid = <w> AND w.wid = b.wid"
    )

    def test_fk_join_dedupes_repeated_targets(self):
        # Every book of writer 0 references the same writer row: the fused
        # executor fetches it once but still charges one logical lookup per
        # child tuple.
        fused_db = library_db(fused=True)
        serial_db = library_db(fused=False)
        fused = fused_db.prepare(self.FAN_IN).execute({"w": 0})
        serial = serial_db.prepare(self.FAN_IN).execute({"w": 0})
        assert fused.rows == serial.rows == [{"lname": "shared"}] * 3
        assert fused.operations == serial.operations
        assert fused_db.client.stats.saved_reads == 2   # 3 lookups, 1 fetch
        assert serial_db.client.stats.saved_reads == 0

    def test_in_list_lookup_dedupes_duplicate_keys(self, scadr_db):
        sql = (
            "SELECT * FROM subscriptions WHERE target = <t> "
            "AND owner IN [1: friends(10)]"
        )
        result = scadr_db.execute(
            sql, {"t": "alice", "friends": ["bob", "bob", "carol"]}
        )
        assert [row["owner"] for row in result.rows] == ["bob", "bob"]
        assert scadr_db.client.stats.saved_reads == 1


class TestPushdown:
    def test_residual_filter_pushed_to_primary_scan(self, scadr_db,
                                                    thoughtstream_sql):
        # The thoughtstream approval filter now runs server-side: nodes
        # report filtered keys, and results match the reference exactly.
        result = scadr_db.execute(thoughtstream_sql, {"uname": "alice"})
        assert {row["owner"] for row in result.rows} == {"bob", "carol"}
        assert sum(
            node.stats.keys_filtered for node in scadr_db.cluster.nodes
        ) > 0

    def test_pushdown_rows_and_operations_match_unfused(self):
        sql = (
            "SELECT b.title FROM books b WHERE b.wid = <w> AND b.bid >= 1 "
        )
        results = {}
        for fused in (False, True):
            db = library_db(fused=fused)
            results[fused] = db.prepare(sql).execute({"w": 0})
        assert results[True].rows == results[False].rows
        assert results[True].operations == results[False].operations
        assert sorted(r["title"] for r in results[True].rows) == ["alpha", "echo"]

    def test_pushdown_on_secondary_entries_prunes_dereference(self):
        # bid is recoverable from the (wid, bid) index entry key, so the
        # fused arm never dereferences the filtered-out book.
        sql = "SELECT b.title FROM books b WHERE b.wid = <w> AND b.bid >= 1 "
        db = library_db(fused=True)
        db.prepare(sql).execute({"w": 0})
        assert db.client.stats.saved_reads == 1

    def test_descending_paginated_scan_with_pushed_inequality(self, scadr_db):
        sql = (
            "SELECT * FROM thoughts WHERE owner = <u> AND timestamp <> <skip> "
            "ORDER BY timestamp DESC PAGINATE 6"
        )
        prepared = scadr_db.prepare(sql)
        seen = []
        for page in prepared.pages(u="carol", skip=1_000_010):
            assert len(page.rows) <= 6
            seen.extend(row["timestamp"] for row in page.rows)
        expected = [t for t in range(1_000_019, 999_999, -1) if t != 1_000_010]
        assert seen == expected

    def test_paginated_pushdown_matches_lazy(self, scadr_db):
        sql = (
            "SELECT * FROM thoughts WHERE owner = <u> AND timestamp <> <skip> "
            "ORDER BY timestamp ASC PAGINATE 7"
        )
        prepared = scadr_db.prepare(sql)
        by_strategy = {}
        for strategy in (ExecutionStrategy.LAZY, ExecutionStrategy.PARALLEL):
            rows = []
            for page in prepared.pages(strategy=strategy, u="carol",
                                       skip=1_000_003):
                rows.extend(page.rows)
            by_strategy[strategy] = rows
        assert by_strategy[ExecutionStrategy.LAZY] == \
            by_strategy[ExecutionStrategy.PARALLEL]


class TestCountPushdown:
    def test_count_star_uses_count_range(self, scadr_db):
        result = scadr_db.execute(
            "SELECT COUNT(*) FROM subscriptions WHERE owner = <u>", {"u": "alice"}
        )
        assert result.rows[0]["count"] == 3
        # One counter probe instead of a range fetch plus three dereferences.
        assert result.operations == 1

    def test_count_star_lazy_matches(self, scadr_db):
        prepared = scadr_db.prepare(
            "SELECT COUNT(*) FROM subscriptions WHERE owner = <u>"
        )
        lazy = prepared.execute({"u": "alice"}, strategy=ExecutionStrategy.LAZY)
        fast = prepared.execute({"u": "alice"})
        assert lazy.rows == fast.rows
        assert lazy.operations > fast.operations

    def test_count_with_residual_predicate_not_rerouted(self, scadr_db):
        # A residual predicate disqualifies the count_range fast path; the
        # scan still runs (here as a filtered primary range) and the count
        # reflects the filter in every strategy.
        prepared = scadr_db.prepare(
            "SELECT COUNT(*) FROM subscriptions WHERE owner = <u> "
            "AND approved = true"
        )
        fast = prepared.execute({"u": "alice"})
        lazy = prepared.execute({"u": "alice"}, strategy=ExecutionStrategy.LAZY)
        assert fast.rows == lazy.rows == [{"count": 2}]

    def test_count_respects_scan_limit(self, scadr_db):
        result = scadr_db.execute(
            "SELECT COUNT(*) FROM thoughts WHERE owner = <u> LIMIT 5",
            {"u": "carol"},
        )
        assert result.rows[0]["count"] == 5

    def test_paginated_count_stands_down(self, scadr_db):
        # A paginated COUNT counts one page per execution; the count_range
        # fast path must not collapse the cursor to a single page.
        prepared = scadr_db.prepare(
            "SELECT COUNT(*) FROM thoughts WHERE owner = <u> PAGINATE 8"
        )
        for strategy in (ExecutionStrategy.LAZY, ExecutionStrategy.PARALLEL):
            counts = [
                page.rows[0]["count"]
                for page in prepared.pages(strategy=strategy, u="carol")
            ]
            assert counts == [8, 8, 4], strategy


class TestTopKSelection:
    def test_top_k_matches_sort_then_truncate(self):
        rng = random.Random(5)
        rows = [
            {"t": {"a": rng.randrange(6), "b": rng.choice([None, rng.random()])}}
            for _ in range(200)
        ]
        keys = (
            (L.BoundColumn(relation="t", table="t", column="a"), True),
            (L.BoundColumn(relation="t", table="t", column="b"), False),
        )
        for k in (0, 1, 7, 199, 200, 500):
            assert top_k_rows(list(rows), keys, k) == sort_rows(rows, keys)[:k]


class TestRowCaches:
    def test_deserialize_row_cache_hits_are_isolated(self):
        clear_row_caches()
        payload = serialize_row({"a": 1, "b": "x"})
        first = deserialize_row(payload)
        first["a"] = 999
        second = deserialize_row(payload)
        assert second == {"a": 1, "b": "x"}

    def test_cached_pk_key_matches_uncached(self):
        clear_row_caches()
        payload = b'["alice", 42]'
        assert cached_pk_key(payload) == pk_key(deserialize_pk(payload))
        # Second call is served from the intern table, same value.
        assert cached_pk_key(payload) == pk_key(deserialize_pk(payload))
