"""Quorum data-path tests: replica copies, failover, hints, anti-entropy.

These tests pin the acceptance property of the replication tier: with
``N=3, R=W=2`` killing **any** single node loses no acknowledged write and
every read still succeeds.
"""

import pytest

from repro.errors import QuorumNotMetError, UnavailableError
from repro.kvstore import ClusterConfig, KeyValueCluster


def quorum_cluster(storage_nodes=4, **overrides) -> KeyValueCluster:
    config = dict(
        storage_nodes=storage_nodes,
        replication=3,
        read_quorum=2,
        write_quorum=2,
        seed=3,
    )
    config.update(overrides)
    cluster = KeyValueCluster(ClusterConfig(**config))
    cluster.create_namespace("data")
    return cluster


class TestQuorumConfig:
    def test_defaults_are_read_one_write_all(self):
        config = ClusterConfig(storage_nodes=4, replication=3)
        assert config.effective_read_quorum == 1
        assert config.effective_write_quorum == 3

    def test_overlapping_quorums_enforced(self):
        with pytest.raises(ValueError):
            ClusterConfig(storage_nodes=4, replication=3, read_quorum=1,
                          write_quorum=2)

    def test_quorum_bounds(self):
        with pytest.raises(ValueError):
            ClusterConfig(storage_nodes=4, replication=2, read_quorum=3)
        with pytest.raises(ValueError):
            ClusterConfig(storage_nodes=4, replication=2, write_quorum=0)


class TestReplicaPlacement:
    def test_each_key_physically_stored_on_replication_nodes(self):
        cluster = quorum_cluster()
        for index in range(40):
            cluster.load("data", f"k{index}".encode(), b"v")
        for index in range(40):
            key = f"k{index}".encode()
            holders = [
                node_id
                for node_id, store in cluster.replication.stores.items()
                if store.get_record("data", key) is not None
            ]
            assert len(holders) == 3
            assert sorted(holders) == sorted(
                cluster.replication.preference_list("data", key)
            )

    def test_routing_is_pure_function_of_key(self):
        cluster = quorum_cluster()
        cluster.load("data", b"k", b"v")
        first = cluster.route("data", b"k").node_id
        for _ in range(5):
            assert cluster.route("data", b"k").node_id == first


class TestSingleNodeFailover:
    """The acceptance criterion, for every possible victim node."""

    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_no_acknowledged_write_lost_and_reads_succeed(self, victim):
        cluster = quorum_cluster()
        for index in range(60):
            cluster.load("data", f"k{index:03d}".encode(), f"v{index}".encode())

        cluster.crash_node(victim)
        # Every read still succeeds against the surviving replicas.
        for index in range(60):
            assert cluster.get("data", f"k{index:03d}".encode()).value is not None
        # Writes acknowledged during the outage...
        for index in range(30):
            cluster.put("data", f"new{index:03d}".encode(), f"w{index}".encode())
        assert cluster.replication.hint_count(victim) > 0

        report = cluster.recover_node(victim)
        assert report.hints_replayed > 0
        # ...survive the recovery, visible from every replica choice.
        for index in range(30):
            key = f"new{index:03d}".encode()
            assert cluster.get("data", key).value == f"w{index}".encode()
            store = cluster.replication.stores[victim]
            prefs = cluster.replication.preference_list("data", key)
            if victim in prefs:
                assert store.get_record("data", key) is not None

    def test_reads_served_while_any_single_node_down(self):
        cluster = quorum_cluster()
        cluster.load("data", b"key", b"value")
        for victim in range(4):
            cluster.crash_node(victim)
            assert cluster.get("data", b"key").value == b"value"
            result = cluster.get_range("data", b"k", b"l")
            assert (b"key", b"value") in result.value
            cluster.recover_node(victim)


class TestQuorumFailureModes:
    def test_write_fails_without_write_quorum(self):
        cluster = quorum_cluster()
        cluster.load("data", b"k", b"v")
        prefs = cluster.replication.preference_list("data", b"k")
        for node_id in prefs[:2]:
            cluster.crash_node(node_id)
        with pytest.raises(QuorumNotMetError):
            cluster.put("data", b"k", b"new")
        # The failed write must not have mutated the surviving replica.
        from repro.replication import decode_record

        _, record = cluster.replication.newest_record(
            "data", b"k", cluster.up_node_ids()
        )
        assert record is not None and decode_record(record)[1] == b"v"

    def test_read_fails_without_read_quorum(self):
        cluster = quorum_cluster()
        cluster.load("data", b"k", b"v")
        prefs = cluster.replication.preference_list("data", b"k")
        for node_id in prefs[:2]:
            cluster.crash_node(node_id)
        with pytest.raises(QuorumNotMetError):
            cluster.get("data", b"k")

    def test_range_unavailable_when_coverage_unknown(self):
        cluster = quorum_cluster()
        for index in range(20):
            cluster.load("data", f"k{index}".encode(), b"v")
        for node_id in (0, 1, 2):
            cluster.crash_node(node_id)
        with pytest.raises(UnavailableError):
            cluster.get_range("data", None, None)
        partial = cluster.get_range("data", None, None, allow_partial=True)
        assert partial.partial is True

    def test_iter_namespace_and_size_guarded_like_ranges(self):
        cluster = quorum_cluster()
        for index in range(10):
            cluster.load("data", f"k{index}".encode(), b"v")
        for node_id in (0, 1, 2):
            cluster.crash_node(node_id)
        # Index backfill and counts must refuse rather than silently omit
        # rows whose whole replica set is down.
        with pytest.raises(UnavailableError):
            cluster.iter_namespace("data")
        with pytest.raises(UnavailableError):
            cluster.namespace_size("data")

    def test_quorum_error_is_typed_and_descriptive(self):
        cluster = quorum_cluster()
        cluster.load("data", b"k", b"v")
        prefs = cluster.replication.preference_list("data", b"k")
        for node_id in prefs:
            cluster.crash_node(node_id)
        with pytest.raises(QuorumNotMetError) as excinfo:
            cluster.get("data", b"k")
        assert isinstance(excinfo.value, UnavailableError)
        assert excinfo.value.needed == 2
        assert excinfo.value.available == 0


class TestReadRepair:
    def test_stale_replica_is_repaired_by_a_read(self):
        cluster = quorum_cluster()
        cluster.load("data", b"k", b"old")
        prefs = cluster.replication.preference_list("data", b"k")
        # Write while one replica is down: it misses the update.
        cluster.crash_node(prefs[0])
        cluster.put("data", b"k", b"new")
        # Bring it back WITHOUT the recovery sync: it is now stale.
        cluster.node(prefs[0]).mark_up()
        stale = cluster.replication.stores[prefs[0]]
        assert b"old" in (stale.get_record("data", b"k") or b"")
        # R=2 reads eventually include the stale replica and repair it.
        for _ in range(4):
            assert cluster.get("data", b"k").value == b"new"
        assert b"new" in stale.get_record("data", b"k")


class TestDeletesAndTombstones:
    def test_delete_propagates_through_recovery(self):
        cluster = quorum_cluster()
        cluster.load("data", b"k", b"v")
        prefs = cluster.replication.preference_list("data", b"k")
        cluster.crash_node(prefs[0])
        assert cluster.delete("data", b"k").value is True
        cluster.recover_node(prefs[0])
        # The deleted key must not resurrect from the recovered replica.
        assert cluster.get("data", b"k").value is None
        assert cluster.namespace_size("data") == 0

    def test_test_and_set_during_failover(self):
        cluster = quorum_cluster()
        cluster.crash_node(0)
        assert cluster.test_and_set("data", b"t", None, b"1").value is True
        assert cluster.test_and_set("data", b"t", None, b"2").value is False
        assert cluster.test_and_set("data", b"t", b"1", b"2").value is True
        cluster.recover_node(0)
        assert cluster.get("data", b"t").value == b"2"


class TestAntiEntropyRebalance:
    def test_add_node_rebalances_and_preserves_data(self):
        cluster = quorum_cluster()
        for index in range(50):
            cluster.load("data", f"k{index:03d}".encode(), f"v{index}".encode())
        cluster.add_node()
        assert cluster.last_repair is not None
        assert cluster.last_repair.keys_copied > 0
        # Every key is fully replicated on its (new) preference list.
        for index in range(50):
            key = f"k{index:03d}".encode()
            for node_id in cluster.replication.preference_list("data", key):
                assert (
                    cluster.replication.stores[node_id].get_record("data", key)
                    is not None
                )
            assert cluster.get("data", key).value == f"v{index}".encode()

    def test_remove_node_rebalances_and_preserves_data(self):
        cluster = quorum_cluster(storage_nodes=5)
        for index in range(50):
            cluster.load("data", f"k{index:03d}".encode(), f"v{index}".encode())
        cluster.remove_node()
        assert cluster.namespace_size("data") == 50
        for index in range(50):
            key = f"k{index:03d}".encode()
            assert cluster.get("data", key).value == f"v{index}".encode()
            holders = [
                node_id
                for node_id, store in cluster.replication.stores.items()
                if store.get_record("data", key) is not None
            ]
            assert len(holders) == 3

    def test_remove_node_guard_at_replication_floor(self):
        cluster = quorum_cluster(storage_nodes=3)
        with pytest.raises(UnavailableError):
            cluster.remove_node()

    def test_remove_node_guard_counts_up_nodes(self):
        cluster = quorum_cluster(storage_nodes=4)
        cluster.crash_node(0)
        # Four provisioned, three up: removing one would leave only two up
        # members for replication factor three.
        assert not cluster.can_remove_node()
        with pytest.raises(UnavailableError):
            cluster.remove_node()
        cluster.recover_node(0)
        assert cluster.can_remove_node()
        cluster.remove_node()
