"""Unit tests for versioned records and per-node replica stores."""

import pytest

from repro.replication import (
    MISSING_SEQ,
    ReplicaStore,
    decode_record,
    encode_record,
    record_seq,
)


class TestRecordEncoding:
    def test_round_trip(self):
        record = encode_record(42, b"payload")
        assert decode_record(record) == (42, b"payload")
        assert record_seq(record) == 42

    def test_tombstone(self):
        record = encode_record(7, None)
        seq, value = decode_record(record)
        assert seq == 7
        assert value is None

    def test_empty_value_is_not_a_tombstone(self):
        seq, value = decode_record(encode_record(1, b""))
        assert value == b""

    def test_missing_seq(self):
        assert record_seq(None) == MISSING_SEQ

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            encode_record(-1, b"x")


class TestReplicaStore:
    def test_newest_wins(self):
        store = ReplicaStore()
        assert store.apply_record("ns", b"k", encode_record(2, b"new"))
        # An older record never overwrites a newer one.
        assert not store.apply_record("ns", b"k", encode_record(1, b"old"))
        assert decode_record(store.get_record("ns", b"k")) == (2, b"new")

    def test_tombstone_supersedes_value(self):
        store = ReplicaStore()
        store.apply_record("ns", b"k", encode_record(1, b"v"))
        store.apply_record("ns", b"k", encode_record(2, None))
        seq, value = decode_record(store.get_record("ns", b"k"))
        assert (seq, value) == (2, None)
        # The tombstone still occupies a slot (needed for propagation).
        assert store.key_count("ns") == 1

    def test_range_records_include_tombstones(self):
        store = ReplicaStore()
        store.apply_record("ns", b"a", encode_record(1, b"v"))
        store.apply_record("ns", b"b", encode_record(2, None))
        keys = [key for key, _ in store.range_records("ns", None, None)]
        assert keys == [b"a", b"b"]

    def test_discard_and_drop_namespace(self):
        store = ReplicaStore()
        store.apply_record("ns", b"k", encode_record(1, b"v"))
        assert store.discard("ns", b"k")
        assert not store.discard("ns", b"k")
        store.apply_record("ns", b"k", encode_record(2, b"v"))
        store.drop_namespace("ns")
        assert store.get_record("ns", b"k") is None
        assert store.seq_of("other", b"k") == MISSING_SEQ
