"""Unit tests for the consistent-hashing replica placement ring."""

import pytest

from repro.replication import HashRing, moved_keys, placement_token


def ring_with(node_ids, vnodes=64, seed=0):
    ring = HashRing(vnodes_per_node=vnodes, seed=seed)
    for node_id in node_ids:
        ring.add_node(node_id)
    return ring


def tokens(count):
    return [placement_token("ns", f"key{i:05d}".encode()) for i in range(count)]


class TestHashRing:
    def test_preference_list_is_deterministic(self):
        a = ring_with(range(5))
        b = ring_with(range(5))
        for token in tokens(50):
            assert a.preference_list(token, 3) == b.preference_list(token, 3)

    def test_preference_list_distinct_nodes(self):
        ring = ring_with(range(4))
        for token in tokens(100):
            prefs = ring.preference_list(token, 3)
            assert len(prefs) == 3
            assert len(set(prefs)) == 3

    def test_preference_list_clamped_to_membership(self):
        ring = ring_with(range(2))
        assert len(ring.preference_list(tokens(1)[0], 5)) == 2
        assert HashRing().preference_list(b"x", 3) == []

    def test_add_node_is_idempotent_and_remove_unknown_is_noop(self):
        ring = ring_with(range(3))
        epoch = ring.epoch
        ring.add_node(1)
        assert ring.epoch == epoch
        ring.remove_node(99)
        assert ring.epoch == epoch
        assert ring.node_ids() == [0, 1, 2]

    def test_topology_change_bumps_epoch(self):
        ring = ring_with(range(3))
        epoch = ring.epoch
        ring.add_node(3)
        assert ring.epoch == epoch + 1
        ring.remove_node(3)
        assert ring.epoch == epoch + 2

    def test_minimal_movement_on_node_addition(self):
        before = ring_with(range(8))
        after = ring_with(range(9))
        sample = tokens(400)
        moved = moved_keys(before, after, sample, n=3)
        # Adding one node to eight should move roughly 3/9 of preference
        # lists (each of the three replica slots has a ~1/9 chance); far
        # less than a naive modulo rehash, which moves nearly everything.
        assert moved / len(sample) < 0.55

    def test_ownership_roughly_balanced(self):
        ring = ring_with(range(4), vnodes=128)
        fractions = ring.ownership_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(0.15 < fraction < 0.35 for fraction in fractions.values())

    def test_invalid_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes_per_node=0)
