"""Fault-injector tests: scheduled crash / recover / slow-node events."""

import pytest

from repro.kvstore import ClusterConfig, KeyValueCluster
from repro.replication import (
    FaultInjector,
    FaultSpec,
    crash_recover_timeline,
)
from repro.replication.faults import fault_event_payload, validate_timeline
from repro.serving import Simulation


def cluster_with_data() -> KeyValueCluster:
    cluster = KeyValueCluster(
        ClusterConfig(storage_nodes=4, replication=3, read_quorum=2,
                      write_quorum=2, seed=1)
    )
    cluster.create_namespace("data")
    for index in range(20):
        cluster.load("data", f"k{index}".encode(), b"v")
    return cluster


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="explode", node_id=0)

    def test_slow_needs_factor_above_one(self):
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="slow", node_id=0, factor=0.5)

    def test_timeline_helper_orders_events(self):
        specs = crash_recover_timeline(2, 5.0, 9.0)
        assert [(s.kind, s.time) for s in specs] == [("crash", 5.0),
                                                    ("recover", 9.0)]
        with pytest.raises(ValueError):
            crash_recover_timeline(2, 9.0, 5.0)

    def test_network_kind_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="partition")  # groups required
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="flaky", node_id=0, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="delay", node_id=0, delay_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="flaky", probability=0.5)  # no node

    def test_partition_groups_normalised_to_tuples(self):
        spec = FaultSpec(time=1.0, kind="partition", groups=[[2, 3], [0]])
        assert spec.groups == ((2, 3), (0,))


class TestValidateTimeline:
    def test_recover_at_or_before_crash_rejected(self):
        with pytest.raises(ValueError, match="at-or-before"):
            validate_timeline(
                [
                    FaultSpec(time=3.0, kind="recover", node_id=1),
                    FaultSpec(time=5.0, kind="crash", node_id=1),
                ]
            )
        # Same-tick crash+recover is also invalid — the duplicate rule
        # catches it before the ordering rule does.
        with pytest.raises(ValueError):
            validate_timeline(
                [
                    FaultSpec(time=5.0, kind="crash", node_id=1),
                    FaultSpec(time=5.0, kind="recover", node_id=1),
                ]
            )

    def test_matching_is_per_occurrence(self):
        # crash@1 → recover@2, crash@4 → recover@6: well formed.
        validate_timeline(
            [
                FaultSpec(time=1.0, kind="crash", node_id=0),
                FaultSpec(time=2.0, kind="recover", node_id=0),
                FaultSpec(time=4.0, kind="crash", node_id=0),
                FaultSpec(time=6.0, kind="recover", node_id=0),
            ]
        )
        # Second recover lands before its (second) crash: rejected.
        with pytest.raises(ValueError):
            validate_timeline(
                [
                    FaultSpec(time=1.0, kind="crash", node_id=0),
                    FaultSpec(time=2.0, kind="recover", node_id=0),
                    FaultSpec(time=3.0, kind="recover", node_id=0),
                    FaultSpec(time=4.0, kind="crash", node_id=0),
                ]
            )

    def test_extra_recover_of_up_node_is_allowed(self):
        # Recovering an already-up node is a tested no-op, not an error.
        validate_timeline([FaultSpec(time=2.0, kind="recover", node_id=1)])

    def test_duplicate_same_tick_same_node_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_timeline(
                [
                    FaultSpec(time=2.0, kind="crash", node_id=1),
                    FaultSpec(time=2.0, kind="slow", node_id=1, factor=2.0),
                ]
            )

    def test_same_tick_different_nodes_allowed(self):
        validate_timeline(
            [
                FaultSpec(time=2.0, kind="crash", node_id=1),
                FaultSpec(time=2.0, kind="crash", node_id=2),
            ]
        )

    def test_schedule_validates_before_scheduling(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        sim = Simulation()
        with pytest.raises(ValueError):
            injector.schedule(
                sim,
                [
                    FaultSpec(time=5.0, kind="crash", node_id=1),
                    FaultSpec(time=4.0, kind="recover", node_id=1),
                ],
            )
        assert injector.events == []


class TestFaultInjector:
    def test_scheduled_crash_and_recover_through_kernel(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        sim = Simulation()
        injector.schedule(sim, crash_recover_timeline(1, 2.0, 6.0))

        sim.run(until=3.0)
        assert not cluster.node(1).up
        sim.run(until=10.0)
        assert cluster.node(1).up

        kinds = [(event.time, event.kind) for event in injector.events]
        assert kinds == [(2.0, "crash"), (6.0, "recover")]
        recover = injector.events[-1]
        assert recover.repair is not None
        assert recover.up_nodes_after == 4
        assert injector.total_repair().keys_examined >= 0
        assert len(injector.timeline()) == 2

    def test_fault_for_removed_node_is_skipped_not_fatal(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        cluster.remove_node()  # node 3 is gone; a stale fault spec remains
        event = injector.apply(FaultSpec(time=1.0, kind="recover", node_id=3))
        assert "skipped" in event.detail
        assert [e.kind for e in injector.events] == ["recover"]

    def test_slow_node_degrades_and_restores(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        node = cluster.node(0)

        injector.apply(FaultSpec(time=0.0, kind="slow", node_id=0, factor=8.0))
        assert node.speed_factor == 8.0
        assert node.effective_capacity_ops_per_second == pytest.approx(
            node.capacity_ops_per_second / 8.0
        )
        slowed = sum(node.charge_read(1, 0, 0.0) for _ in range(100))
        injector.apply(FaultSpec(time=1.0, kind="restore", node_id=0))
        assert node.speed_factor == 1.0
        healthy = sum(node.charge_read(1, 0, 0.0) for _ in range(100))
        assert slowed > healthy * 3

    def test_writes_during_crash_become_hints_then_replay(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(FaultSpec(time=0.0, kind="crash", node_id=2))
        for index in range(30):
            cluster.put("data", f"h{index}".encode(), b"x")
        assert cluster.replication.hint_count(2) > 0
        event = injector.apply(FaultSpec(time=5.0, kind="recover", node_id=2))
        assert event.repair is not None
        assert event.repair.hints_replayed == cluster.replication.hint_count(2) \
            or event.repair.hints_replayed > 0
        assert cluster.replication.hint_count(2) == 0

    def test_network_faults_apply_and_heal(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(
            FaultSpec(time=1.0, kind="partition", groups=((2, 3),))
        )
        assert cluster.network.active
        assert not cluster.network.reachable(0, 2)
        injector.apply(
            FaultSpec(time=2.0, kind="flaky", node_id=1, probability=0.5)
        )
        injector.apply(
            FaultSpec(time=3.0, kind="delay", node_id=0, delay_seconds=0.2)
        )
        heal = injector.apply(FaultSpec(time=4.0, kind="heal"))
        assert not cluster.network.active
        assert "dropped=" in heal.detail
        kinds = [event.kind for event in injector.events]
        assert kinds == ["partition", "flaky", "delay", "heal"]
        partition = injector.events[0]
        assert partition.detail == "groups=2,3"

    def test_timeline_payload_exports_repair_fields(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(FaultSpec(time=0.0, kind="crash", node_id=2))
        for index in range(10):
            cluster.put("data", f"h{index}".encode(), b"x")
        injector.apply(FaultSpec(time=5.0, kind="recover", node_id=2))
        timeline = injector.timeline()
        assert timeline[0]["kind"] == "crash"
        assert "hints_replayed" not in timeline[0]
        recover = timeline[1]
        assert recover["kind"] == "recover"
        assert recover["hints_replayed"] > 0
        assert recover["keys_copied"] >= recover["hints_replayed"]
        assert recover["bytes_copied"] > 0
        assert recover == fault_event_payload(injector.events[1])


class TestIdempotenceEdges:
    def test_double_crash_is_a_noop(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(FaultSpec(time=0.0, kind="crash", node_id=1))
        event = injector.apply(FaultSpec(time=1.0, kind="crash", node_id=1))
        assert not cluster.node(1).up
        assert event.up_nodes_after == 3
        # The cluster still serves through the surviving quorum.
        assert cluster.get("data", b"k0").value == b"v"

    def test_recover_of_already_up_node_is_safe(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        event = injector.apply(FaultSpec(time=1.0, kind="recover", node_id=2))
        assert cluster.node(2).up
        assert event.repair is not None
        assert event.repair.hints_replayed == 0
        assert event.up_nodes_after == 4

    def test_slow_on_crashed_node_applies_and_survives_recovery(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(FaultSpec(time=0.0, kind="crash", node_id=1))
        injector.apply(
            FaultSpec(time=1.0, kind="slow", node_id=1, factor=6.0)
        )
        assert cluster.node(1).speed_factor == 6.0
        injector.apply(FaultSpec(time=2.0, kind="recover", node_id=1))
        # Degradation is orthogonal to liveness: the node comes back slow.
        assert cluster.node(1).up
        assert cluster.node(1).speed_factor == 6.0
        injector.apply(FaultSpec(time=3.0, kind="restore", node_id=1))
        assert cluster.node(1).speed_factor == 1.0

    def test_crash_during_hint_replay_rebuilds_hints(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(FaultSpec(time=0.0, kind="crash", node_id=2))
        for index in range(20):
            cluster.put("data", f"h{index}".encode(), b"x")
        backlog = cluster.replication.hint_count(2)
        assert backlog > 0
        # The node recovers (hints replay) and immediately crashes again;
        # writes during the second outage hint afresh — nothing of the
        # first batch leaks or double-applies.
        injector.apply(FaultSpec(time=1.0, kind="recover", node_id=2))
        assert cluster.replication.hint_count(2) == 0
        injector.apply(FaultSpec(time=1.1, kind="crash", node_id=2))
        for index in range(5):
            cluster.put("data", f"second{index}".encode(), b"y")
        second_backlog = cluster.replication.hint_count(2)
        assert 0 < second_backlog <= 5
        event = injector.apply(FaultSpec(time=2.0, kind="recover", node_id=2))
        assert event.repair is not None
        assert event.repair.hints_replayed == second_backlog
        assert cluster.replication.hint_count(2) == 0
        for index in range(20):
            assert cluster.get("data", f"h{index}".encode()).value == b"x"
        for index in range(5):
            assert cluster.get("data", f"second{index}".encode()).value == b"y"
