"""Fault-injector tests: scheduled crash / recover / slow-node events."""

import pytest

from repro.kvstore import ClusterConfig, KeyValueCluster
from repro.replication import (
    FaultInjector,
    FaultSpec,
    crash_recover_timeline,
)
from repro.serving import Simulation


def cluster_with_data() -> KeyValueCluster:
    cluster = KeyValueCluster(
        ClusterConfig(storage_nodes=4, replication=3, read_quorum=2,
                      write_quorum=2, seed=1)
    )
    cluster.create_namespace("data")
    for index in range(20):
        cluster.load("data", f"k{index}".encode(), b"v")
    return cluster


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="explode", node_id=0)

    def test_slow_needs_factor_above_one(self):
        with pytest.raises(ValueError):
            FaultSpec(time=1.0, kind="slow", node_id=0, factor=0.5)

    def test_timeline_helper_orders_events(self):
        specs = crash_recover_timeline(2, 5.0, 9.0)
        assert [(s.kind, s.time) for s in specs] == [("crash", 5.0),
                                                    ("recover", 9.0)]
        with pytest.raises(ValueError):
            crash_recover_timeline(2, 9.0, 5.0)


class TestFaultInjector:
    def test_scheduled_crash_and_recover_through_kernel(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        sim = Simulation()
        injector.schedule(sim, crash_recover_timeline(1, 2.0, 6.0))

        sim.run(until=3.0)
        assert not cluster.node(1).up
        sim.run(until=10.0)
        assert cluster.node(1).up

        kinds = [(event.time, event.kind) for event in injector.events]
        assert kinds == [(2.0, "crash"), (6.0, "recover")]
        recover = injector.events[-1]
        assert recover.repair is not None
        assert recover.up_nodes_after == 4
        assert injector.total_repair().keys_examined >= 0
        assert len(injector.timeline()) == 2

    def test_fault_for_removed_node_is_skipped_not_fatal(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        cluster.remove_node()  # node 3 is gone; a stale fault spec remains
        event = injector.apply(FaultSpec(time=1.0, kind="recover", node_id=3))
        assert "skipped" in event.detail
        assert [e.kind for e in injector.events] == ["recover"]

    def test_slow_node_degrades_and_restores(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        node = cluster.node(0)

        injector.apply(FaultSpec(time=0.0, kind="slow", node_id=0, factor=8.0))
        assert node.speed_factor == 8.0
        assert node.effective_capacity_ops_per_second == pytest.approx(
            node.capacity_ops_per_second / 8.0
        )
        slowed = sum(node.charge_read(1, 0, 0.0) for _ in range(100))
        injector.apply(FaultSpec(time=1.0, kind="restore", node_id=0))
        assert node.speed_factor == 1.0
        healthy = sum(node.charge_read(1, 0, 0.0) for _ in range(100))
        assert slowed > healthy * 3

    def test_writes_during_crash_become_hints_then_replay(self):
        cluster = cluster_with_data()
        injector = FaultInjector(cluster)
        injector.apply(FaultSpec(time=0.0, kind="crash", node_id=2))
        for index in range(30):
            cluster.put("data", f"h{index}".encode(), b"x")
        assert cluster.replication.hint_count(2) > 0
        event = injector.apply(FaultSpec(time=5.0, kind="recover", node_id=2))
        assert event.repair is not None
        assert event.repair.hints_replayed == cluster.replication.hint_count(2) \
            or event.repair.hints_replayed > 0
        assert cluster.replication.hint_count(2) == 0
