"""Cluster-level storage-engine tests: dict/LSM parity and crash recovery.

The acceptance bar of the storage-engine PR:

* the dict and LSM engines are observationally identical through the
  cluster surface — values, charged latencies, serving node ids, keys
  touched, and every non-engine metric match operation for operation;
* acknowledged writes are never lost across a durable crash+recover, and
  the repair traffic (hint replay, anti-entropy copies) matches the
  in-memory arm exactly, because disk recovery restores records at their
  pre-crash sequence numbers and re-pushing them is a newest-wins no-op.
"""

import random
from typing import Dict, List, Tuple

import pytest

from repro.kvstore import ClusterConfig, KeyValueCluster


def _make_cluster(engine: str, tmp_path, **engine_options) -> KeyValueCluster:
    options = dict(engine_options)
    if engine == "lsm":
        options.setdefault("data_dir", str(tmp_path / "lsm"))
        options.setdefault("memtable_budget_bytes", 4096)
    return KeyValueCluster(
        ClusterConfig(
            storage_nodes=5,
            replication=3,
            read_quorum=2,
            write_quorum=2,
            seed=11,
            storage_engine=engine,
            engine_options=options or None,
        )
    )


def _mirrored_run(cluster: KeyValueCluster, crash_at: int, recover_at: int):
    """One deterministic mixed workload with a mid-run crash+recover."""
    cluster.create_namespace("data")
    rng = random.Random(77)
    observations: List[Tuple] = []
    for step in range(700):
        if step == crash_at:
            cluster.crash_node(1)
        if step == recover_at:
            report = cluster.recover_node(1)
            observations.append(
                ("repair", report.hints_replayed, report.keys_copied)
            )
        key = f"k{rng.randrange(150):03d}".encode()
        action = rng.random()
        if action < 0.5:
            result = cluster.put("data", key, f"v{step}".encode())
        elif action < 0.7:
            result = cluster.get("data", key)
        elif action < 0.8:
            result = cluster.delete("data", key)
        else:
            end = key + b"\xff"
            result = cluster.get_range("data", key, end, limit=10)
        observations.append(
            (
                result.value,
                round(result.latency_seconds, 12),
                result.node_id,
                result.keys_touched,
                result.hinted,
            )
        )
    final = {
        key: value for key, value in cluster.iter_namespace("data")
    }
    metrics = {
        name: value
        for name, value in cluster.metrics.counters().items()
        if not name.startswith("engine.")
    }
    return observations, final, metrics


class TestDictLsmParity:
    def test_mirrored_workload_is_bit_identical(self, tmp_path):
        dict_cluster = _make_cluster("dict", tmp_path)
        lsm_cluster = _make_cluster("lsm", tmp_path)
        try:
            dict_run = _mirrored_run(dict_cluster, crash_at=250, recover_at=400)
            lsm_run = _mirrored_run(lsm_cluster, crash_at=250, recover_at=400)
            assert dict_run[0] == lsm_run[0]  # values/latencies/nodes/ops
            assert dict_run[1] == lsm_run[1]  # final contents
            assert dict_run[2] == lsm_run[2]  # non-engine metrics
        finally:
            lsm_cluster.close()

    def test_lsm_recovery_actually_restored_from_disk(self, tmp_path):
        cluster = _make_cluster("lsm", tmp_path)
        try:
            _mirrored_run(cluster, crash_at=250, recover_at=400)
            info = cluster.last_engine_recovery
            assert info is not None
            assert info.segments_loaded + info.wal_records_replayed > 0
            counters = cluster.metrics.counters()
            assert counters["engine.recoveries"] == 1
        finally:
            cluster.close()


class TestAckedWritesNeverLost:
    def test_every_acknowledged_write_survives_crash_recover(self, tmp_path):
        cluster = _make_cluster("lsm", tmp_path)
        try:
            cluster.create_namespace("data")
            acked: Dict[bytes, bytes] = {}
            for index in range(200):
                key = f"k{index:03d}".encode()
                value = f"v{index}".encode()
                cluster.put("data", key, value)
                acked[key] = value
            cluster.crash_node(2)
            # Writes continue while the node is down: its replicas get hints.
            for index in range(200, 320):
                key = f"k{index:03d}".encode()
                value = f"v{index}".encode()
                cluster.put("data", key, value)
                acked[key] = value
            cluster.recover_node(2)
            # Disk recovery + hint replay + anti-entropy together must
            # reproduce the full acknowledged history.
            assert dict(cluster.iter_namespace("data")) == acked
            for key, value in acked.items():
                assert cluster.get("data", key).value == value
        finally:
            cluster.close()

    def test_hint_replay_oracle_matches_engine_arm(self, tmp_path):
        """Hints replayed on recovery are identical dict-vs-lsm (same delta)."""
        results = {}
        for engine in ("dict", "lsm"):
            cluster = _make_cluster(engine, tmp_path)
            try:
                cluster.create_namespace("data")
                for index in range(100):
                    cluster.put("data", f"k{index:03d}".encode(), b"v")
                cluster.crash_node(0)
                for index in range(40):
                    cluster.put("data", f"x{index:03d}".encode(), b"w")
                report = cluster.recover_node(0)
                results[engine] = (
                    report.hints_replayed,
                    report.keys_copied,
                    report.keys_examined,
                    cluster.metrics.counters().get(
                        "replication.hints_replayed", 0
                    ),
                )
            finally:
                cluster.close()
        assert results["dict"] == results["lsm"]

    def test_double_crash_recover_cycles(self, tmp_path):
        cluster = _make_cluster("lsm", tmp_path)
        try:
            cluster.create_namespace("data")
            expected = {}
            for cycle in range(3):
                for index in range(60):
                    key = f"c{cycle}-k{index:02d}".encode()
                    cluster.put("data", key, f"v{cycle}".encode())
                    expected[key] = f"v{cycle}".encode()
                cluster.crash_node(cycle % 5)
                cluster.recover_node(cycle % 5)
            assert dict(cluster.iter_namespace("data")) == expected
            assert cluster.metrics.counters()["engine.recoveries"] == 3
        finally:
            cluster.close()


class TestTopologyWithEngines:
    def test_add_node_gets_its_own_engine(self, tmp_path):
        cluster = _make_cluster("lsm", tmp_path)
        try:
            cluster.create_namespace("data")
            for index in range(80):
                cluster.put("data", f"k{index:03d}".encode(), b"v")
            node = cluster.add_node()
            assert cluster.engine(node.node_id).durable
            assert dict(cluster.iter_namespace("data")) == {
                f"k{index:03d}".encode(): b"v" for index in range(80)
            }
        finally:
            cluster.close()

    def test_remove_node_destroys_its_disk_state(self, tmp_path):
        import os

        cluster = _make_cluster("lsm", tmp_path)
        try:
            cluster.create_namespace("data")
            for index in range(80):
                cluster.put("data", f"k{index:03d}".encode(), b"v")
            cluster.flush_storage()
            departing = cluster.nodes[-1].node_id
            data_dir = cluster.engine(departing).data_dir
            cluster.remove_node()
            assert not os.path.exists(data_dir)
            assert departing not in cluster.engines
        finally:
            cluster.close()


class TestBudgetedBulkLoad:
    def test_bulk_load_matches_per_record_load(self, tmp_path):
        rng = random.Random(13)
        rows = [
            (f"k{rng.randrange(400):04d}".encode(), f"v{i}".encode())
            for i in range(1500)
        ]
        reference = _make_cluster("dict", tmp_path)
        reference.create_namespace("data")
        for key, value in rows:
            reference.load("data", key, value)

        loaded = _make_cluster("lsm", tmp_path)
        try:
            loaded.create_namespace("data")
            loaded.bulk_load_namespace(
                "data", iter(rows), memory_budget_bytes=4096
            )
            assert dict(loaded.iter_namespace("data")) == dict(
                reference.iter_namespace("data")
            )
        finally:
            loaded.close()

    def test_bulk_load_hints_down_nodes(self, tmp_path):
        cluster = _make_cluster("lsm", tmp_path)
        try:
            cluster.create_namespace("data")
            cluster.crash_node(3)
            rows = [(f"k{i:03d}".encode(), b"v") for i in range(120)]
            cluster.bulk_load_namespace("data", iter(rows))
            assert cluster.metrics.counters()["replication.hints_added"] > 0
            cluster.recover_node(3)
            assert dict(cluster.iter_namespace("data")) == dict(rows)
        finally:
            cluster.close()
