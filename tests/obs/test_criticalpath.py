"""Tests for critical-path analysis (exclusive segment attribution)."""

from __future__ import annotations

import pytest

from repro.obs.criticalpath import (
    SEGMENT_CLASSES,
    CriticalPathAggregator,
    analyze_trace,
    query_class_of,
)
from repro.obs.trace import Span


def span(name, kind, start, end, parent=None, **attributes):
    node = Span(name, kind, start, attributes=dict(attributes))
    node.end = end
    if parent is not None:
        parent.children.append(node)
    return node


def assert_exact_partition(breakdown):
    """Segment seconds sum to the root duration, shares to 1.0."""
    assert sum(breakdown.segments.values()) == pytest.approx(
        breakdown.duration_seconds, abs=1e-9
    )
    assert sum(breakdown.shares.values()) == pytest.approx(1.0, abs=1e-6)


class TestLeafKinds:
    def test_zero_storage_spans_is_all_client_compute(self):
        root = span("query", "query", 0.0, 5.0, sql="SELECT 1")
        span("operator", "operator", 1.0, 2.0, parent=root)
        breakdown = analyze_trace(root)
        assert breakdown.segments["client_compute"] == pytest.approx(5.0)
        assert breakdown.dominant == "client_compute"
        assert_exact_partition(breakdown)

    def test_zero_duration_trace_shares_are_client_compute(self):
        root = span("query", "query", 3.0, 3.0)
        breakdown = analyze_trace(root)
        assert breakdown.shares["client_compute"] == 1.0
        assert sum(breakdown.shares.values()) == pytest.approx(1.0)

    def test_open_span_is_rejected(self):
        root = Span("query", "query", 0.0)
        with pytest.raises(ValueError):
            analyze_trace(root)

    def test_rpc_queue_wait_is_carved_out(self):
        root = span("query", "query", 0.0, 1.0)
        span("get", "rpc", 0.0, 1.0, parent=root, queue_wait_seconds=0.25)
        breakdown = analyze_trace(root)
        assert breakdown.segments["queue_wait"] == pytest.approx(0.25)
        assert breakdown.segments["rpc_service"] == pytest.approx(0.75)
        assert_exact_partition(breakdown)

    def test_rpc_timeout_and_coalesced_charge_storage(self):
        root = span("query", "query", 0.0, 4.0)
        span("deadline", "rpc-timeout", 0.0, 1.0, parent=root)
        span("wait", "coalesced", 1.0, 3.0, parent=root)
        breakdown = analyze_trace(root)
        assert breakdown.segments["rpc_service"] == pytest.approx(3.0)
        assert breakdown.segments["client_compute"] == pytest.approx(1.0)
        assert_exact_partition(breakdown)

    def test_view_maintenance_subtree_charged_whole(self):
        root = span("put", "write", 0.0, 2.0)
        view = span("views", "view-maintenance", 0.5, 1.5, parent=root)
        # Inner RPCs are *caused by* the view; they must not be re-split.
        span("delta", "rpc", 0.5, 1.5, parent=view, queue_wait_seconds=0.4)
        breakdown = analyze_trace(root)
        assert breakdown.segments["view_maintenance"] == pytest.approx(1.0)
        assert breakdown.segments["queue_wait"] == 0.0
        assert_exact_partition(breakdown)


class TestOverlapResolution:
    def test_gather_switches_siblings_mid_window(self):
        # Two gather branches on scratch clocks: A [0, 4], B [2, 8].  The
        # dominant child (furthest end) owns each stretch, so the critical
        # path runs A for [0, 2] then switches to B for [2, 8].
        root = span("query", "query", 0.0, 10.0)
        gather = span("gather", "gather", 0.0, 8.0, parent=root)
        span("branch-a", "rpc", 0.0, 4.0, parent=gather)
        span("branch-b", "rpc", 2.0, 8.0, parent=gather)
        breakdown = analyze_trace(root)
        # A contributes only its dominant prefix, scaled: 2s of a 4s RPC.
        # B contributes its whole 6s.  The root residual [8, 10] is client.
        assert breakdown.segments["rpc_service"] == pytest.approx(8.0)
        assert breakdown.segments["client_compute"] == pytest.approx(2.0)
        assert_exact_partition(breakdown)

    def test_partial_rpc_window_scales_attribute_split(self):
        # A's [2, 4] tail is overlapped by the longer B, so A keeps only
        # half its window — and therefore half its queue-wait carve-out.
        root = span("query", "query", 0.0, 6.0)
        span("a", "rpc", 0.0, 4.0, parent=root, queue_wait_seconds=2.0)
        span("b", "rpc", 2.0, 6.0, parent=root)
        breakdown = analyze_trace(root)
        assert breakdown.segments["queue_wait"] == pytest.approx(1.0)
        assert breakdown.segments["rpc_service"] == pytest.approx(5.0)
        assert_exact_partition(breakdown)

    def test_retry_span_overlapping_a_hedge(self):
        # A resilience backoff [2, 4] overlaps a hedged RPC [3, 9]; the
        # RPC extends further so it wins the contested [3, 4] stretch.
        root = span("query", "query", 0.0, 10.0)
        span("backoff", "resilience", 2.0, 4.0, parent=root)
        span(
            "read", "rpc", 3.0, 9.0, parent=root,
            hedged=True, hedge_delay_seconds=2.0,
        )
        breakdown = analyze_trace(root)
        assert breakdown.segments["retry_backoff"] == pytest.approx(1.0)
        # 6s RPC with a 2s hedge delay: 4s of two-in-flight overlap.
        assert breakdown.segments["hedge_overlap"] == pytest.approx(4.0)
        assert breakdown.segments["rpc_service"] == pytest.approx(2.0)
        assert breakdown.segments["client_compute"] == pytest.approx(3.0)
        assert_exact_partition(breakdown)

    def test_coalesced_point_reads_exclude_logical_children(self):
        # One RPC span carrying many per-key logical-op children is still
        # one RPC's worth of wall time: the accounting children describe
        # work, not time, and must not inflate (or re-partition) the span.
        root = span("query", "query", 0.0, 1.0)
        rpc = span(
            "multi_get", "rpc", 0.0, 1.0, parent=root,
            queue_wait_seconds=0.2,
        )
        for index in range(40):
            span(f"key-{index}", "logical-op", 0.0, 1.0, parent=rpc)
        breakdown = analyze_trace(root)
        assert breakdown.segments["queue_wait"] == pytest.approx(0.2)
        assert breakdown.segments["rpc_service"] == pytest.approx(0.8)
        assert_exact_partition(breakdown)

    def test_sequential_children_with_gaps(self):
        # The disjoint fast path: pipeline of operators, gaps are client.
        root = span("query", "query", 0.0, 10.0)
        span("scan", "rpc", 1.0, 3.0, parent=root)
        span("deref", "rpc", 4.0, 7.0, parent=root)
        breakdown = analyze_trace(root)
        assert breakdown.segments["rpc_service"] == pytest.approx(5.0)
        assert breakdown.segments["client_compute"] == pytest.approx(5.0)
        assert_exact_partition(breakdown)

    def test_deep_mixed_tree_is_an_exact_partition(self):
        root = span("query", "query", 0.0, 20.0, sql="SELECT  *  FROM t")
        gather = span("gather", "gather", 1.0, 15.0, parent=root)
        a = span("branch-a", "branch", 1.0, 9.0, parent=gather)
        span("read", "rpc", 1.0, 5.0, parent=a, queue_wait_seconds=1.0)
        span("backoff", "resilience", 5.0, 6.0, parent=a)
        span("retry", "rpc", 6.0, 9.0, parent=a)
        b = span("branch-b", "branch", 1.0, 15.0, parent=gather)
        span(
            "hedged", "rpc", 2.0, 14.0, parent=b,
            hedged=True, hedge_delay_seconds=5.0,
        )
        span("deadline", "rpc-timeout", 15.0, 17.0, parent=root)
        breakdown = analyze_trace(root)
        assert_exact_partition(breakdown)
        assert breakdown.query_class == "SELECT * FROM t"

    def test_clamped_child_extending_past_parent(self):
        # A scratch-clock child may outlive the window it is swept under;
        # the partition must still be exact.
        root = span("query", "query", 0.0, 4.0)
        span("read", "rpc", 1.0, 6.0, parent=root)
        breakdown = analyze_trace(root)
        assert breakdown.segments["rpc_service"] == pytest.approx(3.0)
        assert breakdown.segments["client_compute"] == pytest.approx(1.0)
        assert_exact_partition(breakdown)


class TestQueryClass:
    def test_sql_attribute_is_whitespace_normalised(self):
        root = span("query", "query", 0.0, 1.0, sql="SELECT *\n  FROM   t")
        assert query_class_of(root) == "SELECT * FROM t"

    def test_falls_back_to_span_name(self):
        root = span("put users", "write", 0.0, 1.0)
        assert query_class_of(root) == "put users"


class TestAggregator:
    def _breakdown(self, sql, start, end, rpc_end=None):
        root = span("query", "query", start, end, sql=sql)
        span("read", "rpc", start, rpc_end if rpc_end is not None else end,
             parent=root)
        return analyze_trace(root)

    def test_mean_shares_are_time_weighted(self):
        aggregator = CriticalPathAggregator()
        aggregator.observe(self._breakdown("Q", 0.0, 1.0))
        aggregator.observe(self._breakdown("Q", 0.0, 3.0, rpc_end=0.0))
        profile = aggregator.profile("Q")
        assert profile is not None
        assert profile.traces == 2
        # 1s rpc + 3s client over 4s total.
        assert profile.mean_shares["rpc_service"] == pytest.approx(0.25)
        assert profile.mean_shares["client_compute"] == pytest.approx(0.75)
        assert sum(profile.mean_shares.values()) == pytest.approx(1.0)

    def test_tail_profile_keeps_only_the_slowest(self):
        aggregator = CriticalPathAggregator(tail_k=1)
        aggregator.observe(self._breakdown("Q", 0.0, 1.0))  # all rpc
        aggregator.observe(self._breakdown("Q", 0.0, 5.0, rpc_end=0.0))
        profile = aggregator.profile("Q")
        assert profile.tail_traces == 1
        # The 5s all-client trace is the tail sample.
        assert profile.tail_dominant == "client_compute"
        assert profile.tail_shares["client_compute"] == pytest.approx(1.0)

    def test_class_cap_counts_dropped(self):
        aggregator = CriticalPathAggregator(max_classes=1)
        aggregator.observe(self._breakdown("A", 0.0, 1.0))
        aggregator.observe(self._breakdown("B", 0.0, 1.0))
        assert aggregator.observed == 2
        assert aggregator.dropped_classes == 1
        assert [p.query_class for p in aggregator.profiles()] == ["A"]

    def test_all_segment_classes_always_present(self):
        breakdown = self._breakdown("Q", 0.0, 1.0)
        assert set(breakdown.segments) == set(SEGMENT_CLASSES)
        assert set(breakdown.shares) == set(SEGMENT_CLASSES)
