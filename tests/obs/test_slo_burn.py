"""Unit tests for multi-window SLO burn-rate alerting."""

from __future__ import annotations

import pytest

from repro.obs.slo import DEFAULT_RULES, BurnRateAlerter, BurnRateRule, SLOAlert
from repro.obs.telemetry import SLO_GOOD_METRIC, SLO_TOTAL_METRIC
from repro.obs.timeseries import TimeSeriesStore
from repro.prediction.slo import ServiceLevelObjective


def make_slo(quantile=0.9):
    return ServiceLevelObjective(
        quantile=quantile, latency_seconds=0.1, interval_seconds=1.0
    )


def scrape(store, t, total, good):
    """Record one scrape tick of the cumulative SLO counters."""
    store.record(SLO_TOTAL_METRIC, float(total), t=t)
    store.record(SLO_GOOD_METRIC, float(good), t=t)


class TestBurnRateMath:
    def test_idle_store_burns_nothing(self):
        store = TimeSeriesStore()
        alerter = BurnRateAlerter(store, make_slo())
        assert alerter.burn_rate(10.0, 5.0) == 0.0
        assert alerter.evaluate(10.0) == []

    def test_on_plan_burn_is_one(self):
        # Exactly the budgeted bad fraction (10% at quantile 0.9).
        store = TimeSeriesStore()
        scrape(store, 0.0, total=0, good=0)
        scrape(store, 10.0, total=100, good=90)
        alerter = BurnRateAlerter(store, make_slo(0.9))
        assert alerter.burn_rate(10.0, 10.0) == pytest.approx(1.0)

    def test_all_bad_burns_at_inverse_budget(self):
        store = TimeSeriesStore()
        scrape(store, 0.0, total=0, good=0)
        scrape(store, 10.0, total=100, good=0)
        alerter = BurnRateAlerter(store, make_slo(0.9))
        assert alerter.burn_rate(10.0, 10.0) == pytest.approx(10.0)

    def test_error_budget(self):
        store = TimeSeriesStore()
        assert BurnRateAlerter(store, make_slo(0.99)).error_budget == pytest.approx(0.01)


class TestFiringAndClearing:
    def rule(self):
        return BurnRateRule(fast_seconds=2.0, slow_seconds=6.0, threshold=5.0)

    def test_fires_when_both_windows_exceed(self):
        store = TimeSeriesStore()
        alerter = BurnRateAlerter(
            store, make_slo(0.9), rules=[self.rule()], min_events=10
        )
        # Healthy traffic for 6 s, then everything goes bad.
        total = good = 0
        for t in range(7):
            scrape(store, float(t), total, good)
            total += 20
            good += 20
        for t in range(7, 13):
            scrape(store, float(t), total, good)
            total += 20  # all new requests miss the SLO
        fired = alerter.evaluate(12.0)
        assert len(fired) == 1
        alert = fired[0]
        assert alert.active
        assert alert.fast_burn >= 5.0 and alert.slow_burn >= 5.0
        assert alerter.active_alerts == [alert]

    def test_fast_spike_alone_does_not_fire(self):
        # Slow window still healthy: a 2-second blip must not page.
        store = TimeSeriesStore()
        alerter = BurnRateAlerter(
            store, make_slo(0.9), rules=[self.rule()], min_events=10
        )
        total = good = 0
        for t in range(11):
            scrape(store, float(t), total, good)
            bad_tick = t >= 9
            total += 20
            good += 0 if bad_tick else 20
        assert alerter.burn_rate(10.0, 2.0) >= 5.0
        assert alerter.burn_rate(10.0, 6.0) < 5.0
        assert alerter.evaluate(10.0) == []

    def test_min_events_gates_cold_start(self):
        store = TimeSeriesStore()
        alerter = BurnRateAlerter(
            store, make_slo(0.9), rules=[self.rule()], min_events=10
        )
        # 100% bad, but only 4 events in the fast window.
        scrape(store, 0.0, total=0, good=0)
        scrape(store, 6.0, total=4, good=0)
        assert alerter.evaluate(6.0) == []
        assert alerter.alerts == []

    def test_clears_when_fast_window_recovers(self):
        store = TimeSeriesStore()
        alerter = BurnRateAlerter(
            store, make_slo(0.9), rules=[self.rule()], min_events=5
        )
        total = good = 0
        for t in range(7):
            scrape(store, float(t), total, good)
            total += 20
        (alert,) = alerter.evaluate(6.0)
        assert alert.active
        # Recovery: new requests are all good; the fast window forgets the
        # incident within 2 s while the slow window still remembers it.
        for t in range(7, 10):
            scrape(store, float(t), total, good)
            total += 20
            good = total
        scrape(store, 10.0, total, good)
        assert alerter.evaluate(10.0) == []  # clearing is not a new firing
        assert not alert.active
        assert alert.cleared_at == 10.0
        assert alert.duration_seconds == pytest.approx(4.0)
        assert alerter.active_alerts == []
        assert alerter.fired_and_cleared() == [alert]
        assert "cleared" in alert.describe()

    def test_peak_burn_tracked_while_active(self):
        store = TimeSeriesStore()
        alerter = BurnRateAlerter(
            store, make_slo(0.9), rules=[self.rule()], min_events=5
        )
        total = good = 0
        for t in range(13):
            scrape(store, float(t), total, good)
            total += 20  # bad from the first tick
        (alert,) = alerter.evaluate(6.0)
        first_fast = alert.fast_burn
        alerter.evaluate(12.0)
        assert alert.peak_fast_burn >= first_fast


class TestSinkAndPreArm:
    class FakeAdmission:
        def __init__(self):
            self.armed = []

        def pre_arm(self, probability):
            self.armed.append(probability)

    def test_sink_and_admission_called_on_fire(self):
        store = TimeSeriesStore()
        seen = []
        admission = self.FakeAdmission()
        alerter = BurnRateAlerter(
            store,
            make_slo(0.9),
            rules=[BurnRateRule(2.0, 4.0, 2.0)],
            min_events=5,
            sink=seen.append,
            admission=admission,
            pre_arm_probability=0.25,
        )
        total = 0
        for t in range(6):
            scrape(store, float(t), total, 0)
            total += 10
        (alert,) = alerter.evaluate(5.0)
        assert seen == [alert]
        assert admission.armed == [0.25]
        # Still-active alert does not re-arm every tick.
        alerter.evaluate(5.5)
        assert admission.armed == [0.25]


class TestRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(fast_seconds=0.0, slow_seconds=5.0, threshold=2.0)
        with pytest.raises(ValueError):
            BurnRateRule(fast_seconds=6.0, slow_seconds=5.0, threshold=2.0)
        with pytest.raises(ValueError):
            BurnRateRule(fast_seconds=1.0, slow_seconds=5.0, threshold=0.0)

    def test_rule_name(self):
        assert BurnRateRule(2.0, 10.0, 10.0).name == "burn[2s/10s]x10"

    def test_default_ladder_shape(self):
        assert len(DEFAULT_RULES) >= 2
        fast, slow = DEFAULT_RULES[0], DEFAULT_RULES[1]
        # The fast pair pages on sharper burn than the slow pair.
        assert fast.threshold > slow.threshold
        assert fast.fast_seconds < slow.fast_seconds

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            BurnRateAlerter(TimeSeriesStore(), make_slo(), rules=[])

    def test_alert_describe_active(self):
        alert = SLOAlert(
            rule=BurnRateRule(2.0, 6.0, 2.0),
            fired_at=3.0,
            fast_burn=4.0,
            slow_burn=3.0,
            peak_fast_burn=4.0,
        )
        text = alert.describe()
        assert "ACTIVE" in text and "burn[2s/6s]x2" in text
