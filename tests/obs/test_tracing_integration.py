"""End-to-end trace propagation: sessions, coalescing, failure attribution.

These tests pin the structural guarantees of the query-trace subsystem:

* gather branches become sibling ``branch`` spans under one ``gather`` root,
* duplicate point reads coalesced inside a gather window show up as a
  *single* RPC span with one logical-op child per requesting branch,
* LAZY and PARALLEL execution of the same query differ visibly in the
  trace (round structure and simulated latency),
* work a write *triggers* — hinted handoff, read repair, view-maintenance
  deltas — is attributed to the triggering operation's span tree,
* ``EXPLAIN ANALYZE`` renders per-operator observed operations, the static
  bound slice, and (with a trained model) predicted-vs-observed latency.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.execution.context import ExecutionStrategy
from repro.kvstore.cluster import KeyValueCluster
from repro.obs.explain import render_span_tree
from repro.prediction import (
    OperatorModelTrainer,
    QueryLatencyModel,
    TrainingConfig,
)
from repro.workloads.tpcw.queries import NEW_PRODUCTS_WI

USERS_BY_NAME = "SELECT * FROM users WHERE username = <u>"
RECENT_THOUGHTS = (
    "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 10"
)

TINY_TRAINING = TrainingConfig(
    alphas=(1, 10, 100),
    join_cardinalities=(1, 10),
    tuple_sizes=(40,),
    intervals=1,
    samples_per_interval=3,
    oversample_factor=10,
    max_samples_per_interval=30,
)

SALES_DDL = """
CREATE TABLE sales (
    sale_id INT, shop VARCHAR(16), product VARCHAR(16), amount INT,
    PRIMARY KEY (sale_id)
)
"""

SALES_VIEW = """
CREATE MATERIALIZED VIEW product_totals AS
SELECT shop, product, SUM(amount) AS total
FROM sales
GROUP BY shop, product
ORDER BY total DESC LIMIT 3
"""


def quorum_db(seed: int = 31) -> PiqlDatabase:
    """3 nodes, 3-fold replication, R=W=2: every node replicates every key."""
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=3,
            replication=3,
            read_quorum=2,
            write_quorum=2,
            seed=seed,
        )
    )
    db.execute_ddl(SALES_DDL)
    return db


class TestGatherTracing:
    def test_branches_are_sibling_spans_under_one_gather_root(self, scadr_db):
        tracer = scadr_db.enable_tracing()
        session = scadr_db.session()
        f1 = session.submit(USERS_BY_NAME, u="alice")
        f2 = session.submit(RECENT_THOUGHTS, u="bob")
        session.gather(f1, f2)

        root = tracer.last_root()
        assert root is not None and root.kind == "gather"
        assert root.attributes["branches"] == 2
        branches = [child for child in root.children if child.kind == "branch"]
        assert len(branches) == 2
        assert {branch.attributes["label"] for branch in branches} == {
            f1.label, f2.label
        }
        # Every branch starts at the same simulated instant...
        assert all(branch.start == root.start for branch in branches)
        # ...and contains the nested query span it executed.
        for branch in branches:
            queries = branch.find("query")
            assert len(queries) == 1
            assert queries[0].attributes["rows"] >= 1
        # The gather charges the max of the branches, and the span shows it.
        assert root.duration == pytest.approx(
            max(branch.duration for branch in branches)
        )

    def test_coalesced_read_is_one_rpc_with_logical_children(self, scadr_db):
        tracer = scadr_db.enable_tracing()
        session = scadr_db.session()
        f1 = session.submit(USERS_BY_NAME, u="alice")
        f2 = session.submit(USERS_BY_NAME, u="alice")
        c1, c2 = session.gather(f1, f2)
        assert c1.rows == c2.rows

        root = tracer.last_root()
        shared = [
            span
            for span in root.walk()
            if span.kind == "rpc"
            and len([c for c in span.children if c.kind == "logical-op"]) >= 2
        ]
        # Exactly one physical fetch served both branches.
        assert len(shared) == 1
        flags = [
            child.attributes["coalesced"]
            for child in shared[0].children
            if child.kind == "logical-op"
        ]
        assert sorted(flags) == [False, True]
        # The client counted the saved read too.
        assert scadr_db.client.stats.coalesced_reads >= 1

    def test_coalesced_reads_reported_on_client_stats(self, scadr_db):
        scadr_db.enable_tracing()
        session = scadr_db.session()
        futures = [
            session.submit(USERS_BY_NAME, u="alice") for _ in range(3)
        ]
        session.gather(*futures)
        assert scadr_db.client.stats.coalesced_reads >= 2


class TestStrategyTracing:
    def test_lazy_vs_parallel_round_structure(self, scadr_db, thoughtstream_sql):
        tracer = scadr_db.enable_tracing()
        prepared = scadr_db.prepare(thoughtstream_sql)

        prepared.execute({"uname": "alice"}, strategy=ExecutionStrategy.PARALLEL)
        parallel_root = tracer.last_root()
        prepared.execute({"uname": "alice"}, strategy=ExecutionStrategy.LAZY)
        lazy_root = tracer.last_root()

        assert parallel_root.attributes["strategy"] == "parallel"
        assert lazy_root.attributes["strategy"] == "lazy"
        # Same logical work...
        assert lazy_root.attributes["rows"] == parallel_root.attributes["rows"]
        # ...but LAZY dereferences one row at a time: more physical round
        # trips, and the serial rounds are visible as a longer root span.
        assert len(lazy_root.find("rpc")) > len(parallel_root.find("rpc"))
        assert lazy_root.duration > parallel_root.duration

    def test_operator_spans_map_back_to_plan_nodes(self, scadr_db, thoughtstream_sql):
        tracer = scadr_db.enable_tracing()
        prepared = scadr_db.prepare(thoughtstream_sql)
        prepared.execute({"uname": "alice"})
        root = tracer.last_root()

        from repro.plans import physical as P

        plan_ids = {id(node) for node in P.walk(prepared.optimized.physical_plan)}
        operator_spans = root.find("operator")
        assert operator_spans
        for span in operator_spans:
            assert span.attributes["node_id"] in plan_ids


class TestWriteAttribution:
    def test_hinted_handoff_attributed_to_triggering_write(self):
        db = quorum_db()
        db.cluster.crash_node(0)
        tracer = db.enable_tracing()
        db.insert(
            "sales",
            {"sale_id": 1, "shop": "sf", "product": "apple", "amount": 5},
        )

        root = tracer.last_root()
        assert root is not None and root.kind == "write"
        assert root.attributes["operation"] == "insert"
        assert root.attributes["table"] == "sales"
        hinted = [
            span for span in root.find("rpc")
            if span.attributes.get("hinted", 0) > 0
        ]
        assert hinted, "the crashed replica's hints must appear in the trace"
        assert db.cluster.replication.hint_count(0) > 0

    def test_read_repair_attributed_to_triggering_read(self):
        db = quorum_db(seed=32)
        db.insert(
            "sales",
            {"sale_id": 1, "shop": "sf", "product": "apple", "amount": 5},
        )
        # Write while one replica is down, then bring it back WITHOUT the
        # recovery sync: it now holds a stale copy.
        db.cluster.crash_node(0)
        db.update(
            "sales",
            {"sale_id": 1, "shop": "sf", "product": "apple", "amount": 9},
        )
        db.cluster.node(0).mark_up()

        tracer = db.enable_tracing()
        repaired_spans = []
        for _ in range(12):
            result = db.execute("SELECT * FROM sales WHERE sale_id = <sid>", sid=1)
            assert result.rows[0]["amount"] == 9
            root = tracer.last_root()
            repaired_spans = [
                span for span in root.find("rpc")
                if span.attributes.get("repaired", 0) > 0
            ]
            if repaired_spans:
                break
        assert repaired_spans, "an R=2 read must eventually repair the stale copy"
        assert db.client.stats.metrics.value("client.read_repairs") > 0

    def test_view_maintenance_attributed_to_triggering_write(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=5))
        db.execute_ddl(SALES_DDL)
        db.create_materialized_view(SALES_VIEW)

        tracer = db.enable_tracing()
        db.insert(
            "sales",
            {"sale_id": 1, "shop": "sf", "product": "apple", "amount": 5},
        )
        root = tracer.last_root()
        assert root.kind == "write" and root.attributes["operation"] == "insert"
        maintenance = root.first("view-maintenance")
        assert maintenance is not None
        assert maintenance.attributes["view"] == "product_totals"
        # The delta's physical writes nest under the maintenance span.
        assert maintenance.find("rpc")

        db.delete("sales", [1])
        root = tracer.last_root()
        assert root.attributes["operation"] == "delete"
        retraction = root.first("view-maintenance")
        assert retraction is not None and retraction.find("rpc")


class TestExplainAnalyze:
    def test_multi_join_tpcw_query(self, loaded_tpcw):
        db, _ = loaded_tpcw
        text = db.explain_analyze(NEW_PRODUCTS_WI, {"subject": "COMPUTERS"})
        assert text.startswith("EXPLAIN ANALYZE")
        assert "(bound" in text, "a bounded query reports its static bound"
        annotated = [line for line in text.splitlines() if "ops=" in line]
        assert len(annotated) >= 2, "a join plan annotates several operators"
        assert any("bound<=" in line for line in annotated)
        assert all(" ms" in line for line in annotated)

    def test_latency_model_adds_predictions(self, loaded_tpcw):
        db, _ = loaded_tpcw
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=4, seed=3))
        store = OperatorModelTrainer(cluster, TINY_TRAINING).train()
        model = QueryLatencyModel(store, db.catalog)
        text = db.explain_analyze(
            NEW_PRODUCTS_WI, {"subject": "COMPUTERS"}, latency_model=model
        )
        assert any("pred " in line for line in text.splitlines() if "ops=" in line)

    def test_tracer_state_is_restored(self, loaded_tpcw):
        db, _ = loaded_tpcw
        assert db.tracer is None
        db.explain_analyze(NEW_PRODUCTS_WI, {"subject": "COMPUTERS"})
        assert db.tracer is None, "explain must not leave tracing enabled"
        db.enable_tracing()
        try:
            db.explain_analyze(NEW_PRODUCTS_WI, {"subject": "COMPUTERS"})
            assert db.tracer is not None
        finally:
            db.disable_tracing()

    def test_render_span_tree(self, scadr_db, thoughtstream_sql):
        tracer = scadr_db.enable_tracing()
        scadr_db.execute(thoughtstream_sql, uname="alice")
        text = render_span_tree(tracer.last_root())
        lines = text.splitlines()
        assert lines[0].startswith("query [query]")
        assert any(line.lstrip() != line for line in lines), "children indent"
        assert any("[rpc]" in line for line in lines)
        assert any("[operator]" in line for line in lines)
