"""Tests for trace export (JSON + Chrome trace-event format)."""

from __future__ import annotations

import json

from repro.obs.export import (
    span_to_dict,
    trace_to_chrome_events,
    trace_to_json,
    write_chrome_trace,
)
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0


def sample_trace():
    clock = FakeClock()
    tracer = Tracer(lambda: clock.now)
    root = tracer.start_span("query", "query", sql="SELECT 1")
    clock.now = 0.001
    rpc = tracer.record(
        "get", "rpc", 0.0005, 0.001, keys=1, payload=b"\x00bytes"
    )
    clock.now = 0.002
    tracer.end_span(root)
    return tracer, root, rpc


class TestSpanToDict:
    def test_structure(self):
        _, root, _ = sample_trace()
        data = span_to_dict(root)
        assert data["name"] == "query"
        assert data["kind"] == "query"
        assert data["start"] == 0.0
        assert data["end"] == 0.002
        assert data["duration"] == 0.002
        assert data["attributes"] == {"sql": "SELECT 1"}
        assert len(data["children"]) == 1
        assert data["children"][0]["name"] == "get"

    def test_bytes_attributes_become_json_safe(self):
        _, root, _ = sample_trace()
        text = trace_to_json([root])
        parsed = json.loads(text)  # must not raise on the bytes payload
        child = parsed["spans"][0]["children"][0]
        assert isinstance(child["attributes"]["payload"], str)


class TestChromeTrace:
    def test_complete_events(self):
        _, root, _ = sample_trace()
        events = trace_to_chrome_events([root])
        assert len(events) == 2
        query_event = events[0]
        assert query_event["ph"] == "X"
        assert query_event["cat"] == "query"
        assert query_event["ts"] == 0.0
        assert query_event["dur"] == 2000.0  # 0.002 s in microseconds
        assert events[1]["ts"] == 500.0

    def test_one_tid_per_root(self):
        _, root_a, _ = sample_trace()
        _, root_b, _ = sample_trace()
        events = trace_to_chrome_events([root_a, root_b])
        tids = {event["tid"] for event in events}
        assert tids == {0, 1}

    def test_open_spans_are_skipped(self):
        clock = FakeClock()
        tracer = Tracer(lambda: clock.now)
        tracer.start_span("open", "query")  # never ended
        assert trace_to_chrome_events(tracer.roots) == []

    def test_write_chrome_trace(self, tmp_path):
        _, root, _ = sample_trace()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), [root])
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert len(payload["traceEvents"]) == 2
