"""Tests for incident reports: fault windows, correlation, timeline."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.obs.flightrec import BreakerTransition, RetainedTrace
from repro.obs.incident import (
    LatencyForensics,
    build_incident_report,
    fault_windows,
)
from repro.obs.trace import Span


def event(time, kind, node_id=-1, detail=""):
    return SimpleNamespace(time=time, kind=kind, node_id=node_id, detail=detail)


def retained(trace_id, start, end, reasons=("slow",)):
    span = Span("query", "query", start, attributes={"sql": "Q"})
    span.end = end
    return RetainedTrace(
        trace_id=trace_id,
        span=span,
        query_class="Q",
        latency_seconds=end - start,
        retained_at=end,
        reasons=tuple(reasons),
        breakdown=None,
        approx_bytes=128,
    )


def alert(fired_at, cleared_at, name="burn-fast"):
    return SimpleNamespace(
        rule=SimpleNamespace(name=name),
        fired_at=fired_at,
        cleared_at=cleared_at,
        fast_burn=12.0,
        slow_burn=11.0,
        peak_fast_burn=14.0,
    )


class TestFaultWindows:
    def test_crash_recover_pairing(self):
        windows = fault_windows(
            [event(2.0, "crash", 1), event(5.0, "recover", 1)], horizon=10.0
        )
        assert len(windows) == 1
        assert (windows[0].start, windows[0].end) == (2.0, 5.0)
        assert windows[0].label == "crash node 1"

    def test_unrepaired_fault_extends_to_horizon(self):
        windows = fault_windows([event(2.0, "crash", 1)], horizon=10.0)
        assert (windows[0].start, windows[0].end) == (2.0, 10.0)

    def test_partition_closed_by_heal(self):
        windows = fault_windows(
            [
                event(1.0, "partition", detail="groups=0,1|2,3"),
                event(4.0, "heal"),
            ],
            horizon=10.0,
        )
        assert (windows[0].start, windows[0].end) == (1.0, 4.0)
        assert windows[0].kind == "partition"

    def test_flaky_zero_probability_rearms_the_link(self):
        windows = fault_windows(
            [
                event(1.0, "flaky", 4, detail="p=0.12"),
                event(3.0, "flaky", 4, detail="p=0"),
            ],
            horizon=10.0,
        )
        # p=0 repairs: it closes the window and opens nothing new.
        assert len(windows) == 1
        assert (windows[0].start, windows[0].end) == (1.0, 3.0)

    def test_mismatched_node_does_not_close(self):
        windows = fault_windows(
            [event(2.0, "crash", 1), event(5.0, "recover", 2)], horizon=10.0
        )
        assert (windows[0].start, windows[0].end) == (2.0, 10.0)


class TestCorrelation:
    def _report(self, **kwargs):
        defaults = dict(
            title="t",
            horizon=20.0,
            fault_events=[event(4.0, "crash", 1), event(8.0, "recover", 1)],
            grace_seconds=2.0,
        )
        defaults.update(kwargs)
        return build_incident_report(**defaults)

    def test_trace_overlapping_window_correlates(self):
        report = self._report(
            traces=[retained("t-1", 5.0, 5.1), retained("t-2", 15.0, 15.1)],
            transitions=[BreakerTransition(4.5, 1, "closed", "open")],
        )
        window = report.windows[0]
        assert window.trace_ids == ["t-1"]
        assert window.breaker_transitions == 1
        assert window.correlated
        assert report.reconstructs_schedule()

    def test_traces_alone_do_not_correlate(self):
        report = self._report(traces=[retained("t-1", 5.0, 5.1)])
        assert not report.windows[0].correlated
        assert not report.reconstructs_schedule()
        assert report.uncorrelated_windows() == [report.windows[0].window]

    def test_breaker_reaction_within_grace_counts(self):
        # Reactions trail their cause: a transition just after the window
        # (within the grace) still correlates.
        report = self._report(
            traces=[retained("t-1", 5.0, 5.1)],
            transitions=[BreakerTransition(9.5, 1, "open", "half_open")],
        )
        assert report.windows[0].breaker_transitions == 1
        assert report.windows[0].correlated

    def test_alert_correlates_while_firing(self):
        # Fired before the window, cleared inside it: the burn was active
        # during the window, so it counts — the firing *interval* overlaps,
        # not the firing instant.
        report = self._report(
            traces=[retained("t-1", 5.0, 5.1)],
            alerts=[alert(fired_at=1.0, cleared_at=5.0)],
        )
        assert report.windows[0].slo_alerts == 1
        assert report.windows[0].correlated

    def test_cleared_alert_before_window_does_not_count(self):
        report = self._report(alerts=[alert(fired_at=0.5, cleared_at=1.0)])
        assert report.windows[0].slo_alerts == 0

    def test_still_firing_alert_counts(self):
        report = self._report(alerts=[alert(fired_at=5.0, cleared_at=None)])
        assert report.windows[0].slo_alerts == 1

    def test_reconstructs_schedule_checks_only_named_kinds(self):
        report = build_incident_report(
            "t",
            horizon=20.0,
            fault_events=[
                event(4.0, "crash", 1),
                event(8.0, "recover", 1),
                event(10.0, "slow", 2, detail="factor=4"),
            ],
            traces=[retained("t-1", 5.0, 5.1)],
            transitions=[BreakerTransition(4.5, 1, "closed", "open")],
        )
        # The slow window is uncorrelated but not in the default kinds.
        assert report.reconstructs_schedule()
        assert not report.reconstructs_schedule(kinds=("slow",))


class TestRendering:
    def _report(self):
        return build_incident_report(
            "soak",
            horizon=20.0,
            fault_events=[event(4.0, "crash", 1), event(8.0, "recover", 1)],
            traces=[retained("t-1", 5.0, 5.1)],
            transitions=[BreakerTransition(4.5, 1, "closed", "open")],
            alerts=[alert(fired_at=5.0, cleared_at=7.0)],
        )

    def test_timeline_is_merged_and_ordered(self):
        report = self._report()
        times = [entry.time for entry in report.entries]
        assert times == sorted(times)
        kinds = {entry.kind for entry in report.entries}
        assert kinds == {
            "fault", "fault-repair", "breaker", "slo-alert", "slo-clear",
            "trace",
        }

    def test_render_names_every_window(self):
        rendered = self._report().render()
        assert "crash node 1 [4.00s – 8.00s]" in rendered
        assert "[ok ]" in rendered

    def test_payload_schema_and_save(self, tmp_path):
        report = self._report()
        payload = report.payload()
        assert payload["schema"] == "incident-report/v1"
        assert payload["reconstructs_schedule"] is True
        target = tmp_path / "incident.json"
        report.save(str(target))
        assert json.loads(target.read_text())["schema"] == "incident-report/v1"


class TestLatencyForensics:
    def test_register_fault_windows_feeds_the_recorder(self):
        forensics = LatencyForensics()
        windows = forensics.register_fault_windows(
            [event(2.0, "crash", 1), event(5.0, "recover", 1)], horizon=10.0
        )
        assert [w.label for w in windows] == ["crash node 1"]
        assert forensics.recorder.windows == [(2.0, 5.0, "crash node 1")]

    def test_incident_report_uses_recorder_and_watch(self):
        forensics = LatencyForensics()
        forensics.register_fault_windows(
            [event(2.0, "crash", 1), event(5.0, "recover", 1)], horizon=10.0
        )
        span = Span("query", "query", 3.0, attributes={"sql": "Q"})
        span.end = 3.1
        assert forensics.recorder.observe_query(None, span, 0.1) is not None
        board = SimpleNamespace(states=lambda now: {1: "open"})
        forensics.tick(3.0, boards=[board])
        report = forensics.incident_report(
            "run", 10.0,
            fault_events=[event(2.0, "crash", 1), event(5.0, "recover", 1)],
        )
        assert report.reconstructs_schedule()
        payload = forensics.payload()
        assert payload["schema"] == "flight-recorder/v1"
        assert len(payload["breaker_transitions"]) == 1
