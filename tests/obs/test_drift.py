"""Unit tests for the prediction-drift detector."""

from __future__ import annotations

import pytest

from repro.errors import PredictionError
from repro.obs.drift import PredictionDriftDetector, PredictionEnvelope


class FakeDistribution:
    """A stand-in for LatencyHistogram: fixed quantiles."""

    def __init__(self, p_low, p50, p_high):
        self.quantiles = {0.05: p_low, 0.5: p50, 0.99: p_high}

    def quantile(self, q):
        return self.quantiles[q]


class FakeModel:
    """Duck-typed QueryLatencyModel: prices plans by identity."""

    def __init__(self):
        self.distributions = {}
        self.calls = 0

    def predict_distribution(self, plan):
        self.calls += 1
        try:
            return self.distributions[id(plan)]
        except KeyError:
            raise PredictionError("unknown plan")


class FakeQuery:
    def __init__(self, sql, plan):
        self.sql = sql
        self.physical_plan = plan


def make_detector(model=None, **kwargs):
    return PredictionDriftDetector(model or FakeModel(), **kwargs)


def priced_query(model, sql, p_low=0.008, p50=0.010, p_high=0.020):
    plan = object()
    model.distributions[id(plan)] = FakeDistribution(p_low, p50, p_high)
    return FakeQuery(sql, plan)


class TestObservation:
    def test_residuals_accumulate_per_class(self):
        model = FakeModel()
        detector = make_detector(model, min_observations=2)
        query = priced_query(model, "SELECT a FROM t WHERE k = ?", p50=0.010)
        for observed in (0.011, 0.012, 0.009):
            detector.observe(query, observed)
        (report,) = detector.report()
        assert report.observations == 3
        assert report.median_residual_seconds == pytest.approx(0.001)
        assert not report.drifting

    def test_query_class_normalises_whitespace(self):
        model = FakeModel()
        detector = make_detector(model)
        plan = object()
        model.distributions[id(plan)] = FakeDistribution(0.008, 0.010, 0.020)
        detector.observe(FakeQuery("SELECT a\n  FROM t", plan), 0.010)
        detector.observe(FakeQuery("SELECT a FROM t", plan), 0.010)
        (report,) = detector.report()
        assert report.query_class == "SELECT a FROM t"
        assert report.observations == 2

    def test_envelope_cached_per_plan(self):
        model = FakeModel()
        detector = make_detector(model)
        query = priced_query(model, "SELECT 1")
        for _ in range(10):
            detector.observe(query, 0.010)
        assert model.calls == 1

    def test_unpredictable_plan_is_counted_not_fatal(self):
        model = FakeModel()
        detector = make_detector(model)
        detector.observe(FakeQuery("SELECT weird", object()), 0.010)
        assert detector.unpredictable == 1
        assert detector.report() == []

    def test_class_cap(self):
        model = FakeModel()
        detector = make_detector(model, max_classes=2)
        for i in range(5):
            detector.observe(priced_query(model, f"SELECT {i}"), 0.010)
        assert len(detector.report()) == 2
        assert detector.dropped_classes == 3


class TestDriftFlag:
    def test_within_envelope_is_ok(self):
        model = FakeModel()
        detector = make_detector(model, min_observations=4)
        # Envelope residuals: [-2 ms, +10 ms] around p50 = 10 ms.
        query = priced_query(model, "q", p_low=0.008, p50=0.010, p_high=0.020)
        for _ in range(10):
            detector.observe(query, 0.015)  # +5 ms, inside the envelope
        (report,) = detector.report()
        assert not report.drifting
        assert not detector.any_drifting
        assert "ok" in report.describe()

    def test_sustained_slowdown_flags_drift(self):
        model = FakeModel()
        detector = make_detector(model, min_observations=4)
        query = priced_query(model, "q", p_low=0.008, p50=0.010, p_high=0.020)
        for _ in range(10):
            detector.observe(query, 0.030)  # +20 ms, outside +10 ms envelope
        (report,) = detector.report()
        assert report.drifting
        assert detector.drifting_classes == ["q"]
        assert "DRIFTING" in report.describe()

    def test_speedup_outside_envelope_also_flags(self):
        # Drift is two-sided: a model over-predicting is as stale as one
        # under-predicting.
        model = FakeModel()
        detector = make_detector(model, min_observations=4)
        query = priced_query(model, "q", p_low=0.008, p50=0.010, p_high=0.020)
        for _ in range(10):
            detector.observe(query, 0.001)  # -9 ms, below -2 ms envelope edge
        (report,) = detector.report()
        assert report.drifting

    def test_min_observations_suppresses_cold_flags(self):
        model = FakeModel()
        detector = make_detector(model, min_observations=8)
        query = priced_query(model, "q", p_low=0.008, p50=0.010, p_high=0.020)
        for _ in range(3):
            detector.observe(query, 1.0)  # wildly slow, but only 3 samples
        (report,) = detector.report()
        assert not report.drifting

    def test_rolling_window_forgets_old_regime(self):
        model = FakeModel()
        detector = make_detector(model, window=8, min_observations=4)
        query = priced_query(model, "q", p_low=0.008, p50=0.010, p_high=0.020)
        for _ in range(20):
            detector.observe(query, 0.100)  # old, drifting regime
        for _ in range(8):
            detector.observe(query, 0.010)  # recovery fills the window
        (report,) = detector.report()
        assert report.observations == 28
        assert not report.drifting

    def test_reset(self):
        model = FakeModel()
        detector = make_detector(model)
        detector.observe(priced_query(model, "q"), 0.010)
        detector.reset()
        assert detector.report() == []


class TestEnvelope:
    def test_residual_bounds(self):
        envelope = PredictionEnvelope(
            p_low_seconds=0.008, p50_seconds=0.010, p_high_seconds=0.020
        )
        assert envelope.low_residual == pytest.approx(-0.002)
        assert envelope.high_residual == pytest.approx(0.010)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            make_detector(low_quantile=0.6)
        with pytest.raises(ValueError):
            make_detector(high_quantile=1.5)
