"""Tests for the runtime bound auditor."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro import ClusterConfig
from repro.errors import BoundViolationError
from repro.execution.context import ExecutionStrategy
from repro.kvstore.cluster import KeyValueCluster
from repro.obs.audit import AuditEvent, BoundAuditor, LatencyResidual
from repro.prediction import (
    OperatorModelTrainer,
    QueryLatencyModel,
    TrainingConfig,
)

THOUGHTSTREAM_SQL = """
SELECT t.*
FROM subscriptions s JOIN thoughts t
WHERE t.owner = s.target
  AND s.owner = <uname>
  AND s.approved = true
ORDER BY t.timestamp DESC
LIMIT 10
"""

TINY_TRAINING = TrainingConfig(
    alphas=(1, 10, 100),
    join_cardinalities=(1, 10),
    tuple_sizes=(40,),
    intervals=1,
    samples_per_interval=3,
    oversample_factor=10,
    max_samples_per_interval=30,
)


def unbounded_query(sql: str = "SELECT 1"):
    """A stand-in for a cost-based-baseline query with no static bound."""
    return SimpleNamespace(sql=sql, bound=None)


class TestObserveQuery:
    def test_within_bound_returns_none(self, scadr_db):
        auditor = BoundAuditor()
        query = scadr_db.prepare(THOUGHTSTREAM_SQL).optimized
        bound = query.bound.max_operations
        assert auditor.observe_query(query, bound, 0.01) is None
        assert auditor.audited == 1
        assert auditor.violations == 0

    def test_strict_mode_raises(self, scadr_db):
        auditor = BoundAuditor(mode="strict")
        query = scadr_db.prepare(THOUGHTSTREAM_SQL).optimized
        bound = query.bound.max_operations
        with pytest.raises(BoundViolationError) as excinfo:
            auditor.observe_query(query, bound + 1, 0.01)
        assert str(excinfo.value).startswith("scale-independence violation")
        assert excinfo.value.observed_operations == bound + 1
        assert excinfo.value.bound_operations == bound
        # The event is recorded even though the call raised.
        assert auditor.violations == 1
        assert auditor.events[0].observed_operations == bound + 1

    def test_serving_mode_records_and_feeds_sink(self, scadr_db):
        delivered = []
        auditor = BoundAuditor(mode="serving", sink=delivered.append)
        query = scadr_db.prepare(THOUGHTSTREAM_SQL).optimized
        bound = query.bound.max_operations
        event = auditor.observe_query(query, bound + 5, 0.02)
        assert isinstance(event, AuditEvent)
        assert delivered == [event]
        assert "bound violation" in event.describe()

    def test_enforce_false_records_without_raising(self, scadr_db):
        auditor = BoundAuditor(mode="strict")
        query = scadr_db.prepare(THOUGHTSTREAM_SQL).optimized
        bound = query.bound.max_operations
        event = auditor.observe_query(query, bound + 1, 0.01, enforce=False)
        assert event is not None
        assert auditor.violations == 1

    def test_unbounded_query_is_never_a_violation(self):
        auditor = BoundAuditor()
        assert auditor.observe_query(unbounded_query(), 10_000, 1.0) is None
        assert auditor.violations == 0

    def test_event_list_is_bounded(self):
        auditor = BoundAuditor(mode="serving", max_events=4)
        query = SimpleNamespace(
            sql="SELECT 1", bound=SimpleNamespace(max_operations=1)
        )
        for _ in range(10):
            auditor.observe_query(query, 2, 0.0)
        assert len(auditor.events) == 4
        assert auditor.audited == 10

    def test_reset(self, scadr_db):
        auditor = BoundAuditor(mode="serving")
        query = scadr_db.prepare(THOUGHTSTREAM_SQL).optimized
        auditor.observe_query(query, query.bound.max_operations + 1, 0.0)
        auditor.reset()
        assert auditor.audited == 0
        assert auditor.violations == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BoundAuditor(mode="paranoid")


class TestExecutorIntegration:
    def test_every_execution_is_audited(self, scadr_db):
        before = scadr_db.auditor.audited
        scadr_db.execute(THOUGHTSTREAM_SQL, uname="alice")
        scadr_db.execute(THOUGHTSTREAM_SQL, uname="bob")
        assert scadr_db.auditor.audited == before + 2
        assert scadr_db.auditor.violations == 0

    def test_lazy_strategy_is_exempt(self, scadr_db):
        prepared = scadr_db.prepare(THOUGHTSTREAM_SQL)
        before = scadr_db.auditor.audited
        prepared.execute(
            {"uname": "alice"}, strategy=ExecutionStrategy.LAZY
        )
        assert scadr_db.auditor.audited == before

    def test_new_client_shares_the_auditor(self, scadr_db):
        clone = scadr_db.new_client()
        assert clone.auditor is scadr_db.auditor
        before = scadr_db.auditor.audited
        clone.execute(THOUGHTSTREAM_SQL, uname="alice")
        assert scadr_db.auditor.audited == before + 1

    def test_reset_measurements_resets_auditor(self, scadr_db):
        scadr_db.execute(THOUGHTSTREAM_SQL, uname="alice")
        scadr_db.reset_measurements()
        assert scadr_db.auditor.audited == 0


class TestSpanAnnotation:
    def test_bound_slices_cover_the_whole_bound(self, scadr_db):
        scadr_db.enable_tracing()
        scadr_db.execute(THOUGHTSTREAM_SQL, uname="alice")
        root = scadr_db.tracer.last_root()
        assert root is not None and root.kind == "query"
        # Annotation is on demand (EXPLAIN ANALYZE calls this internally).
        scadr_db.auditor.annotate_span(
            scadr_db.prepare(THOUGHTSTREAM_SQL).optimized, root
        )
        operator_spans = root.find("operator")
        assert operator_spans
        slices = [
            span.attributes["bound_slice"]
            for span in operator_spans
            if "bound_slice" in span.attributes
        ]
        bound = scadr_db.prepare(THOUGHTSTREAM_SQL).bound.max_operations
        # Per-operator slices telescope back to the root bound.
        assert sum(slices) == bound
        assert all(s >= 0 for s in slices)
        # Observed subtree operations respect each subtree's bound.
        for span in operator_spans:
            if "bound_subtree" in span.attributes:
                assert span.attributes["operations"] <= span.attributes["bound_subtree"]

    def test_latency_model_adds_residuals(self, scadr_db):
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=4, seed=3))
        store = OperatorModelTrainer(cluster, TINY_TRAINING).train()
        model = QueryLatencyModel(store, scadr_db.catalog)
        auditor = BoundAuditor(latency_model=model)

        scadr_db.enable_tracing()
        scadr_db.execute(THOUGHTSTREAM_SQL, uname="alice")
        prepared = scadr_db.prepare(THOUGHTSTREAM_SQL)
        root = scadr_db.tracer.last_root()
        auditor.annotate_span(prepared.optimized, root)

        predicted = [
            span for span in root.find("operator")
            if "predicted_seconds" in span.attributes
        ]
        assert predicted
        assert auditor.residuals
        residual = auditor.residuals[0]
        assert isinstance(residual, LatencyResidual)
        assert residual.residual_seconds == pytest.approx(
            residual.observed_seconds - residual.predicted_seconds
        )
        for span in predicted:
            assert span.attributes["residual_seconds"] == pytest.approx(
                span.duration - span.attributes["predicted_seconds"]
            )
