"""Tests for the tail-based flight recorder and the breaker watch."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.obs.flightrec import (
    BreakerWatch,
    FlightRecorder,
    ForensicsConfig,
    _band_upper_ms,
)
from repro.obs.trace import Span


def finished(start, end, sql="SELECT 1", error=False, name="query"):
    span = Span(name, "query", start, attributes={"sql": sql})
    if error:
        span.attributes["error"] = True
    span.end = end
    return span


class FakeDrift:
    """Duck-typed envelope provider (the drift detector's cache contract)."""

    def __init__(self, p_high_seconds):
        self.p_high_seconds = p_high_seconds

    def _predict_envelope(self, query):
        return SimpleNamespace(p_high_seconds=self.p_high_seconds)


def recorder(**kwargs):
    defaults = dict(reservoir_interval=10_000)
    defaults.update(kwargs)
    return FlightRecorder(ForensicsConfig(**defaults))


class TestRetentionReasons:
    def test_healthy_trace_is_not_retained(self):
        rec = recorder()
        assert rec.observe_query(object(), finished(0.0, 0.01), 0.01) is None
        assert rec.seen == 1
        assert rec.traces == []

    def test_open_span_is_ignored(self):
        rec = recorder()
        assert rec.observe_query(object(), Span("q", "query", 0.0), 0.01) is None
        assert rec.seen == 0

    def test_slow_outside_envelope_is_retained(self):
        rec = FlightRecorder(
            ForensicsConfig(reservoir_interval=10_000),
            drift=FakeDrift(p_high_seconds=0.05),
        )
        kept = rec.observe_query(object(), finished(0.0, 0.2), 0.2)
        assert kept is not None and kept.reasons == ("slow",)
        fast = rec.observe_query(object(), finished(1.0, 1.01), 0.01)
        assert fast is None

    def test_error_attribute_is_retained(self):
        rec = recorder()
        kept = rec.observe_query(
            object(), finished(0.0, 0.01, error=True), 0.01
        )
        assert kept is not None and "error" in kept.reasons

    def test_bound_violation_event_pins_its_trace(self):
        rec = recorder()
        kept = rec.observe_query(
            object(), finished(0.0, 0.01), 0.01, event=object()
        )
        assert kept is not None
        assert kept.reasons == ("bound_violation",)
        assert kept.pinned

    def test_fault_window_retains_and_pins_first_only(self):
        rec = recorder()
        rec.note_window(1.0, 2.0, "crash node 1")
        first = rec.observe_query(object(), finished(1.1, 1.2), 0.1)
        second = rec.observe_query(object(), finished(1.3, 1.4), 0.1)
        outside = rec.observe_query(object(), finished(5.0, 5.1), 0.1)
        assert first.reasons == ("window:crash node 1",) and first.pinned
        assert second.reasons == ("window:crash node 1",) and not second.pinned
        assert outside is None

    def test_reservoir_keeps_every_nth_healthy_trace(self):
        rec = recorder(reservoir_interval=3)
        kept = [
            rec.observe_query(object(), finished(i, i + 0.01), 0.01)
            for i in range(6)
        ]
        assert [trace is not None for trace in kept] == [
            False, False, True, False, False, True,
        ]
        assert kept[2].reasons == ("baseline",)


class TestBounds:
    def test_trace_cap_evicts_oldest_unpinned(self):
        rec = recorder(max_traces=2)
        rec.note_window(0.0, 100.0, "w")
        kept = [
            rec.observe_query(object(), finished(i, i + 0.01), 0.01)
            for i in range(3)
        ]
        ids = [trace.trace_id for trace in rec.traces]
        # The first trace is pinned (first-per-window); the second — the
        # oldest unpinned — was evicted to admit the third.
        assert kept[0].trace_id in ids
        assert kept[1].trace_id not in ids
        assert kept[2].trace_id in ids
        assert rec.dropped == 1 and rec.dropped_pinned == 0

    def test_baseline_traces_are_evicted_first(self):
        rec = recorder(max_traces=2, reservoir_interval=1)
        baseline = rec.observe_query(object(), finished(0.0, 0.01), 0.01)
        assert baseline.reasons == ("baseline",)
        slow = FakeDrift(p_high_seconds=0.001)
        rec.drift = slow
        first = rec.observe_query(object(), finished(1.0, 1.5), 0.5)
        second = rec.observe_query(object(), finished(2.0, 2.5), 0.5)
        ids = [trace.trace_id for trace in rec.traces]
        # The baseline went first even though the slow traces are newer.
        assert baseline.trace_id not in ids
        assert first.trace_id in ids and second.trace_id in ids

    def test_memory_budget_is_a_hard_bound(self):
        rec = recorder(memory_budget_bytes=400, max_traces=64)
        rec.note_window(0.0, 100.0, "w")
        for i in range(5):
            rec.observe_query(object(), finished(i, i + 0.01), 0.01)
        assert rec.memory_bytes <= 400
        assert rec.dropped > 0
        # Even the pinned first-per-window trace yields to the byte budget
        # eventually; those evictions are counted separately.
        assert rec.memory_bytes == sum(t.approx_bytes for t in rec.traces)

    def test_eviction_is_never_silent(self):
        rec = recorder(max_traces=1)
        rec.note_window(0.0, 100.0, "w")
        for i in range(4):
            rec.observe_query(object(), finished(i, i + 0.01), 0.01)
        assert len(rec.traces) == 1
        assert rec.retained_total == 4
        assert rec.dropped == 3
        payload = rec.payload()
        assert payload["dropped"] == 3
        assert payload["schema"] == "flight-recorder/v1"


class TestExemplars:
    def test_bands_are_power_of_two(self):
        assert _band_upper_ms(0.1) == 0.25
        assert _band_upper_ms(0.3) == 0.5
        assert _band_upper_ms(3.0) == 4.0

    def test_histogram_counts_all_exemplar_links_retained(self):
        rec = recorder()
        rec.note_window(0.0, 0.5, "w")
        kept = rec.observe_query(object(), finished(0.1, 0.102), 0.002)
        rec.observe_query(object(), finished(1.0, 1.002), 0.002)  # healthy
        band = (kept.query_class, _band_upper_ms(2.0))
        assert rec.histogram[band] == 2
        assert rec.exemplars[band] == kept.trace_id
        exemplars = rec.payload()["exemplars"]
        assert exemplars[0]["count"] == 2
        assert exemplars[0]["trace_id"] == kept.trace_id


class FakeBoard:
    def __init__(self):
        self.current = {}

    def states(self, now):
        return dict(self.current)


class TestBreakerWatch:
    def test_transitions_are_synthesised_from_state_diffs(self):
        board = FakeBoard()
        watch = BreakerWatch()
        board.current = {1: "closed"}
        assert watch.poll([board], 1.0) == []
        board.current = {1: "open"}
        fresh = watch.poll([board], 2.0)
        assert len(fresh) == 1
        assert (fresh[0].from_state, fresh[0].to_state) == ("closed", "open")
        assert watch.poll([board], 3.0) == []  # no change, no transition

    def test_open_breaker_opens_a_recorder_window(self):
        rec = recorder()
        board = FakeBoard()
        watch = BreakerWatch(rec)
        board.current = {2: "open"}
        watch.poll([board], 1.0)
        kept = rec.observe_query(object(), finished(1.5, 1.6), 0.1)
        assert kept is not None
        assert kept.reasons == ("window:breaker-open node 2",)

    def test_window_closes_when_breaker_leaves_open(self):
        # Half-open is the recovery path: the retention window must end as
        # soon as the breaker stops fencing the node, not only on close.
        rec = recorder()
        board = FakeBoard()
        watch = BreakerWatch(rec)
        board.current = {2: "open"}
        watch.poll([board], 1.0)
        board.current = {2: "half_open"}
        watch.poll([board], 2.0)
        assert rec.windows == [(1.0, 2.0, "breaker-open node 2")]
        after = rec.observe_query(object(), finished(3.0, 3.1), 0.1)
        assert after is None

    def test_finalize_closes_leftover_windows(self):
        rec = recorder()
        board = FakeBoard()
        watch = BreakerWatch(rec)
        board.current = {0: "open"}
        watch.poll([board], 1.0)
        watch.finalize(4.0)
        assert rec.windows == [(1.0, 4.0, "breaker-open node 0")]

    def test_transition_cap_counts_drops(self):
        board = FakeBoard()
        watch = BreakerWatch(max_transitions=1)
        board.current = {1: "open"}
        watch.poll([board], 1.0)
        board.current = {1: "closed"}
        watch.poll([board], 2.0)
        assert len(watch.transitions) == 1
        assert watch.dropped_transitions == 1
