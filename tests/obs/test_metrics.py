"""Unit tests for the metrics registry and bounded histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import BoundedHistogram, MetricsRegistry


class TestCounters:
    def test_add_and_value(self):
        registry = MetricsRegistry()
        assert registry.value("client.operations") == 0
        registry.add("client.operations")
        registry.add("client.operations", 4)
        assert registry.value("client.operations") == 5

    def test_set_counter(self):
        registry = MetricsRegistry()
        registry.set_counter("client.rpcs", 7)
        assert registry.value("client.rpcs") == 7

    def test_counters_returns_copy(self):
        registry = MetricsRegistry()
        registry.add("a", 1)
        counters = registry.counters()
        counters["a"] = 99
        assert registry.value("a") == 1

    def test_iter_sorted(self):
        registry = MetricsRegistry()
        registry.add("b", 2)
        registry.add("a", 1)
        assert list(registry) == [("a", 1), ("b", 2)]


class TestWindows:
    def test_snapshot_is_independent(self):
        registry = MetricsRegistry()
        registry.add("x", 3)
        snap = registry.snapshot()
        registry.add("x", 2)
        assert snap.value("x") == 3
        assert registry.value("x") == 5

    def test_delta_over_union_of_names(self):
        registry = MetricsRegistry()
        registry.add("old", 1)
        earlier = registry.snapshot()
        registry.add("old", 2)
        registry.add("new", 5)
        delta = registry.delta(earlier)
        # Names that appeared after the snapshot still difference correctly.
        assert delta.value("old") == 2
        assert delta.value("new") == 5

    def test_merge_adds_counters(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.add("shared", 1)
        b.add("shared", 2)
        b.add("only_b", 3)
        a.merge(b)
        assert a.value("shared") == 3
        assert a.value("only_b") == 3

    def test_reset(self):
        registry = MetricsRegistry()
        registry.add("x", 1)
        registry.set_gauge("g", 2.0)
        registry.observe("h", 0.5)
        registry.reset()
        assert registry.value("x") == 0
        assert registry.gauge("g") == 0.0
        assert registry.histogram("h") is None


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("utilization", 0.2)
        registry.set_gauge("utilization", 0.8)
        assert registry.gauge("utilization") == 0.8
        assert registry.gauge("missing", default=-1.0) == -1.0

    def test_delta_carries_later_gauge(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        earlier = registry.snapshot()
        registry.set_gauge("g", 4.0)
        assert registry.delta(earlier).gauge("g") == 4.0


class TestBoundedHistogram:
    def test_small_streams_keep_everything(self):
        histogram = BoundedHistogram(capacity=8)
        for value in [3.0, 1.0, 2.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.percentile(1.0) == 3.0

    def test_capacity_bounds_memory(self):
        histogram = BoundedHistogram(capacity=16)
        for i in range(10_000):
            histogram.observe(float(i))
        assert len(histogram.samples) == 16
        assert histogram.count == 10_000

    def test_reservoir_stays_representative(self):
        histogram = BoundedHistogram(capacity=128)
        for i in range(20_000):
            histogram.observe(float(i))
        # The retained median of a uniform ramp should land near the middle.
        assert 4_000 < histogram.percentile(0.5) < 16_000

    def test_copy_preserves_rng_state(self):
        histogram = BoundedHistogram(capacity=4)
        for i in range(100):
            histogram.observe(float(i))
        clone = histogram.copy()
        histogram.observe(123.0)
        clone.observe(123.0)
        assert histogram.samples == clone.samples

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedHistogram(capacity=0)

    def test_registry_observe(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.25, capacity=4)
        registry.observe("lat", 0.75)
        histogram = registry.histogram("lat")
        assert histogram is not None
        assert histogram.count == 2
        snap = registry.snapshot()
        registry.observe("lat", 0.5)
        assert snap.histogram("lat").count == 2
