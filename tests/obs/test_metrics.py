"""Unit tests for the metrics registry and bounded histograms."""

from __future__ import annotations

import pytest

from repro.errors import HistogramMergeError
from repro.obs.metrics import BoundedHistogram, MetricsRegistry


class TestCounters:
    def test_add_and_value(self):
        registry = MetricsRegistry()
        assert registry.value("client.operations") == 0
        registry.add("client.operations")
        registry.add("client.operations", 4)
        assert registry.value("client.operations") == 5

    def test_set_counter(self):
        registry = MetricsRegistry()
        registry.set_counter("client.rpcs", 7)
        assert registry.value("client.rpcs") == 7

    def test_counters_returns_copy(self):
        registry = MetricsRegistry()
        registry.add("a", 1)
        counters = registry.counters()
        counters["a"] = 99
        assert registry.value("a") == 1

    def test_iter_sorted(self):
        registry = MetricsRegistry()
        registry.add("b", 2)
        registry.add("a", 1)
        assert list(registry) == [("a", 1), ("b", 2)]


class TestWindows:
    def test_snapshot_is_independent(self):
        registry = MetricsRegistry()
        registry.add("x", 3)
        snap = registry.snapshot()
        registry.add("x", 2)
        assert snap.value("x") == 3
        assert registry.value("x") == 5

    def test_delta_over_union_of_names(self):
        registry = MetricsRegistry()
        registry.add("old", 1)
        earlier = registry.snapshot()
        registry.add("old", 2)
        registry.add("new", 5)
        delta = registry.delta(earlier)
        # Names that appeared after the snapshot still difference correctly.
        assert delta.value("old") == 2
        assert delta.value("new") == 5

    def test_merge_adds_counters(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.add("shared", 1)
        b.add("shared", 2)
        b.add("only_b", 3)
        a.merge(b)
        assert a.value("shared") == 3
        assert a.value("only_b") == 3

    def test_reset(self):
        registry = MetricsRegistry()
        registry.add("x", 1)
        registry.set_gauge("g", 2.0)
        registry.observe("h", 0.5)
        registry.reset()
        assert registry.value("x") == 0
        assert registry.gauge("g") == 0.0
        assert registry.histogram("h") is None


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("utilization", 0.2)
        registry.set_gauge("utilization", 0.8)
        assert registry.gauge("utilization") == 0.8
        assert registry.gauge("missing", default=-1.0) == -1.0

    def test_delta_carries_later_gauge(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        earlier = registry.snapshot()
        registry.set_gauge("g", 4.0)
        assert registry.delta(earlier).gauge("g") == 4.0


class TestBoundedHistogram:
    def test_small_streams_keep_everything(self):
        histogram = BoundedHistogram(capacity=8)
        for value in [3.0, 1.0, 2.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.percentile(1.0) == 3.0

    def test_capacity_bounds_memory(self):
        histogram = BoundedHistogram(capacity=16)
        for i in range(10_000):
            histogram.observe(float(i))
        assert len(histogram.samples) == 16
        assert histogram.count == 10_000

    def test_reservoir_stays_representative(self):
        histogram = BoundedHistogram(capacity=128)
        for i in range(20_000):
            histogram.observe(float(i))
        # The retained median of a uniform ramp should land near the middle.
        assert 4_000 < histogram.percentile(0.5) < 16_000

    def test_copy_preserves_rng_state(self):
        histogram = BoundedHistogram(capacity=4)
        for i in range(100):
            histogram.observe(float(i))
        clone = histogram.copy()
        histogram.observe(123.0)
        clone.observe(123.0)
        assert histogram.samples == clone.samples

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedHistogram(capacity=0)

    def test_registry_observe(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.25, capacity=4)
        registry.observe("lat", 0.75)
        histogram = registry.histogram("lat")
        assert histogram is not None
        assert histogram.count == 2
        snap = registry.snapshot()
        registry.observe("lat", 0.5)
        assert snap.histogram("lat").count == 2


class TestHistogramMerge:
    """Regression tests for merging reservoirs of differing shapes.

    The fleet roll-up path merges per-node histograms whose capacities and
    sample counts differ; an earlier implementation concatenated raw sample
    lists, which skewed quantiles toward the smaller-capacity side and
    could overrun the destination's capacity.
    """

    def test_merge_small_into_large(self):
        a = BoundedHistogram(capacity=128)
        b = BoundedHistogram(capacity=8)
        for _ in range(100):
            a.observe(1.0)
        for _ in range(300):
            b.observe(3.0)
        a.merge(b)
        assert a.count == 400
        assert a.total == pytest.approx(100 * 1.0 + 300 * 3.0)
        assert len(a.samples) <= a.capacity
        assert set(a.samples) <= {1.0, 3.0}

    def test_merge_large_into_small_rebins(self):
        # The destination's capacity bounds the result even when the
        # operand retains far more samples.
        small = BoundedHistogram(capacity=8)
        big = BoundedHistogram(capacity=512)
        for _ in range(100):
            small.observe(1.0)
        for _ in range(300):
            big.observe(3.0)
        small.merge(big)
        assert small.count == 400
        assert len(small.samples) == 8
        assert small.mean == pytest.approx(2.5)

    def test_merge_weights_by_observation_count(self):
        # 90% of the union's observations are 5.0: the merged reservoir
        # should be dominated by them even though both reservoirs retain
        # the same number of raw samples.
        a = BoundedHistogram(capacity=64, seed=7)
        b = BoundedHistogram(capacity=64, seed=11)
        for _ in range(9_000):
            a.observe(5.0)
        for _ in range(1_000):
            b.observe(1.0)
        a.merge(b)
        heavy = sum(1 for s in a.samples if s == 5.0)
        assert heavy / len(a.samples) > 0.7

    def test_merge_into_empty_adopts_subsample(self):
        empty = BoundedHistogram(capacity=4)
        full = BoundedHistogram(capacity=64)
        for i in range(50):
            full.observe(float(i))
        empty.merge(full)
        assert empty.count == 50
        assert len(empty.samples) == 4
        assert empty.total == full.total

    def test_merge_empty_operand_is_noop(self):
        a = BoundedHistogram(capacity=8)
        a.observe(2.0)
        a.merge(BoundedHistogram(capacity=8))
        assert a.count == 1
        assert a.samples == [2.0]

    def test_merge_is_deterministic(self):
        def build():
            a = BoundedHistogram(capacity=16, seed=3)
            b = BoundedHistogram(capacity=16, seed=5)
            for i in range(200):
                a.observe(float(i))
                b.observe(float(-i))
            a.merge(b)
            return a.samples

        assert build() == build()

    def test_merge_rejects_non_histogram(self):
        a = BoundedHistogram(capacity=8)
        with pytest.raises(HistogramMergeError, match="not BoundedHistogram"):
            a.merge([1.0, 2.0])

    def test_merge_rejects_inconsistent_operand(self):
        a = BoundedHistogram(capacity=8)
        bad = BoundedHistogram(capacity=8)
        bad.samples = [1.0, 2.0, 3.0]
        bad.count = 2  # claims fewer observations than it retains
        with pytest.raises(HistogramMergeError, match="retains 3 samples"):
            a.merge(bad)
        # And symmetrically when self is the inconsistent side.
        with pytest.raises(HistogramMergeError):
            bad.merge(a)

    def test_registry_merge_covers_all_metric_kinds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.add("ops", 2)
        b.add("ops", 3)
        b.set_gauge("util", 0.5)
        a.observe("lat", 1.0, capacity=8)
        b.observe("lat", 3.0, capacity=8)
        b.observe("only_b", 9.0)
        a.merge(b)
        assert a.value("ops") == 5
        assert a.gauge("util") == 0.5
        assert a.histogram("lat").count == 2
        assert a.histogram("only_b").count == 1
