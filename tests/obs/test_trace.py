"""Unit tests for spans and the tracer."""

from __future__ import annotations

from repro.obs.trace import Span, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracer(keep: int = 64):
    clock = FakeClock()
    return clock, Tracer(lambda: clock.now, keep=keep)


class TestSpans:
    def test_nesting_and_timing(self):
        clock, tracer = make_tracer()
        root = tracer.start_span("query", "query", sql="SELECT 1")
        clock.advance(1.0)
        child = tracer.start_span("scan", "operator")
        clock.advance(2.0)
        tracer.end_span(child)
        clock.advance(0.5)
        tracer.end_span(root)

        assert root.start == 0.0 and root.end == 3.5
        assert child.start == 1.0 and child.duration == 2.0
        assert root.children == [child]
        assert root.attributes["sql"] == "SELECT 1"
        assert tracer.active is None

    def test_duration_zero_while_open(self):
        _, tracer = make_tracer()
        span = tracer.start_span("open", "query")
        assert span.duration == 0.0

    def test_record_attaches_under_active(self):
        clock, tracer = make_tracer()
        root = tracer.start_span("query", "query")
        tracer.record("get", "rpc", 0.0, 0.001, keys=1)
        tracer.end_span(root)
        assert len(root.children) == 1
        rpc = root.children[0]
        assert rpc.kind == "rpc"
        assert rpc.duration == 0.001
        assert rpc.attributes["keys"] == 1

    def test_record_without_active_becomes_root(self):
        _, tracer = make_tracer()
        tracer.record("get", "rpc", 0.0, 0.1)
        assert tracer.last_root() is not None
        assert tracer.last_root().kind == "rpc"

    def test_end_span_closes_leaked_children(self):
        clock, tracer = make_tracer()
        root = tracer.start_span("query", "query")
        leaked = tracer.start_span("operator", "operator")
        clock.advance(1.0)
        tracer.end_span(root)  # never explicitly ended `leaked`
        assert leaked.end == 1.0
        assert root.end == 1.0
        assert tracer.active is None

    def test_walk_find_first(self):
        _, tracer = make_tracer()
        root = tracer.start_span("query", "query")
        a = tracer.start_span("a", "operator")
        tracer.record("get", "rpc", 0.0, 0.0)
        tracer.end_span(a)
        b = tracer.start_span("b", "operator")
        tracer.end_span(b)
        tracer.end_span(root)

        assert [s.name for s in root.walk()] == ["query", "a", "get", "b"]
        assert [s.name for s in root.find("operator")] == ["a", "b"]
        assert root.first("rpc").name == "get"
        assert root.first("missing") is None


class TestRootRetention:
    def test_bounded_roots(self):
        _, tracer = make_tracer(keep=3)
        for i in range(10):
            span = tracer.start_span(f"q{i}", "query")
            tracer.end_span(span)
        assert len(tracer.roots) == 3
        assert [s.name for s in tracer.roots] == ["q7", "q8", "q9"]
        assert tracer.last_root().name == "q9"

    def test_clear(self):
        _, tracer = make_tracer()
        tracer.start_span("open", "query")
        tracer.clear()
        assert tracer.active is None
        assert tracer.last_root() is None
