"""Unit tests for the fixed-memory telemetry time-series store."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import TimeSeriesStore, make_labels


class TestBasics:
    def test_single_sample_round_trip(self):
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=8)
        assert store.record("m", 3.0, t=2.4)
        points = store.points("m")
        assert len(points) == 1
        point = points[0]
        assert point.start_seconds == 2.0
        assert point.width_seconds == 1.0
        assert point.count == 1
        assert point.sum == point.min == point.max == point.last == 3.0

    def test_samples_fold_within_a_bucket(self):
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=8)
        store.record("m", 1.0, t=5.1)
        store.record("m", 5.0, t=5.6)
        store.record("m", 3.0, t=5.9)
        (point,) = store.points("m")
        assert point.count == 3
        assert point.sum == 9.0
        assert point.mean == pytest.approx(3.0)
        assert point.min == 1.0
        assert point.max == 5.0
        assert point.last == 3.0  # arrival order, not value order

    def test_labels_make_distinct_series(self):
        store = TimeSeriesStore()
        store.record("node.up", 1.0, t=0.0, labels={"node": "a"})
        store.record("node.up", 0.0, t=0.0, labels={"node": "b"})
        assert store.latest_value("node.up", {"node": "a"}) == 1.0
        assert store.latest_value("node.up", {"node": "b"}) == 0.0
        assert store.label_sets("node.up") == [
            (("node", "a"),),
            (("node", "b"),),
        ]

    def test_label_order_is_canonical(self):
        assert make_labels({"b": 2, "a": 1}) == (("a", "1"), ("b", "2"))
        store = TimeSeriesStore()
        store.record("m", 1.0, t=0.0, labels={"x": "1", "y": "2"})
        store.record("m", 2.0, t=0.5, labels={"y": "2", "x": "1"})
        (point,) = store.points("m", {"x": "1", "y": "2"})
        assert point.count == 2


class TestEmptyWindows:
    def test_unknown_series_has_no_points(self):
        store = TimeSeriesStore()
        assert store.points("nope") == []
        assert store.latest("nope") is None
        assert store.latest_value("nope", default=-1.0) == -1.0

    def test_window_with_no_samples_is_empty(self):
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=16)
        store.record("m", 1.0, t=1.0)
        store.record("m", 2.0, t=9.0)
        assert store.points("m", start=3.0, end=8.0) == []

    def test_counter_delta_over_empty_window_is_zero(self):
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=16)
        store.record("total", 100.0, t=1.0)
        store.record("total", 100.0, t=9.0)
        # No scrape (and no increase) inside (3, 8].
        assert store.counter_delta("total", 3.0, 8.0) == 0.0
        # Window entirely before the first scrape.
        assert store.counter_delta("total", -5.0, 0.5) == 0.0

    def test_counter_delta_ignores_preexisting_total(self):
        # The first scrape sees a counter that is already at 1000; a window
        # opening before that scrape must not report the 1000 as fresh burn.
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=16)
        store.record("total", 1000.0, t=4.0)
        store.record("total", 1010.0, t=6.0)
        assert store.counter_delta("total", 0.0, 6.0) == pytest.approx(10.0)

    def test_counter_delta_normal_window(self):
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=32)
        for t in range(12):
            store.record("total", float(t * 5), t=float(t))
        assert store.counter_delta("total", 3.0, 11.0) == pytest.approx(40.0)


class TestOutOfOrder:
    def test_late_sample_folds_into_its_bucket(self):
        store = TimeSeriesStore(resolution_seconds=1.0, capacity=16)
        store.record("m", 1.0, t=3.2)
        store.record("m", 9.0, t=8.0)
        assert store.record("m", 2.0, t=3.7)  # late, but bucket still live
        points = store.points("m")
        assert points[0].count == 2
        assert points[0].sum == 3.0
        assert store.dropped_samples == 0

    def test_sample_older_than_every_ring_is_dropped(self):
        store = TimeSeriesStore(
            resolution_seconds=1.0, capacity=4, levels=2, downsample_factor=4
        )
        # Fill both levels so every slot holds recent history: the fine
        # ring covers 97..100, the coarse ring covers 80..100.
        for t in range(80, 101):
            store.record("m", 1.0, t=float(t))
        assert not store.record("m", 2.0, t=1.0)
        assert store.dropped_samples == 1
        # The live data is untouched.
        assert all(p.min == 1.0 for p in store.points("m"))

    def test_late_sample_lands_in_coarser_level(self):
        store = TimeSeriesStore(
            resolution_seconds=1.0, capacity=4, levels=2, downsample_factor=4
        )
        for t in range(12):
            store.record("m", 1.0, t=float(t))
        # t=2 has been recycled out of the fine ring (which now holds 8..11)
        # but its 4-second coarse bucket [0, 4) is still live.
        assert store.record("m", 1.0, t=2.0)
        assert store.dropped_samples == 0
        coarse = [p for p in store.points("m") if p.width_seconds == 4.0]
        first = next(p for p in coarse if p.start_seconds == 0.0)
        assert first.count == 5  # four original samples + the late one


class TestWraparoundAndDownsampling:
    def test_evicted_fine_buckets_fold_into_coarse(self):
        store = TimeSeriesStore(
            resolution_seconds=1.0, capacity=4, levels=2, downsample_factor=4
        )
        for t in range(12):
            store.record("m", float(t), t=float(t))
        points = store.points("m")
        fine = [p for p in points if p.width_seconds == 1.0]
        coarse = [p for p in points if p.width_seconds == 4.0]
        # Fine ring keeps the newest 4 seconds; the evicted 0..7 live on as
        # two 4-second coarse buckets.
        assert [p.start_seconds for p in fine] == [8.0, 9.0, 10.0, 11.0]
        assert [p.start_seconds for p in coarse] == [0.0, 4.0]
        assert coarse[0].count == 4
        assert coarse[0].sum == 0.0 + 1.0 + 2.0 + 3.0
        assert coarse[0].min == 0.0 and coarse[0].max == 3.0

    def test_points_prefer_fine_over_overlapping_coarse(self):
        store = TimeSeriesStore(
            resolution_seconds=1.0, capacity=4, levels=2, downsample_factor=4
        )
        for t in range(10):
            store.record("m", 1.0, t=float(t))
        points = store.points("m")
        # The coarse bucket [4, 8) overlaps fine buckets 6 and 7; the query
        # must not report the same seconds at two resolutions.
        for fine in (p for p in points if p.width_seconds == 1.0):
            for coarse in (p for p in points if p.width_seconds == 4.0):
                overlap = not (
                    fine.end_seconds <= coarse.start_seconds
                    or coarse.end_seconds <= fine.start_seconds
                )
                assert not overlap

    def test_history_beyond_coarsest_level_expires(self):
        store = TimeSeriesStore(
            resolution_seconds=1.0, capacity=2, levels=2, downsample_factor=2
        )
        for t in range(40):
            store.record("m", 1.0, t=float(t))
        points = store.points("m")
        # Memory stays fixed: at most capacity buckets per level.
        assert len(points) <= 4
        assert points[0].start_seconds >= 32.0

    def test_total_memory_is_bounded(self):
        store = TimeSeriesStore(
            resolution_seconds=1.0, capacity=8, levels=3, downsample_factor=8
        )
        for t in range(100_000):
            store.record("m", float(t), t=float(t))
        assert len(store.points("m")) <= 8 * 3
        assert store.latest("m").last == 99_999.0


class TestCardinalityCap:
    def test_series_beyond_cap_are_dropped_and_counted(self):
        store = TimeSeriesStore(max_series=2)
        assert store.record("m", 1.0, t=0.0, labels={"node": "a"})
        assert store.record("m", 1.0, t=0.0, labels={"node": "b"})
        assert not store.record("m", 1.0, t=0.0, labels={"node": "c"})
        assert not store.record("other", 1.0, t=0.0)
        assert len(store) == 2
        assert store.dropped_series == 2
        # Existing series still accept samples.
        assert store.record("m", 2.0, t=1.0, labels={"node": "a"})

    def test_high_cardinality_label_cannot_grow_heap(self):
        store = TimeSeriesStore(max_series=16)
        for user in range(1000):
            store.record("per_user", 1.0, t=0.0, labels={"user": str(user)})
        assert len(store) == 16
        assert store.dropped_series == 1000 - 16


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"resolution_seconds": 0.0},
            {"capacity": 1},
            {"levels": 0},
            {"downsample_factor": 1},
            {"max_series": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeSeriesStore(**kwargs)
