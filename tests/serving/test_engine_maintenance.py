"""Serving-tier integration of the storage engine: background compaction
scheduled through the event kernel, and engine gauges in fleet telemetry.

A durable (LSM) cluster under a tiny memtable budget accumulates segment
runs during workload setup; the serving run must drain the compaction
backlog from its maintenance tick — free in the latency model — and the
telemetry scrape must expose per-node ``engine.*`` series that render as
the dashboard's STORAGE ENGINE table.  A dict-engine run must show none of
this (no maintenance tick, no engine series, no dashboard section).
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.serving import ServingConfig, ServingSimulation
from repro.workloads.base import InteractionResult, Workload, WorkloadScale


class PointLookupWorkload(Workload):
    """Minimal workload (mirrors conftest's, importable at module scope)."""

    name = "point-lookup"

    def __init__(self, rows: int = 200):
        self.rows = rows

    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(
            "CREATE TABLE items (id INT, payload VARCHAR(64), PRIMARY KEY (id))"
        )
        db.bulk_load(
            "items",
            ({"id": i, "payload": f"payload-{i}"} for i in range(self.rows)),
        )
        self.prepare_all(db)

    def query_names(self) -> List[str]:
        return ["get_item"]

    def query_sql(self, name: str) -> str:
        return "SELECT * FROM items WHERE id = <id>"

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        return {"id": rng.randrange(self.rows)}

    def interaction(self, db: PiqlDatabase, rng: random.Random) -> InteractionResult:
        result = db.prepare(self.query_sql("get_item")).execute(
            self.sample_parameters("get_item", rng)
        )
        return InteractionResult(
            name="get_item",
            latency_seconds=result.latency_seconds,
            operations=result.operations,
            query_latencies={"get_item": result.latency_seconds},
        )


def _build_db(tmp_path, engine: str) -> PiqlDatabase:
    options = None
    if engine == "lsm":
        # A tiny budget forces many small flushes during workload setup, so
        # the run starts with a real compaction backlog.
        options = {
            "data_dir": str(tmp_path / "lsm"),
            "memtable_budget_bytes": 2048,
        }
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=3,
            node_capacity_ops_per_second=500.0,
            seed=9,
            storage_engine=engine,
            engine_options=options,
        )
    )
    workload = PointLookupWorkload()
    workload.setup(db, WorkloadScale(storage_nodes=3))
    return db, workload


def _run(db, workload, duration: float = 4.0):
    config = ServingConfig(
        mode="closed",
        clients=6,
        think_time_seconds=0.1,
        duration_seconds=duration,
        telemetry_enabled=True,
        seed=2,
    )
    return ServingSimulation(db, workload, config).run()


class TestConfig:
    def test_maintenance_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ServingConfig(engine_maintenance_interval_seconds=0.0)


class TestLsmServingRun:
    @pytest.fixture(scope="class")
    def lsm_run(self, tmp_path_factory):
        db, workload = _build_db(tmp_path_factory.mktemp("engine"), "lsm")
        backlog_before = db.cluster.engine_maintenance_backlog()
        report = _run(db, workload)
        yield db, report, backlog_before
        db.cluster.close()

    def test_kernel_drains_the_compaction_backlog(self, lsm_run):
        db, report, backlog_before = lsm_run
        assert backlog_before > 0
        assert db.cluster.engine_maintenance_backlog() == 0
        counters = db.cluster.metrics.counters()
        assert counters["engine.compactions"] >= 1
        assert any(engine.compactions for engine in db.cluster.engines.values())

    def test_engine_gauges_are_scraped_per_node(self, lsm_run):
        db, report, _ = lsm_run
        store = report.telemetry.store
        label_sets = store.label_sets("engine.memtable_bytes")
        assert len(label_sets) == len(db.cluster.nodes)
        for name in (
            "engine.wal_bytes",
            "engine.segment_count",
            "engine.segment_bytes",
            "engine.compaction_backlog",
            "engine.compactions",
        ):
            assert store.label_sets(name), name
        labels = dict(label_sets[0])
        assert store.latest_value("engine.segment_count", labels) > 0
        # The backlog series must show the kernel's drain: its final value
        # is zero even though segments existed at the start.
        assert store.latest_value("engine.compaction_backlog", labels) == 0

    def test_dashboard_renders_storage_engine_section(self, lsm_run):
        _, report, _ = lsm_run
        dashboard = report.telemetry.dashboard()
        assert "STORAGE ENGINE" in dashboard
        assert "memtable" in dashboard
        assert "seg bytes" in dashboard

    def test_serving_results_unaffected_by_engine(self, lsm_run):
        _, report, _ = lsm_run
        assert report.log.completed > 0
        assert report.overall_compliance > 0.9


class TestDictServingRun:
    def test_dict_engine_stays_invisible(self, tmp_path):
        db, workload = _build_db(tmp_path, "dict")
        report = _run(db, workload, duration=2.0)
        store = report.telemetry.store
        # The dict engine reports only its resident-key gauge — none of the
        # durable machinery (memtable/WAL/segments) appears, so the
        # dashboard's STORAGE ENGINE table (keyed off memtable series) is
        # absent too.
        engine_series = {n for n in store.names() if n.startswith("engine.")}
        assert engine_series == {"engine.resident_keys"}
        assert "STORAGE ENGINE" not in report.telemetry.dashboard()
        assert report.log.completed > 0
