"""Serving-tier failover: fault timelines driven through the simulation."""

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.prediction.slo import ServiceLevelObjective
from repro.replication import FaultSpec, crash_recover_timeline
from repro.serving import (
    AutoscaleConfig,
    Autoscaler,
    ServingConfig,
    run_serving_simulation,
)
from repro.workloads import ScadrWorkload, WorkloadScale

SLO = ServiceLevelObjective(quantile=0.99, latency_seconds=0.2,
                            interval_seconds=4.0)


def loaded_db(storage_nodes=4, replication=3):
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=storage_nodes,
            replication=replication,
            read_quorum=2,
            write_quorum=2,
            node_capacity_ops_per_second=600.0,
            seed=5,
        )
    )
    workload = ScadrWorkload(thoughts_per_user=5, subscriptions_per_user=3,
                             max_subscriptions=10)
    workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=20,
                                     seed=5))
    return db, workload


class TestFaultTimelineInSimulation:
    def test_crash_recover_keeps_serving(self):
        db, workload = loaded_db()
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=20,
                think_time_seconds=0.4,
                duration_seconds=12.0,
                slo=SLO,
                faults=crash_recover_timeline(1, 4.0, 8.0),
                seed=3,
            ),
        )
        assert report.completed > 0
        # One crashed node of four never breaks an R=W=2 quorum.
        assert report.failed == 0
        assert report.availability == 1.0
        assert [e.kind for e in report.fault_events] == ["crash", "recover"]
        assert report.repair is not None
        assert db.cluster.node(1).up

    def test_unrecovered_crashes_surface_as_failures(self):
        db, workload = loaded_db()
        prefs_probe = db.cluster.replication
        # Crash two nodes and never recover them: some keys keep only one
        # up replica, so R=2 reads on them must fail, and the driver records
        # the typed failures instead of dying.
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=10,
                think_time_seconds=0.2,
                duration_seconds=8.0,
                slo=SLO,
                faults=[
                    FaultSpec(time=2.0, kind="crash", node_id=0),
                    FaultSpec(time=2.5, kind="crash", node_id=1),
                ],
                seed=3,
            ),
        )
        assert report.failed > 0
        assert report.availability < 1.0
        assert report.completed + report.failed > 0
        assert prefs_probe is db.cluster.replication

    def test_slow_node_fault_degrades_latency(self):
        results = {}
        for label, faults in (
            ("healthy", ()),
            ("slow", [FaultSpec(time=2.0, kind="slow", node_id=0,
                                factor=10.0)]),
        ):
            db, workload = loaded_db()
            report = run_serving_simulation(
                db,
                workload,
                ServingConfig(
                    mode="closed",
                    clients=20,
                    think_time_seconds=0.3,
                    duration_seconds=10.0,
                    slo=SLO,
                    faults=faults,
                    seed=4,
                ),
            )
            results[label] = report.response_percentile_ms(0.95)
        assert results["slow"] > results["healthy"]


class TestAutoscalerReplicationGuard:
    def test_no_scale_down_below_up_replicas(self):
        db, _ = loaded_db(storage_nodes=4, replication=3)
        cluster = db.cluster
        autoscaler = Autoscaler(
            cluster,
            AutoscaleConfig(high_utilization=0.9, low_utilization=0.5,
                            cooldown_seconds=0.0, warmup_seconds=0.0),
        )
        cluster.crash_node(0)
        # Utilisation is 0 (idle) which is below low_utilization, but the
        # guard must refuse: removing the tail would leave 2 up < N=3.
        action = autoscaler.evaluate(now=10.0)
        assert action is None
        assert len(cluster.nodes) == 4

        cluster.recover_node(0)
        action = autoscaler.evaluate(now=20.0)
        assert action is not None and action.action == "remove"
        assert len(cluster.nodes) == 3
