"""Tests for the per-node request queues (the queue-aware latency model)."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, KeyValueCluster
from repro.serving import NodeRequestQueue, install_queues, refresh_utilization, remove_queues


class TestNodeRequestQueue:
    def test_idle_queue_charges_no_wait(self):
        queue = NodeRequestQueue(bucket_seconds=0.05)
        assert queue.on_request(0.0, 0.002) == 0.0
        assert queue.on_request(10.0, 0.002) == 0.0

    def test_burst_beyond_bucket_capacity_waits(self):
        queue = NodeRequestQueue(bucket_seconds=0.05)
        # 0.04s + 0.04s fill bucket 0 and spill into bucket 1; the third
        # request finds buckets 0 and 1 exhausted only after 0.08s of
        # service is already booked, so it starts in a later bucket.
        assert queue.on_request(0.0, 0.04) == 0.0
        assert queue.on_request(0.0, 0.04) == 0.0
        wait = queue.on_request(0.0, 0.04)
        assert wait == pytest.approx(0.05)
        assert queue.stats.waited == 1
        assert queue.stats.max_backlog_seconds == pytest.approx(wait)

    def test_backlog_drains_with_idle_time(self):
        queue = NodeRequestQueue(bucket_seconds=0.05)
        for _ in range(10):
            queue.on_request(0.0, 0.05)  # half a second of work at t=0
        assert queue.backlog_seconds(0.1) > 0.0
        # Long after the backlog cleared, a new request does not wait.
        assert queue.on_request(5.0, 0.01) == 0.0
        assert queue.backlog_seconds(10.0) == 0.0

    def test_waits_grow_under_sustained_overload(self):
        queue = NodeRequestQueue(bucket_seconds=0.05)
        waits = [queue.on_request(i * 0.01, 0.02) for i in range(50)]
        # Offered load is 2x capacity, so waiting time keeps climbing.
        assert waits[-1] > waits[10] > 0.0

    def test_busy_fraction_tracks_offered_service(self):
        queue = NodeRequestQueue(smoothing_seconds=0.01, bucket_seconds=0.05)
        for i in range(10):
            queue.on_request(i * 0.1, 0.05)  # ~50% busy
        busy = queue.measured_busy_fraction(1.0)
        assert busy == pytest.approx(0.5, abs=0.05)

    def test_busy_fraction_saturates_at_one_in_overload(self):
        queue = NodeRequestQueue(smoothing_seconds=0.01, bucket_seconds=0.05)
        for i in range(100):
            queue.on_request(i * 0.01, 0.05)  # 5x capacity
        assert queue.measured_busy_fraction(1.0) == pytest.approx(1.0)

    def test_measured_rate_counts_arrivals(self):
        queue = NodeRequestQueue(smoothing_seconds=0.01)
        for i in range(20):
            queue.on_request(i * 0.05, 0.001)
        assert queue.measured_rate(1.0) == pytest.approx(20.0, rel=0.05)

    def test_sampling_twice_at_same_instant_is_idempotent(self):
        queue = NodeRequestQueue()
        queue.on_request(0.5, 0.01)
        first = queue.sample(1.0)
        assert queue.sample(1.0) == first


class TestClusterIntegration:
    def test_install_and_remove_queues(self):
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=3, seed=1))
        queues = install_queues(cluster)
        assert set(queues) == {0, 1, 2}
        assert all(node.request_queue is queues[node.node_id]
                   for node in cluster.nodes)
        remove_queues(cluster)
        assert all(node.request_queue is None for node in cluster.nodes)

    def test_charges_include_queue_wait_under_contention(self):
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=1, replication=1, seed=1))
        cluster.create_namespace("ns")
        cluster.load("ns", b"k", b"v")
        baseline = sum(
            cluster.get("ns", b"k", sim_time=100.0 + i).latency_seconds
            for i in range(50)
        )
        install_queues(cluster)
        node = cluster.nodes[0]
        # Everything lands at sim_time 0: far beyond one bucket of capacity.
        contended = sum(
            cluster.get("ns", b"k", sim_time=0.0).latency_seconds for i in range(50)
        )
        assert node.stats.queue_wait_seconds > 0.0
        assert contended > baseline

    def test_refresh_utilization_feeds_nodes_and_returns_busy(self):
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=2, seed=1))
        cluster.create_namespace("ns")
        install_queues(cluster, smoothing_seconds=0.01)
        for i in range(200):
            cluster.get("ns", b"k%d" % i, sim_time=i * 0.001)
        busy = refresh_utilization(cluster, 0.2)
        assert 0.0 < busy <= 1.0
        assert any(node.utilization > 0.0 for node in cluster.nodes)

    def test_without_queues_static_utilization_is_reported(self):
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=2, seed=1))
        cluster.set_offered_load(
            cluster.total_capacity_ops_per_second() * 0.5
        )
        assert refresh_utilization(cluster, 1.0) == pytest.approx(0.5)
