"""Acceptance tests: 50+ concurrent clients on the TPC-W ordering mix.

These are the issue's acceptance criteria for the serving tier: p99
response time rises monotonically as offered load approaches node
capacity, and enabling admission control measurably restores SLO
compliance in overload.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.prediction.slo import ServiceLevelObjective
from repro.serving import ServingConfig, run_serving_simulation
from repro.workloads import TpcwWorkload, WorkloadScale

SLO = ServiceLevelObjective(quantile=0.99, latency_seconds=0.1, interval_seconds=5.0)


@pytest.fixture(scope="module")
def tpcw_serving_db():
    """A small TPC-W database on a low-capacity cluster (saturates early)."""
    db = PiqlDatabase.simulated(
        ClusterConfig(storage_nodes=4, node_capacity_ops_per_second=400.0, seed=5)
    )
    workload = TpcwWorkload()
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=30, items_total=100)
    )
    return db, workload


class TestServingSlo:
    def test_p99_rises_monotonically_with_offered_load(self, tpcw_serving_db):
        db, workload = tpcw_serving_db
        p99s = []
        for rate in (40.0, 120.0, 200.0):
            report = run_serving_simulation(
                db,
                workload,
                ServingConfig(
                    mode="open",
                    clients=50,
                    arrival_rate_per_second=rate,
                    duration_seconds=10.0,
                    slo=SLO,
                    seed=3,
                ),
            )
            assert report.completed > 50
            p99s.append(report.response_percentile_ms(0.99))
        assert p99s[0] < p99s[1] < p99s[2]
        # The last rate is past the knee: latency is not just rising but
        # has left the SLO far behind.
        assert p99s[2] > 10 * p99s[0]

    def test_admission_control_restores_compliance_in_overload(
        self, tpcw_serving_db
    ):
        db, workload = tpcw_serving_db
        compliance = {}
        shed = {}
        for admission in (False, True):
            report = run_serving_simulation(
                db,
                workload,
                ServingConfig(
                    mode="open",
                    clients=50,
                    arrival_rate_per_second=200.0,
                    duration_seconds=12.0,
                    slo=SLO,
                    admission_enabled=admission,
                    seed=3,
                ),
            )
            compliance[admission] = report.overall_compliance
            shed[admission] = report.admission.shed if report.admission else 0
        assert shed[False] == 0
        assert shed[True] > 0
        # The controller refuses part of the offered load and the admitted
        # requests come back into compliance.
        assert compliance[True] > compliance[False] + 0.2

    def test_interval_windows_capture_the_violation(self, tpcw_serving_db):
        db, workload = tpcw_serving_db
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="open",
                clients=50,
                arrival_rate_per_second=200.0,
                duration_seconds=10.0,
                slo=SLO,
                seed=3,
            ),
        )
        assert report.windows, "expected at least one completed SLO interval"
        assert any(window.violated for window in report.windows)

    def test_cluster_is_left_clean_after_a_run(self, tpcw_serving_db):
        db, workload = tpcw_serving_db
        run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="closed",
                clients=50,
                think_time_seconds=0.5,
                duration_seconds=3.0,
                slo=SLO,
                seed=3,
            ),
        )
        assert all(node.request_queue is None for node in db.cluster.nodes)
        assert all(node.utilization == 0.0 for node in db.cluster.nodes)
