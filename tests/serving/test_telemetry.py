"""Acceptance test for the fleet-telemetry subsystem.

One closed-loop serving run with an injected mid-run fault (a node crash
plus a concurrently degraded peer) must yield, from a single artifact:

* per-node time-series that cover the crash window,
* an SLO burn-rate alert that fires *during* the fault and clears after
  repair, and
* a prediction-drift report whose per-class median residuals sit inside
  the latency model's own envelope (the fault hurts tail latency, not the
  model's median truthfulness).
"""

from __future__ import annotations

import json
import random
from typing import Dict, List

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.obs import BurnRateRule, prometheus_text
from repro.prediction import QueryLatencyModel, train_default_model
from repro.prediction.slo import ServiceLevelObjective
from repro.replication import FaultSpec
from repro.serving import ServingConfig, ServingSimulation
from repro.workloads.base import InteractionResult, Workload, WorkloadScale


class PointLookupWorkload(Workload):
    """Single-query workload (mirrors conftest's, importable at module scope)."""

    name = "point-lookup"

    def __init__(self, rows: int = 200):
        self.rows = rows

    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(
            "CREATE TABLE items (id INT, payload VARCHAR(64), PRIMARY KEY (id))"
        )
        db.bulk_load(
            "items",
            ({"id": i, "payload": f"payload-{i}"} for i in range(self.rows)),
        )
        self.prepare_all(db)

    def query_names(self) -> List[str]:
        return ["get_item"]

    def query_sql(self, name: str) -> str:
        return "SELECT * FROM items WHERE id = <id>"

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        return {"id": rng.randrange(self.rows)}

    def interaction(self, db: PiqlDatabase, rng: random.Random) -> InteractionResult:
        result = db.prepare(self.query_sql("get_item")).execute(
            self.sample_parameters("get_item", rng)
        )
        return InteractionResult(
            name="get_item",
            latency_seconds=result.latency_seconds,
            operations=result.operations,
            query_latencies={"get_item": result.latency_seconds},
        )


FAULT_START = 5.0
FAULT_END = 10.0
DURATION = 16.0


@pytest.fixture(scope="module")
def fault_run(tmp_path_factory):
    """One telemetry-enabled serving run with a mid-run fault, run once."""
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=4, node_capacity_ops_per_second=400.0, seed=9
        )
    )
    workload = PointLookupWorkload()
    workload.setup(db, WorkloadScale(storage_nodes=4))
    # A trained latency model makes the auditor feed the drift detector.
    db.auditor.latency_model = QueryLatencyModel(
        train_default_model(db.cluster), db.catalog
    )
    healthy = db.prepare("SELECT * FROM items WHERE id = <id>").execute(
        {"id": 5}
    )
    slo = ServiceLevelObjective(
        quantile=0.9,
        latency_seconds=healthy.latency_seconds * 1.5,
        interval_seconds=4.0,
    )
    simulation = ServingSimulation(
        db,
        workload,
        ServingConfig(
            mode="closed",
            clients=20,
            think_time_seconds=0.2,
            duration_seconds=DURATION,
            slo=slo,
            # Node 1 crashes outright; node 2 degrades 12x at the same
            # moment, so the fault window both blanks a node and burns the
            # latency budget.  Both repair at FAULT_END.
            faults=[
                FaultSpec(time=FAULT_START, kind="crash", node_id=1),
                FaultSpec(time=FAULT_START, kind="slow", node_id=2, factor=12.0),
                FaultSpec(time=FAULT_END, kind="recover", node_id=1),
                FaultSpec(time=FAULT_END, kind="restore", node_id=2),
            ],
            telemetry_enabled=True,
            admission_enabled=True,
            burn_rules=[
                BurnRateRule(fast_seconds=2.0, slow_seconds=4.0, threshold=2.0)
            ],
            seed=3,
        ),
    )
    report = simulation.run()
    artifact_path = tmp_path_factory.mktemp("telemetry") / "telemetry_fault.json"
    report.telemetry.save(str(artifact_path))
    with open(artifact_path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    return simulation, report, artifact


def series(artifact, name, **labels):
    for entry in artifact["series"]:
        if entry["name"] == name and entry["labels"] == labels:
            return entry
    return None


class TestArtifact:
    def test_schema_and_scrape_health(self, fault_run):
        _, report, artifact = fault_run
        assert artifact["schema"] == "fleet-telemetry/v1"
        assert artifact["scrapes"] == report.telemetry.collector.scrapes
        assert artifact["scrapes"] >= DURATION / 0.5
        assert artifact["last_scrape_seconds"] == pytest.approx(DURATION)
        assert artifact["dropped_series"] == 0

    def test_per_node_series_cover_the_crash_window(self, fault_run):
        _, _, artifact = fault_run
        for node_id in range(4):
            entry = series(artifact, "node.up", node=str(node_id))
            assert entry is not None, f"node {node_id} has no node.up series"
            assert entry["points"], f"node {node_id} series is empty"
        crashed = series(artifact, "node.up", node="1")["points"]
        in_window = [
            p["last"]
            for p in crashed
            if FAULT_START <= p["start"] < FAULT_END
        ]
        outside = [
            p["last"]
            for p in crashed
            if p["start"] < FAULT_START or p["start"] >= FAULT_END
        ]
        assert in_window and all(v == 0.0 for v in in_window)
        assert outside and all(v == 1.0 for v in outside)
        # The healthy peers never blink.
        for node_id in (0, 3):
            points = series(artifact, "node.up", node=str(node_id))["points"]
            assert all(p["last"] == 1.0 for p in points)

    def test_queue_and_replication_series_present(self, fault_run):
        _, _, artifact = fault_run
        names = {entry["name"] for entry in artifact["series"]}
        assert "node.utilization" in names
        assert "node.queue.backlog_seconds" in names
        assert "replication.hint_backlog" in names
        assert "serving.slo.total" in names
        assert "admission.shed_probability" in names


class TestBurnRateAlert:
    def test_alert_fires_during_fault_and_clears_after_repair(self, fault_run):
        simulation, report, artifact = fault_run
        alerts = report.telemetry.alerts
        assert len(alerts) == 1
        alert = alerts[0]
        assert FAULT_START < alert.fired_at < FAULT_END
        assert alert.cleared_at is not None
        assert alert.cleared_at > FAULT_END
        assert alert.peak_fast_burn >= alert.rule.threshold
        # The artifact carries the same timeline.
        (exported,) = artifact["alerts"]
        assert exported["rule"] == alert.rule.name
        assert exported["fired_at"] == alert.fired_at
        assert exported["cleared_at"] == alert.cleared_at

    def test_monitor_sink_received_the_alert(self, fault_run):
        simulation, report, _ = fault_run
        assert simulation.monitor.alerts == report.telemetry.alerts

    def test_admission_controller_was_pre_armed(self, fault_run):
        simulation, _, _ = fault_run
        # The alerter seeds shed probability on firing; the controller may
        # decay it later, but the pre-arm path must have engaged.
        assert simulation.telemetry.alerter.admission is simulation.admission


class TestDriftReport:
    def test_every_class_median_inside_envelope(self, fault_run):
        _, report, artifact = fault_run
        drift_reports = report.telemetry.drift.report()
        assert drift_reports, "drift detector saw no queries"
        for drift in drift_reports:
            assert drift.observations >= 8
            assert (
                drift.envelope.low_residual
                <= drift.median_residual_seconds
                <= drift.envelope.high_residual
            )
            assert not drift.drifting
        assert not report.telemetry.drift.any_drifting
        exported = artifact["drift"]
        assert len(exported) == len(drift_reports)
        assert all(not entry["drifting"] for entry in exported)


class TestRendering:
    def test_dashboard_renders_the_incident(self, fault_run):
        _, report, _ = fault_run
        text = report.dashboard()
        assert "FLEET TELEMETRY" in text
        assert "SLO BURN" in text
        assert "burn[2s/4s]x2" in text
        assert "PREDICTION DRIFT" in text
        for node_id in range(4):
            assert f" {node_id} " in text or f"node {node_id}" in text

    def test_prometheus_exposition(self, fault_run):
        _, report, _ = fault_run
        text = prometheus_text(report.telemetry.store)
        assert 'node_up{node="1"}' in text
        assert "serving_slo_total" in text


class TestBreakerTelemetry:
    """The collector turns live breaker boards into per-node gauges."""

    def make_stack(self):
        from repro.kvstore import KeyValueCluster
        from repro.obs import FleetTelemetry, TelemetryCollector, TimeSeriesStore
        from repro.resilience.breaker import BreakerBoard

        cluster = KeyValueCluster(ClusterConfig(storage_nodes=3, seed=2))
        store = TimeSeriesStore(resolution_seconds=0.5)
        boards = [
            BreakerBoard(failure_threshold=1, open_seconds=10.0)
            for _ in range(2)
        ]
        collector = TelemetryCollector(
            store, cluster=cluster, breakers_fn=lambda: boards
        )
        telemetry = FleetTelemetry(store, collector)
        return store, boards, collector, telemetry

    def test_open_breakers_become_labelled_gauges(self):
        store, boards, collector, _ = self.make_stack()
        collector.scrape(0.0)
        # Healthy: every node reports an explicit zero, not absence.
        for node_id in range(3):
            points = store.points(
                "resilience.breaker.open_clients", {"node": node_id}
            )
            assert points and points[-1].last == 0.0
        assert store.latest_value("resilience.breaker.boards") == 2.0

        boards[0].record_failure(1, 1.0)  # client 0 fences node 1
        boards[1].record_failure(1, 1.0)  # client 1 agrees
        collector.scrape(1.0)
        points = store.points(
            "resilience.breaker.open_clients", {"node": 1}
        )
        assert points[-1].last == 2.0
        points = store.points(
            "resilience.breaker.open_clients", {"node": 0}
        )
        assert points[-1].last == 0.0

    def test_dashboard_renders_breaker_section(self):
        store, boards, collector, telemetry = self.make_stack()
        collector.scrape(0.0)
        boards[0].record_failure(2, 1.0)
        collector.scrape(1.0)
        text = telemetry.dashboard()
        assert "BREAKERS (2 client boards)" in text
        assert "open history" in text

    def test_dashboard_omits_section_without_breaker_series(self):
        from repro.kvstore import KeyValueCluster
        from repro.obs import FleetTelemetry, TelemetryCollector, TimeSeriesStore

        cluster = KeyValueCluster(ClusterConfig(storage_nodes=3, seed=2))
        store = TimeSeriesStore()
        collector = TelemetryCollector(store, cluster=cluster)
        collector.scrape(0.0)
        assert "BREAKERS" not in FleetTelemetry(store, collector).dashboard()
