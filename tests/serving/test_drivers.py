"""Tests for the open- and closed-loop load generators."""

from __future__ import annotations

import pytest

from repro.prediction.slo import ServiceLevelObjective
from repro.serving import (
    ClosedLoopDriver,
    OpenLoopDriver,
    SLOMonitor,
    Simulation,
    TrafficLog,
)


class TestClosedLoop:
    def test_every_client_participates_with_its_own_clock(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        driver = ClosedLoopDriver(
            sim, db, workload, clients=10, think_time_seconds=0.1, seed=4
        )
        driver.start()
        sim.run(until=5.0)
        assert {r.client_id for r in driver.log.records} == set(range(10))
        # Each server is an independent database view with a private clock.
        clocks = {id(s.db.client.clock) for s in driver.servers}
        assert len(clocks) == 10
        assert all(s.db.client.clock.now > 0 for s in driver.servers)
        assert all(
            r.completion_seconds >= r.arrival_seconds for r in driver.log.records
        )

    def test_think_time_limits_throughput(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        driver = ClosedLoopDriver(
            sim, db, workload, clients=5, think_time_seconds=1.0, seed=4
        )
        driver.start()
        sim.run(until=10.0)
        # 5 clients with ~1s think + a few ms of service: ~5/s max.
        assert 10 <= driver.log.completed <= 70

    def test_monitor_sees_every_completion(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        monitor = SLOMonitor(
            ServiceLevelObjective(quantile=0.9, latency_seconds=0.1,
                                  interval_seconds=5.0)
        )
        driver = ClosedLoopDriver(
            sim, db, workload, clients=5, think_time_seconds=0.2, seed=4,
            monitor=monitor,
        )
        driver.start()
        sim.run(until=5.0)
        # Observations arrive at completion time, so anything still in
        # flight at the horizon is logged but never observed.
        assert 0 < monitor.total_observations <= driver.log.completed
        assert monitor.total_observations >= driver.log.completed - 5

    def test_deterministic_given_seed(self, point_db_factory):
        runs = []
        for _ in range(2):
            db, workload = point_db_factory()
            sim = Simulation()
            driver = ClosedLoopDriver(
                sim, db, workload, clients=8, think_time_seconds=0.1, seed=21
            )
            driver.start()
            sim.run(until=4.0)
            runs.append(
                [(r.client_id, r.arrival_seconds, r.response_seconds)
                 for r in driver.log.records]
            )
        assert runs[0] == runs[1]


class TestOpenLoop:
    def test_arrival_count_tracks_rate(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        driver = OpenLoopDriver(
            sim, db, workload, arrival_rate_per_second=50.0, servers=20, seed=6
        )
        driver.start()
        sim.run(until=10.0)
        # Poisson(500) arrivals; a 5-sigma band keeps this deterministic
        # test comfortably away from flakiness.
        assert 380 <= driver.log.completed <= 620

    def test_response_includes_dispatch_wait(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        # One server and a high rate: most requests queue behind it.
        driver = OpenLoopDriver(
            sim, db, workload, arrival_rate_per_second=400.0, servers=1, seed=6
        )
        driver.start()
        sim.run(until=2.0)
        waits = [r.queue_wait_seconds for r in driver.log.records]
        assert max(waits) > 0.0
        assert all(
            r.response_seconds >= r.service_seconds - 1e-12
            for r in driver.log.records
        )

    def test_set_rate_changes_offered_load(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        driver = OpenLoopDriver(
            sim, db, workload, arrival_rate_per_second=10.0, servers=20, seed=6
        )
        driver.start()
        sim.schedule_at(5.0, lambda s: driver.set_rate(200.0))
        sim.run(until=10.0)
        first_half = sum(
            1 for r in driver.log.records if r.arrival_seconds < 5.0
        )
        second_half = driver.log.completed - first_half
        assert second_half > first_half * 5

    def test_shared_log_accumulates(self, point_db_factory):
        db, workload = point_db_factory()
        log = TrafficLog()
        sim = Simulation()
        driver = OpenLoopDriver(
            sim, db, workload, arrival_rate_per_second=20.0, servers=5, seed=6,
            log=log,
        )
        driver.start()
        sim.run(until=2.0)
        assert log.completed == driver.log.completed > 0
        assert log.response_percentile(0.5) > 0.0

    def test_invalid_configs_rejected(self, point_db_factory):
        db, workload = point_db_factory()
        sim = Simulation()
        with pytest.raises(ValueError):
            OpenLoopDriver(sim, db, workload, arrival_rate_per_second=0.0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(sim, db, workload, clients=0)
