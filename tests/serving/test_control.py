"""Tests for the admission-control and autoscaling control loops."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, KeyValueCluster
from repro.prediction.slo import SLOPrediction, ServiceLevelObjective
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AutoscaleConfig,
    Autoscaler,
    NodeRequestQueue,
    SLOMonitor,
    install_queues,
)

SLO = ServiceLevelObjective(quantile=0.9, latency_seconds=0.1, interval_seconds=10.0)


def violating_monitor(now: float = 1.0) -> SLOMonitor:
    monitor = SLOMonitor(SLO, control_window_seconds=10.0, min_samples=10)
    for i in range(30):
        monitor.record(now - 0.5 + i * 0.01, 1.0)  # 10x over the objective
    return monitor


def healthy_monitor(now: float = 1.0) -> SLOMonitor:
    monitor = SLOMonitor(SLO, control_window_seconds=10.0, min_samples=10)
    for i in range(30):
        monitor.record(now - 0.5 + i * 0.01, 0.01)
    return monitor


class TestAdmissionController:
    def test_shed_probability_ramps_up_under_violation(self):
        controller = AdmissionController(violating_monitor())
        assert controller.shed_probability == 0.0
        controller.update(1.0)
        assert controller.shed_probability > 0.0
        for tick in range(5):
            controller.update(1.0 + tick * 0.5)
        assert controller.shed_probability == pytest.approx(
            controller.config.max_shed_probability
        )

    def test_shed_probability_decays_when_healthy(self):
        controller = AdmissionController(healthy_monitor())
        controller.shed_probability = 0.5
        controller.update(1.0)
        assert controller.shed_probability == pytest.approx(
            0.5 - controller.config.decay
        )
        for tick in range(10):
            controller.update(1.0 + tick * 0.1)
        assert controller.shed_probability == 0.0

    def test_no_samples_means_no_shedding(self):
        monitor = SLOMonitor(SLO, min_samples=10)
        controller = AdmissionController(monitor)
        controller.update(1.0)
        assert controller.shed_probability == 0.0
        assert controller.decide(1.0) is AdmissionDecision.ADMIT

    def test_decisions_follow_shed_probability(self):
        controller = AdmissionController(violating_monitor())
        for tick in range(10):
            controller.update(1.0 + tick * 0.1)
        decisions = [controller.decide(2.0) for _ in range(200)]
        shed = sum(1 for d in decisions if d is AdmissionDecision.SHED)
        # At max_shed_probability=0.95 nearly everything is refused, but a
        # trickle always gets through.
        assert 150 <= shed < 200
        assert controller.counters.shed == shed
        assert controller.counters.offered == 200

    def test_backlog_beyond_limit_sheds_outright(self):
        controller = AdmissionController(
            healthy_monitor(), config=AdmissionConfig(queue_limit_seconds=1.0)
        )
        assert controller.decide(1.0, backlog_seconds=2.0) is AdmissionDecision.SHED

    def test_backlog_below_limit_queues(self):
        controller = AdmissionController(healthy_monitor())
        assert controller.decide(1.0, backlog_seconds=0.5) is AdmissionDecision.QUEUE
        assert controller.counters.queued == 1

    def test_prediction_warm_start(self):
        prediction = SLOPrediction(
            quantile=0.9,
            # Half the forecast intervals violate the 100 ms objective.
            interval_quantiles_seconds=[0.05, 0.2, 0.05, 0.2],
        )
        controller = AdmissionController(
            SLOMonitor(SLO), prediction=prediction
        )
        assert controller.shed_probability == pytest.approx(0.5)

    def test_breaker_pressure_disabled_by_default(self):
        controller = AdmissionController(healthy_monitor())
        assert controller.note_breaker_pressure(0.5) == 0.0
        assert controller.shed_probability == 0.0

    def test_breaker_pressure_pre_arms_shedding(self):
        controller = AdmissionController(
            healthy_monitor(),
            config=AdmissionConfig(breaker_pressure_gain=0.8),
        )
        assert controller.note_breaker_pressure(0.5) == pytest.approx(0.4)
        assert controller.shed_probability == pytest.approx(0.4)

    def test_breaker_pressure_never_lowers_shed_probability(self):
        controller = AdmissionController(
            healthy_monitor(),
            config=AdmissionConfig(breaker_pressure_gain=1.0),
        )
        controller.shed_probability = 0.7
        assert controller.note_breaker_pressure(0.1) == pytest.approx(0.7)
        assert controller.shed_probability == pytest.approx(0.7)

    def test_breaker_pressure_fraction_clamped_to_one(self):
        controller = AdmissionController(
            healthy_monitor(),
            config=AdmissionConfig(breaker_pressure_gain=0.5),
        )
        assert controller.note_breaker_pressure(3.0) == pytest.approx(0.5)


class TestAutoscaler:
    def make_cluster(self, nodes: int = 4) -> KeyValueCluster:
        return KeyValueCluster(
            ClusterConfig(storage_nodes=nodes, replication=2, seed=3)
        )

    def saturate(self, cluster: KeyValueCluster, busy: float, now: float) -> None:
        """Pump each node's queue so its smoothed busy fraction is ``busy``."""
        for node in cluster.nodes:
            queue = node.request_queue
            assert isinstance(queue, NodeRequestQueue)
            queue.reset()
            total = busy * now
            charged = 0.0
            step = 0.01
            t = 0.0
            while charged < total:
                queue.on_request(t, step)
                charged += step
                t += step / busy
            queue.sample(now)

    def test_scales_up_under_high_utilization(self):
        cluster = self.make_cluster()
        install_queues(cluster, smoothing_seconds=0.01)
        scaler = Autoscaler(
            cluster, AutoscaleConfig(high_utilization=0.7, cooldown_seconds=1.0)
        )
        self.saturate(cluster, busy=0.95, now=10.0)
        action = scaler.evaluate(10.0)
        assert action is not None and action.action == "add"
        assert len(cluster.nodes) == 5
        # The new node got a queue so it participates in measurement.
        assert isinstance(cluster.nodes[-1].request_queue, NodeRequestQueue)

    def test_cooldown_blocks_back_to_back_actions(self):
        cluster = self.make_cluster()
        install_queues(cluster, smoothing_seconds=0.01)
        scaler = Autoscaler(
            cluster, AutoscaleConfig(high_utilization=0.7, cooldown_seconds=5.0)
        )
        self.saturate(cluster, busy=0.95, now=10.0)
        assert scaler.evaluate(10.0) is not None
        assert scaler.evaluate(12.0) is None  # still cooling down
        self.saturate(cluster, busy=0.95, now=16.0)
        assert scaler.evaluate(16.0) is not None

    def test_scales_down_when_idle_but_not_below_replication(self):
        cluster = self.make_cluster(nodes=3)
        install_queues(cluster, smoothing_seconds=0.01)
        scaler = Autoscaler(
            cluster,
            AutoscaleConfig(
                low_utilization=0.3, cooldown_seconds=0.5, warmup_seconds=1.0
            ),
        )
        action = scaler.evaluate(10.0)
        assert action is not None and action.action == "remove"
        assert len(cluster.nodes) == 2
        # Floor: never below the replication factor.
        assert scaler.evaluate(20.0) is None
        assert len(cluster.nodes) == 2

    def test_no_scale_down_during_warmup(self):
        cluster = self.make_cluster()
        install_queues(cluster, smoothing_seconds=0.01)
        scaler = Autoscaler(
            cluster, AutoscaleConfig(low_utilization=0.3, warmup_seconds=30.0)
        )
        assert scaler.evaluate(10.0) is None
        assert len(cluster.nodes) == 4

    def test_actions_are_logged(self):
        cluster = self.make_cluster()
        install_queues(cluster, smoothing_seconds=0.01)
        scaler = Autoscaler(
            cluster, AutoscaleConfig(high_utilization=0.7, cooldown_seconds=0.1)
        )
        self.saturate(cluster, busy=0.95, now=10.0)
        scaler.evaluate(10.0)
        assert len(scaler.actions) == 1
        assert scaler.actions[0].nodes_after == 5
        assert scaler.actions[0].utilization > 0.7
