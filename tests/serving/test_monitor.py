"""Tests for the sliding-window SLO monitor."""

from __future__ import annotations

import pytest

from repro.prediction.slo import SLOPrediction, ServiceLevelObjective
from repro.serving import SLOMonitor


def make_monitor(**kwargs) -> SLOMonitor:
    slo = ServiceLevelObjective(
        quantile=0.9, latency_seconds=0.1, interval_seconds=10.0
    )
    return SLOMonitor(slo, **kwargs)


class TestLiveSignals:
    def test_percentile_over_recent_window(self):
        monitor = make_monitor(control_window_seconds=5.0)
        for i in range(10):
            monitor.record(1.0 + i * 0.1, 0.01 * (i + 1))
        assert monitor.percentile(0.5, 2.0) == pytest.approx(0.06)
        assert monitor.percentile(1.0, 2.0) == pytest.approx(0.10)

    def test_old_samples_age_out_of_the_control_window(self):
        monitor = make_monitor(control_window_seconds=1.0)
        monitor.record(0.0, 5.0)  # terrible, but ancient
        for i in range(30):
            monitor.record(4.0 + i * 0.01, 0.01)
        assert monitor.percentile(1.0, 4.3) == pytest.approx(0.01)

    def test_violated_requires_min_samples(self):
        monitor = make_monitor(min_samples=20)
        for i in range(10):
            monitor.record(i * 0.01, 9.9)  # way over, but too few samples
        assert not monitor.violated(0.1)
        for i in range(10, 25):
            monitor.record(i * 0.01, 9.9)
        assert monitor.violated(0.25)

    def test_recent_compliance(self):
        monitor = make_monitor(control_window_seconds=10.0)
        for i in range(8):
            monitor.record(i * 0.1, 0.01)
        for i in range(2):
            monitor.record(1.0 + i * 0.1, 1.0)
        assert monitor.recent_compliance(1.2) == pytest.approx(0.8)


class TestIntervalReports:
    def test_windows_bin_by_slo_interval(self):
        monitor = make_monitor()
        for i in range(10):
            monitor.record(float(i), 0.05)  # interval 0: all compliant
        for i in range(10):
            monitor.record(10.0 + i, 0.2)  # interval 1: all violating
        reports = monitor.finalize()
        assert [r.index for r in reports] == [0, 1]
        assert reports[0].count == 10
        assert not reports[0].violated
        assert reports[0].compliance == 1.0
        assert reports[1].violated
        assert reports[1].compliance == 0.0
        assert reports[1].quantile_seconds == pytest.approx(0.2)
        assert reports[1].start_seconds == pytest.approx(10.0)

    def test_empty_intervals_are_skipped(self):
        monitor = make_monitor()
        monitor.record(1.0, 0.05)
        monitor.record(35.0, 0.05)  # intervals 1 and 2 are silent
        reports = monitor.finalize()
        assert [r.index for r in reports] == [0, 3]

    def test_overall_compliance(self):
        monitor = make_monitor()
        for i in range(3):
            monitor.record(float(i), 0.05)
        monitor.record(3.0, 0.5)
        assert monitor.overall_compliance == pytest.approx(0.75)


class TestPredictionComparison:
    def test_compare_to_prediction(self):
        monitor = make_monitor()
        for i in range(10):
            monitor.record(float(i), 0.04)
        for i in range(10):
            monitor.record(10.0 + i, 0.30)
        prediction = SLOPrediction(
            quantile=0.9, interval_quantiles_seconds=[0.05, 0.06, 0.05]
        )
        comparison = monitor.compare_to_prediction(prediction)
        assert comparison.predicted_max_seconds == pytest.approx(0.06)
        assert comparison.observed_max_seconds == pytest.approx(0.30)
        assert comparison.intervals_compared == 2
        assert comparison.intervals_over_prediction == 1
        assert comparison.fraction_over_prediction == pytest.approx(0.5)

    def test_compare_requires_observations(self):
        monitor = make_monitor()
        prediction = SLOPrediction(quantile=0.9, interval_quantiles_seconds=[0.05])
        with pytest.raises(ValueError):
            monitor.compare_to_prediction(prediction)


class TestFailureAccounting:
    def test_failures_stay_out_of_latency_statistics(self):
        monitor = make_monitor()
        for i in range(10):
            monitor.record(float(i), 0.05)
        monitor.record_failure(5.0)
        monitor.record_failure(6.0)
        # Percentiles and compliance remain statements about *completed*
        # requests; failures are tracked separately for the error budget.
        assert monitor.total_observations == 10
        assert monitor.total_failed == 2
        assert monitor.overall_compliance == pytest.approx(1.0)

    def test_failures_burn_the_scraped_error_budget(self):
        from repro.obs.telemetry import TelemetryCollector
        from repro.obs.timeseries import TimeSeriesStore

        monitor = make_monitor()
        store = TimeSeriesStore(resolution_seconds=1.0)
        collector = TelemetryCollector(store, monitor=monitor)
        collector.scrape(0.5)  # baseline scrape: all counters at zero
        for i in range(8):
            monitor.record(1.0 + i, 0.05)
        for _ in range(2):
            monitor.record_failure(8.0)
        collector.scrape(10.0)
        total = store.counter_delta("serving.slo.total", 0.0, 11.0)
        good = store.counter_delta("serving.slo.good", 0.0, 11.0)
        # The scraped totals include the failed interactions, so burn-rate
        # alerting sees fast-dying requests even though no latency sample
        # exists for them.
        assert total == pytest.approx(10.0)
        assert good == pytest.approx(8.0)
