"""Tests for the discrete-event kernel (ordering is everything)."""

from __future__ import annotations

import pytest

from repro.serving import EventQueue, Simulation


class TestEventQueue:
    def test_pops_in_time_order_regardless_of_push_order(self):
        queue = EventQueue()
        for time in (5.0, 1.0, 3.0, 2.0, 4.0):
            queue.push(time, lambda sim: None)
        assert [queue.pop().time for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_equal_times_pop_fifo(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda sim: None, name="first")
        second = queue.push(1.0, lambda sim: None, name="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-0.1, lambda sim: None)


class TestSimulation:
    def test_actions_run_in_time_order(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(2.0, lambda s: seen.append("late"))
        sim.schedule_at(1.0, lambda s: seen.append("early"))
        processed = sim.run()
        assert processed == 2
        assert seen == ["early", "late"]
        assert sim.now == 2.0

    def test_actions_can_schedule_more_events(self):
        sim = Simulation()
        seen = []

        def chain(s: Simulation) -> None:
            seen.append(s.now)
            if s.now < 3.0:
                s.schedule_in(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_run_until_leaves_future_events_queued(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(1.0, lambda s: seen.append(1.0))
        sim.schedule_at(10.0, lambda s: seen.append(10.0))
        sim.run(until=5.0)
        assert seen == [1.0]
        assert sim.now == 5.0
        assert len(sim.queue) == 1

    def test_run_until_past_all_events_advances_clock_to_until(self):
        sim = Simulation()
        sim.schedule_at(1.0, lambda s: None)
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulation()
        sim.schedule_at(2.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda s: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda s: None)

    def test_stop_halts_the_loop(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(1.0, lambda s: (seen.append(1), s.stop()))
        sim.schedule_at(2.0, lambda s: seen.append(2))
        sim.run()
        assert seen == [1]
        assert len(sim.queue) == 1

    def test_max_events_bounds_processing(self):
        sim = Simulation()
        for t in range(5):
            sim.schedule_at(float(t), lambda s: None)
        assert sim.run(max_events=3) == 3
        assert len(sim.queue) == 2

    def test_interleaves_many_client_timelines(self):
        """Two 'clients' with different step sizes interleave correctly."""
        sim = Simulation()
        order = []

        def make_client(name: str, step: float, stop_at: float):
            def tick(s: Simulation) -> None:
                order.append((name, round(s.now, 6)))
                if s.now + step <= stop_at:
                    s.schedule_in(step, tick)

            return tick

        sim.schedule_at(0.0, make_client("a", 0.3, 1.0))
        sim.schedule_at(0.0, make_client("b", 0.5, 1.0))
        sim.run()
        assert order == [
            ("a", 0.0), ("b", 0.0),
            ("a", 0.3), ("b", 0.5), ("a", 0.6), ("a", 0.9), ("b", 1.0),
        ]
