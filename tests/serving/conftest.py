"""Fixtures for the serving-tier tests.

Most serving tests use a deliberately tiny workload (one table, one point
query) so they exercise the kernel/queueing/control machinery without
paying for TPC-W data generation; the acceptance test in
``test_serving_slo.py`` builds the real TPC-W mix.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.workloads.base import InteractionResult, Workload, WorkloadScale


class PointLookupWorkload(Workload):
    """Minimal workload: every interaction is one primary-key lookup."""

    name = "point-lookup"

    def __init__(self, rows: int = 200):
        self.rows = rows

    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(
            "CREATE TABLE items (id INT, payload VARCHAR(64), PRIMARY KEY (id))"
        )
        db.bulk_load(
            "items",
            ({"id": i, "payload": f"payload-{i}"} for i in range(self.rows)),
        )
        self.prepare_all(db)

    def query_names(self) -> List[str]:
        return ["get_item"]

    def query_sql(self, name: str) -> str:
        assert name == "get_item"
        return "SELECT * FROM items WHERE id = <id>"

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        return {"id": rng.randrange(self.rows)}

    def interaction(self, db: PiqlDatabase, rng: random.Random) -> InteractionResult:
        result = db.prepare(self.query_sql("get_item")).execute(
            self.sample_parameters("get_item", rng)
        )
        return InteractionResult(
            name="get_item",
            latency_seconds=result.latency_seconds,
            operations=result.operations,
            query_latencies={"get_item": result.latency_seconds},
        )


def build_point_db(
    storage_nodes: int = 4,
    node_capacity_ops_per_second: float = 500.0,
    seed: int = 9,
):
    """A fresh tiny database + workload (fresh ⇒ deterministic rng streams)."""
    db = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=storage_nodes,
            node_capacity_ops_per_second=node_capacity_ops_per_second,
            seed=seed,
        )
    )
    workload = PointLookupWorkload()
    workload.setup(db, WorkloadScale(storage_nodes=storage_nodes))
    return db, workload


@pytest.fixture
def point_db():
    return build_point_db()


@pytest.fixture
def point_db_factory():
    """The factory itself, for tests that need several fresh databases."""
    return build_point_db
