"""Unit tests for the PIQL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.schema.types import BooleanType, IntType, VarcharType
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse, parse_select


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT * FROM users WHERE a = 1")
        kinds = [t.kind for t in tokens]
        assert kinds[:2] == ["KEYWORD", "OP"]
        assert kinds[-1] == "EOF"

    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select From")
        assert tokens[0].value == "SELECT"
        assert tokens[1].value == "FROM"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "STRING"
        assert tokens[1].value == "it's"

    def test_named_parameter(self):
        tokens = tokenize("WHERE a = <uname>")
        assert any(t.kind == "NAMED_PARAM" and t.value == "uname" for t in tokens)

    def test_less_than_is_not_a_parameter(self):
        tokens = tokenize("WHERE a < b AND c > d")
        assert not any(t.kind == "NAMED_PARAM" for t in tokens)

    def test_comments_skipped(self):
        tokens = tokenize("SELECT * -- trailing comment\nFROM t")
        assert all(t.kind != "COMMENT" for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @foo")


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_select("SELECT * FROM users WHERE username = <uname>")
        assert isinstance(stmt, ast.SelectStatement)
        assert stmt.tables == [ast.TableRef("users", None)]
        assert isinstance(stmt.select_items[0], ast.Star)
        assert isinstance(stmt.where[0], ast.Comparison)

    def test_column_list_and_aliases(self):
        stmt = parse_select(
            "SELECT i.I_TITLE, A_FNAME FROM item i JOIN author a "
            "WHERE i.I_A_ID = a.A_ID"
        )
        assert stmt.tables == [ast.TableRef("item", "i"), ast.TableRef("author", "a")]
        first = stmt.select_items[0]
        assert isinstance(first, ast.ColumnRef) and first.table == "i"

    def test_qualified_star(self):
        stmt = parse_select("SELECT thoughts.* FROM thoughts WHERE owner = 'a' LIMIT 5")
        assert stmt.select_items[0] == ast.Star(table="thoughts")

    def test_order_by_and_limit(self):
        stmt = parse_select(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 10"
        )
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == ast.LimitClause(10, paginate=False)

    def test_paginate_clause(self):
        stmt = parse_select("SELECT * FROM thoughts WHERE owner = <u> PAGINATE 20")
        assert stmt.limit.paginate is True
        assert stmt.limit.count == 20

    def test_bracket_parameter_with_index(self):
        stmt = parse_select("SELECT * FROM item WHERE I_TITLE LIKE [1: titleWord]")
        predicate = stmt.where[0]
        assert isinstance(predicate, ast.LikePredicate)
        assert predicate.pattern == ast.Parameter("titleWord", index=1)

    def test_bracket_parameter_with_cardinality(self):
        stmt = parse_select(
            "SELECT * FROM subscriptions WHERE target = <t> AND owner IN [2: friends(50)]"
        )
        in_predicate = stmt.where[1]
        assert isinstance(in_predicate, ast.InPredicate)
        assert in_predicate.values.max_cardinality == 50

    def test_in_with_literal_list(self):
        stmt = parse_select("SELECT * FROM users WHERE username IN ('a', 'b')")
        values = stmt.where[0].values
        assert [v.value for v in values] == ["a", "b"]

    def test_contains_predicate(self):
        stmt = parse_select("SELECT * FROM item WHERE I_DESC CONTAINS [1: word]")
        assert isinstance(stmt.where[0], ast.ContainsPredicate)

    def test_inequality_and_boolean_literal(self):
        stmt = parse_select(
            "SELECT * FROM subscriptions WHERE approved = true AND owner >= 'a'"
        )
        assert stmt.where[0].right == ast.Literal(True)
        assert stmt.where[1].op == ">="

    def test_join_with_on_clause(self):
        stmt = parse_select(
            "SELECT * FROM item i JOIN author a ON i.I_A_ID = a.A_ID WHERE i.I_ID = 5"
        )
        assert len(stmt.tables) == 2
        assert len(stmt.where) == 2

    def test_aggregate_count_star(self):
        stmt = parse_select("SELECT COUNT(*) FROM thoughts WHERE owner = <u> LIMIT 10")
        agg = stmt.select_items[0]
        assert isinstance(agg, ast.AggregateCall)
        assert agg.function == "COUNT" and agg.argument is None
        assert stmt.is_aggregate

    def test_aggregate_with_group_by(self):
        stmt = parse_select(
            "SELECT owner, COUNT(*) AS n FROM thoughts WHERE owner = <u> "
            "GROUP BY owner LIMIT 10"
        )
        assert stmt.group_by == [ast.ColumnRef("owner")]
        assert stmt.select_items[1].alias == "n"

    def test_parameters_collection(self):
        stmt = parse_select(
            "SELECT * FROM t1 WHERE a = <x> AND b LIKE [1: y] AND c IN [2: z(5)] LIMIT [3: k]"
        )
        names = [p.name for p in stmt.parameters()]
        assert names == ["x", "y", "z", "k"]

    def test_or_is_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t WHERE a = 1 OR b = 2")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t WHERE a = 1 GARBAGE")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT *")

    def test_parse_select_requires_select(self):
        with pytest.raises(ParseError):
            parse_select("INSERT INTO t (a) VALUES (1)")


class TestDdlParsing:
    def test_create_table_with_piql_extensions(self):
        stmt = parse(
            """
            CREATE TABLE Subscriptions (
                ownerUserId INT,
                targetUserId INT,
                approved BOOLEAN,
                note VARCHAR(255) NOT NULL,
                PRIMARY KEY (ownerUserId, targetUserId),
                FOREIGN KEY (targetUserId) REFERENCES Users (userId),
                CARDINALITY LIMIT 100 (ownerUserId)
            )
            """
        )
        assert isinstance(stmt, ast.CreateTableStatement)
        table = stmt.table
        assert table.primary_key == ("ownerUserId", "targetUserId")
        assert table.cardinality_limits[0].limit == 100
        assert table.foreign_keys[0].ref_table == "Users"
        assert isinstance(table.column("ownerUserId").type, IntType)
        assert isinstance(table.column("approved").type, BooleanType)
        assert isinstance(table.column("note").type, VarcharType)
        assert table.column("note").nullable is False

    def test_create_table_requires_primary_key(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (a INT)")

    def test_create_index_with_token(self):
        stmt = parse("CREATE INDEX idx_title ON item (token(I_TITLE), I_TITLE, I_ID)")
        assert isinstance(stmt, ast.CreateIndexStatement)
        assert stmt.columns == (("I_TITLE", True), ("I_TITLE", False), ("I_ID", False))

    def test_create_unique_index(self):
        stmt = parse("CREATE UNIQUE INDEX u ON users (username)")
        assert stmt.unique is True

    def test_insert_statement(self):
        stmt = parse("INSERT INTO users (username, created) VALUES ('bob', 5)")
        assert isinstance(stmt, ast.InsertStatement)
        assert stmt.columns == ("username", "created")
        assert stmt.values == ("bob", 5)

    def test_insert_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO users (a, b) VALUES (1)")

    def test_delete_statement(self):
        stmt = parse("DELETE FROM users WHERE username = 'bob'")
        assert isinstance(stmt, ast.DeleteStatement)
        assert len(stmt.where) == 1

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse("UPDATE users SET a = 1")
