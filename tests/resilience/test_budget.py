"""Token-bucket retry-budget tests."""

import pytest

from repro.resilience.budget import TokenBucketRetryBudget


class TestTokenBucketRetryBudget:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucketRetryBudget(capacity=0.0)
        with pytest.raises(ValueError):
            TokenBucketRetryBudget(refill_per_second=-1.0)

    def test_starts_full_and_drains(self):
        budget = TokenBucketRetryBudget(capacity=3.0, refill_per_second=0.0)
        assert budget.available(0.0) == pytest.approx(3.0)
        assert budget.try_acquire(0.0)
        assert budget.try_acquire(0.0)
        assert budget.try_acquire(0.0)
        assert not budget.try_acquire(0.0)

    def test_refills_with_time_up_to_capacity(self):
        budget = TokenBucketRetryBudget(capacity=2.0, refill_per_second=1.0)
        assert budget.try_acquire(0.0)
        assert budget.try_acquire(0.0)
        assert not budget.try_acquire(0.0)
        assert not budget.try_acquire(0.5)  # only half a token back
        assert budget.try_acquire(1.1)
        # A long idle stretch refills to capacity, never beyond.
        assert budget.available(100.0) == pytest.approx(2.0)

    def test_backwards_time_does_not_refund(self):
        budget = TokenBucketRetryBudget(capacity=2.0, refill_per_second=1.0)
        assert budget.try_acquire(10.0)
        before = budget.available(10.0)
        assert budget.available(5.0) == pytest.approx(before)

    def test_fractional_tokens(self):
        budget = TokenBucketRetryBudget(capacity=1.0, refill_per_second=0.0)
        assert budget.try_acquire(0.0, tokens=0.5)
        assert budget.try_acquire(0.0, tokens=0.5)
        assert not budget.try_acquire(0.0, tokens=0.5)
