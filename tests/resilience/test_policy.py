"""ResiliencePolicy tests: retry discipline, deadlines, integration."""

from types import SimpleNamespace

import pytest

from repro.engine.database import PiqlDatabase
from repro.errors import (
    CircuitOpenError,
    PiqlError,
    RetryBudgetExhaustedError,
    UnavailableError,
)
from repro.kvstore.cluster import ClusterConfig
from repro.kvstore.simtime import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.resilience.policy import ResilienceConfig, ResiliencePolicy


def fake_db(nodes: int = 3, unavailable_retries: int = 2):
    """The minimal duck-typed database surface the policy touches."""
    return SimpleNamespace(
        client=SimpleNamespace(
            clock=SimClock(),
            stats=SimpleNamespace(metrics=MetricsRegistry()),
            tracer=None,
        ),
        auditor=SimpleNamespace(latency_model=None),
        cluster=SimpleNamespace(
            nodes=[SimpleNamespace(node_id=i) for i in range(nodes)]
        ),
        unavailable_retries=unavailable_retries,
    )


def flaky_fn(failures: int, exc: Exception = None):
    """Fails ``failures`` times, then returns "ok"."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc or UnavailableError("transient")
        return "ok"

    fn.state = state
    return fn


class TestRetryDiscipline:
    def test_success_needs_no_retry_and_advances_nothing(self):
        db = fake_db()
        policy = ResiliencePolicy(db)
        assert policy.run(lambda: "ok") == "ok"
        assert db.client.clock.now == 0.0
        assert db.client.stats.metrics.value("resilience.retries") == 0

    def test_retries_until_success_with_backoff_on_the_clock(self):
        db = fake_db()
        policy = ResiliencePolicy(db)  # retries follow unavailable_retries=2
        fn = flaky_fn(2)
        assert policy.run(fn) == "ok"
        assert fn.state["calls"] == 3
        assert db.client.clock.now > 0.0  # jittered backoff was slept
        metrics = db.client.stats.metrics
        assert metrics.value("resilience.retries") == 2
        assert metrics.value("resilience.failures") == 2

    def test_attempts_exhausted_reraises_last_error(self):
        db = fake_db()
        policy = ResiliencePolicy(db, ResilienceConfig(max_attempts=3))
        fn = flaky_fn(99)
        with pytest.raises(UnavailableError):
            policy.run(fn)
        assert fn.state["calls"] == 3

    def test_non_unavailable_errors_propagate_immediately(self):
        db = fake_db()
        policy = ResiliencePolicy(db, ResilienceConfig(max_attempts=5))
        fn = flaky_fn(99, exc=PiqlError("not transient"))
        with pytest.raises(PiqlError):
            policy.run(fn)
        assert fn.state["calls"] == 1

    def test_backoff_is_seed_deterministic(self):
        def total_sleep(seed):
            db = fake_db()
            policy = ResiliencePolicy(
                db, ResilienceConfig(max_attempts=6, seed=seed)
            )
            with pytest.raises(UnavailableError):
                policy.run(flaky_fn(99))
            return db.client.clock.now

        assert total_sleep(1) == total_sleep(1)
        assert total_sleep(1) != total_sleep(2)

    def test_naive_mode_retries_instantly(self):
        db = fake_db()
        policy = ResiliencePolicy(
            db, ResilienceConfig(max_attempts=4, naive=True)
        )
        fn = flaky_fn(3)
        assert policy.run(fn) == "ok"
        assert fn.state["calls"] == 4
        assert db.client.clock.now == 0.0  # no pacing at all
        assert db.client.stats.metrics.value("resilience.retries") == 3


class TestRetryBudget:
    def test_exhausted_budget_is_terminal(self):
        db = fake_db()
        policy = ResiliencePolicy(
            db,
            ResilienceConfig(
                max_attempts=10, budget_capacity=2.0,
                budget_refill_per_second=0.0,
            ),
        )
        fn = flaky_fn(99)
        with pytest.raises(RetryBudgetExhaustedError):
            policy.run(fn)
        # First try + two budgeted retries, then the bucket is dry.
        assert fn.state["calls"] == 3
        metrics = db.client.stats.metrics
        assert metrics.value("resilience.budget_exhausted") == 1

    def test_budget_errors_are_not_themselves_retried(self):
        db = fake_db()
        policy = ResiliencePolicy(
            db,
            ResilienceConfig(
                max_attempts=5, budget_capacity=1.0,
                budget_refill_per_second=0.0,
            ),
        )
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise UnavailableError("down")

        with pytest.raises(RetryBudgetExhaustedError):
            policy.run(fn)
        inner = calls["n"]
        with pytest.raises(RetryBudgetExhaustedError):
            policy.run(fn)
        # The second run fails on its first retry attempt (bucket empty),
        # so only one more underlying call plus the retry check happened.
        assert calls["n"] == inner + 1


class TestBreakers:
    def test_all_breakers_open_fails_fast(self):
        db = fake_db(nodes=2)
        policy = ResiliencePolicy(
            db,
            ResilienceConfig(
                breakers_enabled=True, breaker_failure_threshold=1,
                breaker_open_seconds=60.0, max_attempts=5,
            ),
        )
        assert policy.board is not None
        for node_id in (0, 1):
            policy.board.record_failure(node_id, 0.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            policy.run(lambda: "unreached")
        assert excinfo.value.open_nodes == [0, 1]
        metrics = db.client.stats.metrics
        assert metrics.value("resilience.breaker_fast_fails") == 1

    def test_naive_mode_disables_breakers(self):
        db = fake_db()
        policy = ResiliencePolicy(
            db, ResilienceConfig(breakers_enabled=True, naive=True)
        )
        assert policy.board is None


class TestDerivedDeadlines:
    def optimized(self):
        return SimpleNamespace(
            sql="SELECT x", physical_plan=None, operation_bound=5
        )

    def test_disabled_by_default(self):
        policy = ResiliencePolicy(fake_db())
        assert policy.timeout_for(self.optimized()) is None
        assert policy.hedge_delay_for(self.optimized()) is None

    def test_static_defaults_without_a_model(self):
        policy = ResiliencePolicy(
            fake_db(),
            ResilienceConfig(derive_timeouts=True, hedging_enabled=True),
        )
        assert policy.timeout_for(self.optimized()) == pytest.approx(0.5)
        assert policy.hedge_delay_for(self.optimized()) == pytest.approx(0.02)

    def test_model_envelope_times_multiplier_clamped(self):
        db = fake_db()
        db.auditor.latency_model = SimpleNamespace(
            predict_quantile=lambda plan, q: 0.1 if q == 0.99 else 0.05
        )
        policy = ResiliencePolicy(
            db,
            ResilienceConfig(derive_timeouts=True, hedging_enabled=True),
        )
        optimized = self.optimized()
        # p99 * 3.0 = 0.3s; p95 / operation_bound = 0.01s, clamped to 0.02.
        assert policy.timeout_for(optimized) == pytest.approx(0.3)
        assert policy.hedge_delay_for(optimized) == pytest.approx(0.02)

    def test_untrained_model_falls_back_to_static(self):
        db = fake_db()

        def raises(plan, q):
            raise PiqlError("untrained")

        db.auditor.latency_model = SimpleNamespace(predict_quantile=raises)
        policy = ResiliencePolicy(db, ResilienceConfig(derive_timeouts=True))
        assert policy.timeout_for(self.optimized()) == pytest.approx(0.5)

    def test_envelope_is_cached_per_sql(self):
        db = fake_db()
        calls = {"n": 0}

        def counting(plan, q):
            calls["n"] += 1
            return 0.1

        db.auditor.latency_model = SimpleNamespace(predict_quantile=counting)
        policy = ResiliencePolicy(db, ResilienceConfig(derive_timeouts=True))
        policy.timeout_for(self.optimized())
        policy.timeout_for(self.optimized())
        assert calls["n"] == 2  # two quantiles, one derivation


class TestDatabaseIntegration:
    def make_db(self, **kwargs):
        return PiqlDatabase.simulated(
            ClusterConfig(storage_nodes=3, seed=3), **kwargs
        )

    def test_policy_attached_by_default_and_disableable(self):
        assert self.make_db().resilience is not None
        assert self.make_db(resilience=False).resilience is None

    def test_new_client_gets_its_own_policy(self):
        db = self.make_db(
            resilience=ResilienceConfig(breakers_enabled=True)
        )
        clone = db.new_client(clock=SimClock())
        assert clone.resilience is not None
        assert clone.resilience is not db.resilience
        assert clone.resilience.config == db.resilience.config
        # Per-client breaker boards: each app server observes alone.
        assert clone.resilience.board is not db.resilience.board
        assert clone.client.breakers is clone.resilience.board

    def test_healthy_queries_execute_identically_with_policy(self):
        ddl = "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))"
        sql = "SELECT * FROM t WHERE id = [1: id]"
        outcomes = []
        for resilience in (None, False):
            db = self.make_db(resilience=resilience)
            db.execute_ddl(ddl)
            for index in range(5):
                db.insert("t", {"id": index, "v": index * 10})
            result = db.execute(sql, {"id": 3})
            outcomes.append(
                (result.rows, result.operations, result.latency_seconds)
            )
        # The default policy leaves the healthy path byte-identical.
        assert outcomes[0] == outcomes[1]

    def test_policy_funnel_is_used_for_query_pages(self):
        db = self.make_db()
        db.execute_ddl("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
        db.insert("t", {"id": 1, "v": 10})
        seen = []
        original = db.resilience.run

        def spy(fn, operation="query", attempts=None):
            seen.append(operation)
            return original(fn, operation=operation, attempts=attempts)

        db.resilience.run = spy
        result = db.execute("SELECT * FROM t WHERE id = [1: id]", {"id": 1})
        assert result.rows == [{"id": 1, "v": 10}]
        assert len(seen) == 1
