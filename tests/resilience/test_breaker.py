"""Circuit-breaker state-machine tests."""

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)


class TestCircuitBreaker:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(open_seconds=0.0)

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, open_seconds=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state(0.2) == CLOSED
        breaker.record_failure(0.2)
        assert breaker.state(0.3) == OPEN
        assert not breaker.allow(0.3)

    def test_half_open_after_window_then_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, open_seconds=1.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.5) == OPEN
        assert breaker.state(1.0) == HALF_OPEN
        assert breaker.allow(1.0)  # the probe goes through
        breaker.record_success(1.1)
        assert breaker.state(1.1) == CLOSED
        assert breaker.failures == 0

    def test_half_open_probe_failure_reopens_full_window(self):
        breaker = CircuitBreaker(failure_threshold=1, open_seconds=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.5)  # probe fails at half-open
        assert breaker.state(1.6) == OPEN
        assert breaker.state(2.4) == OPEN
        assert breaker.state(2.5) == HALF_OPEN

    def test_failures_while_open_do_not_extend_window(self):
        breaker = CircuitBreaker(failure_threshold=1, open_seconds=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.5)  # already open: ignored
        assert breaker.state(1.0) == HALF_OPEN

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, open_seconds=1.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state(0.3) == CLOSED


class TestBreakerBoard:
    def test_suspects_are_strictly_open_nodes(self):
        board = BreakerBoard(failure_threshold=1, open_seconds=1.0)
        board.record_failure(0, 0.0)
        board.record_failure(1, 0.0)
        assert board.suspects(0.5) == {0, 1}
        # Node 0 reaches half-open; it may take probes again.
        assert board.suspects(1.0) == set()
        assert board.open_count(0.5) == 2

    def test_success_on_unknown_node_is_noop(self):
        board = BreakerBoard()
        board.record_success(7, 0.0)
        assert board.states(0.0) == {}

    def test_all_open_requires_every_node_strictly_open(self):
        board = BreakerBoard(failure_threshold=1, open_seconds=1.0)
        assert not board.all_open(0.0, [])
        board.record_failure(0, 0.0)
        assert not board.all_open(0.1, [0, 1])  # node 1 has no breaker
        board.record_failure(1, 0.0)
        assert board.all_open(0.1, [0, 1])
        # Half-open means a probe is allowed: not fully fenced.
        assert not board.all_open(1.0, [0, 1])
