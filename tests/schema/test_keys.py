"""Unit and property-based tests for the order-preserving key encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.keys import (
    KeyEncodingError,
    decode_key,
    decode_value,
    encode_key,
    encode_value,
    prefix_range,
    prefix_upper_bound,
    successor,
)

scalars = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=30),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.none(),
)


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**40, -(2**40), 0.0, 3.25, -17.5, "", "hello",
         "with\x00null", "ünïcode", b"", b"bytes\x00more"],
    )
    def test_roundtrip(self, value):
        decoded, offset = decode_value(encode_value(value))
        assert decoded == value
        assert offset == len(encode_value(value))

    def test_key_roundtrip(self):
        values = ["alice", 42, True, None, 3.5]
        assert decode_key(encode_key(values)) == values

    def test_decode_key_prefix_count(self):
        encoded = encode_key(["alice", 42, "x"])
        assert decode_key(encoded, count=2) == ["alice", 42]

    def test_unencodable_type(self):
        with pytest.raises(KeyEncodingError):
            encode_value({"a": 1})

    def test_integer_out_of_range(self):
        with pytest.raises(KeyEncodingError):
            encode_value(2**64)

    def test_truncated_decode(self):
        with pytest.raises(KeyEncodingError):
            decode_value(encode_value(17)[:-2])

    def test_unterminated_string(self):
        with pytest.raises(KeyEncodingError):
            decode_value(b"\x05abc")


class TestOrdering:
    @pytest.mark.parametrize(
        "smaller,larger",
        [
            (1, 2), (-5, 3), (-5, -2), (0, 2**50),
            ("a", "b"), ("ab", "b"), ("ab", "ab0"), ("", "a"),
            (1.0, 2.5), (-3.5, -1.0), (-1.0, 0.5),
            (False, True),
        ],
    )
    def test_pairwise_order(self, smaller, larger):
        assert encode_value(smaller) < encode_value(larger)

    def test_composite_key_order(self):
        a = encode_key(["alice", 5])
        b = encode_key(["alice", 10])
        c = encode_key(["bob", 1])
        assert a < b < c

    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), min_size=2, max_size=2),
           st.lists(st.integers(min_value=-(2**62), max_value=2**62), min_size=2, max_size=2))
    def test_int_tuple_order_preserved(self, left, right):
        assert (encode_key(left) < encode_key(right)) == (tuple(left) < tuple(right))

    @given(st.lists(st.text(max_size=20), min_size=1, max_size=3),
           st.lists(st.text(max_size=20), min_size=1, max_size=3))
    @settings(max_examples=200)
    def test_string_tuple_order_preserved(self, left, right):
        if len(left) == len(right):
            assert (encode_key(left) < encode_key(right)) == (tuple(left) < tuple(right))

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_float_order_preserved(self, a, b):
        if a < b:
            assert encode_value(a) < encode_value(b)
        elif a > b:
            assert encode_value(a) > encode_value(b)

    @given(scalars)
    @settings(max_examples=300)
    def test_roundtrip_property(self, value):
        decoded, _ = decode_value(encode_value(value))
        if isinstance(value, float) and value == 0.0:
            assert decoded == 0.0
        else:
            assert decoded == value


class TestPrefixRanges:
    def test_prefix_range_contains_extensions_only(self):
        start, end = prefix_range(["alice"])
        inside = encode_key(["alice", 5])
        inside2 = encode_key(["alice", "zzz"])
        outside = encode_key(["alicf"])
        outside2 = encode_key(["alicd", 10**9])
        assert start <= inside < end
        assert start <= inside2 < end
        assert not (start <= outside < end)
        assert not (start <= outside2 < end)

    @given(st.text(max_size=10), st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=200)
    def test_prefix_range_property(self, prefix_value, extension):
        start, end = prefix_range([prefix_value])
        extended = encode_key([prefix_value, extension])
        assert start <= extended < end

    def test_prefix_upper_bound(self):
        prefix = encode_key(["bob"])
        assert prefix_upper_bound(prefix) > prefix

    def test_successor_is_minimal_increase(self):
        key = encode_key(["bob", 5])
        assert successor(key) > key
        # Nothing fits between a key and its successor for byte strings that
        # do not extend the key.
        assert successor(key)[:-1] == key
