"""Unit tests for schema objects: types, tables, constraints, catalog."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.schema import (
    BooleanType,
    CardinalityLimit,
    Catalog,
    Column,
    ForeignKey,
    IndexColumn,
    IndexDefinition,
    IntType,
    Table,
    TimestampType,
    VarcharType,
    type_from_name,
)


def make_subscriptions() -> Table:
    return Table(
        name="subscriptions",
        columns=[
            Column("owner", VarcharType(32)),
            Column("target", VarcharType(32)),
            Column("approved", BooleanType()),
        ],
        primary_key=("owner", "target"),
        foreign_keys=[ForeignKey(("target",), "users", ("username",))],
        cardinality_limits=[CardinalityLimit(100, ("owner",))],
    )


class TestColumnTypes:
    def test_int_validation(self):
        assert IntType().validate(5) == 5
        assert IntType().validate(5.0) == 5
        with pytest.raises(SchemaError):
            IntType().validate("x")
        with pytest.raises(SchemaError):
            IntType().validate(True)

    def test_varchar_validation(self):
        assert VarcharType(5).validate("abc") == "abc"
        with pytest.raises(SchemaError):
            VarcharType(3).validate("toolong")
        with pytest.raises(SchemaError):
            VarcharType(3).validate(5)

    def test_boolean_validation(self):
        assert BooleanType().validate(True) is True
        assert BooleanType().validate(0) is False
        with pytest.raises(SchemaError):
            BooleanType().validate("yes")

    def test_timestamp_validation(self):
        assert TimestampType().validate(1_300_000_000) == 1_300_000_000
        with pytest.raises(SchemaError):
            TimestampType().validate("2011-01-01")

    def test_type_from_name(self):
        assert isinstance(type_from_name("INT"), IntType)
        assert isinstance(type_from_name("varchar", 10), VarcharType)
        assert type_from_name("VARCHAR", 10).max_length == 10
        assert isinstance(type_from_name("BOOLEAN"), BooleanType)
        with pytest.raises(SchemaError):
            type_from_name("GEOMETRY")

    def test_estimated_sizes(self):
        assert IntType().estimated_size() == 8
        assert VarcharType(100).estimated_size() == 50
        assert BooleanType().estimated_size() == 1


class TestTable:
    def test_requires_primary_key(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=[Column("a", IntType())], primary_key=())

    def test_primary_key_must_exist(self):
        with pytest.raises(UnknownColumnError):
            Table(name="t", columns=[Column("a", IntType())], primary_key=("b",))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                name="t",
                columns=[Column("a", IntType()), Column("a", IntType())],
                primary_key=("a",),
            )

    def test_cardinality_limit_validation(self):
        with pytest.raises(SchemaError):
            CardinalityLimit(0, ("a",))
        with pytest.raises(SchemaError):
            CardinalityLimit(10, ())

    def test_foreign_key_column_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "other", ("x",))

    def test_covers_primary_key(self):
        table = make_subscriptions()
        assert table.covers_primary_key({"owner", "target", "approved"})
        assert not table.covers_primary_key({"owner"})

    def test_matching_cardinality(self):
        table = make_subscriptions()
        assert table.matching_cardinality({"owner", "target"}) == 1
        assert table.matching_cardinality({"owner"}) == 100
        assert table.matching_cardinality({"owner", "approved"}) == 100
        assert table.matching_cardinality({"approved"}) is None

    def test_tightest_cardinality_limit_wins(self):
        table = Table(
            name="t",
            columns=[Column("a", IntType()), Column("b", IntType())],
            primary_key=("a", "b"),
            cardinality_limits=[
                CardinalityLimit(500, ("a",)),
                CardinalityLimit(50, ("a",)),
            ],
        )
        assert table.matching_cardinality({"a"}) == 50

    def test_validate_row(self):
        table = make_subscriptions()
        row = table.validate_row({"owner": "a", "target": "b", "approved": True})
        assert row == {"owner": "a", "target": "b", "approved": True}

    def test_validate_row_missing_pk(self):
        table = make_subscriptions()
        with pytest.raises(SchemaError):
            table.validate_row({"owner": "a", "approved": True})

    def test_validate_row_unknown_column(self):
        table = make_subscriptions()
        with pytest.raises(UnknownColumnError):
            table.validate_row({"owner": "a", "target": "b", "bogus": 1})

    def test_validate_row_fills_nullable(self):
        table = make_subscriptions()
        row = table.validate_row({"owner": "a", "target": "b"})
        assert row["approved"] is None

    def test_estimated_row_bytes(self):
        assert make_subscriptions().estimated_row_bytes() == 16 + 16 + 1


class TestCatalog:
    def test_add_and_get_table_case_insensitive(self):
        catalog = Catalog()
        catalog.add_table(make_subscriptions())
        assert catalog.table("SUBSCRIPTIONS").name == "subscriptions"
        assert catalog.has_table("Subscriptions")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(make_subscriptions())
        with pytest.raises(SchemaError):
            catalog.add_table(make_subscriptions())

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Catalog().table("nope")

    def test_add_index_and_find(self):
        catalog = Catalog()
        catalog.add_table(make_subscriptions())
        index = IndexDefinition(
            name="idx_target",
            table="subscriptions",
            columns=(IndexColumn("target"), IndexColumn("owner")),
        )
        catalog.add_index(index)
        assert catalog.has_index("IDX_TARGET")
        found = catalog.find_index("subscriptions", [IndexColumn("target")])
        assert found is index
        assert catalog.find_index("subscriptions", [IndexColumn("approved")]) is None

    def test_add_index_unknown_column(self):
        catalog = Catalog()
        catalog.add_table(make_subscriptions())
        with pytest.raises(SchemaError):
            catalog.add_index(
                IndexDefinition("bad", "subscriptions", (IndexColumn("missing"),))
            )

    def test_add_identical_index_is_noop(self):
        catalog = Catalog()
        catalog.add_table(make_subscriptions())
        index = IndexDefinition(
            "idx", "subscriptions", (IndexColumn("target"), IndexColumn("owner"))
        )
        assert catalog.add_index(index) is catalog.add_index(index)

    def test_drop_table_drops_indexes(self):
        catalog = Catalog()
        catalog.add_table(make_subscriptions())
        catalog.add_index(
            IndexDefinition("idx", "subscriptions", (IndexColumn("target"),))
        )
        catalog.drop_table("subscriptions")
        assert not catalog.has_table("subscriptions")
        assert catalog.indexes() == []

    def test_index_name_generation(self):
        name = Catalog.index_name(
            "item", [IndexColumn("I_TITLE", tokenized=True), IndexColumn("I_ID")]
        )
        assert name == "idx_item__tok_i_title__i_id"

    def test_tokenized_index_column_render(self):
        assert IndexColumn("title", tokenized=True).render() == "token(title)"
        definition = IndexDefinition(
            "x", "item", (IndexColumn("title", True), IndexColumn("id"))
        )
        assert definition.describe() == "item(token(title), id)"
