"""Unit tests for the in-memory ordered key/value map."""

import pytest

from repro.kvstore.memory import OrderedKVMap


@pytest.fixture
def populated() -> OrderedKVMap:
    store = OrderedKVMap()
    for index in range(10):
        store.put(f"key{index:02d}".encode(), f"value{index}".encode())
    return store


class TestPointOperations:
    def test_get_returns_stored_value(self, populated):
        assert populated.get(b"key03") == b"value3"

    def test_get_missing_returns_none(self, populated):
        assert populated.get(b"missing") is None

    def test_put_overwrites(self, populated):
        populated.put(b"key03", b"new")
        assert populated.get(b"key03") == b"new"
        assert len(populated) == 10

    def test_delete_existing(self, populated):
        assert populated.delete(b"key03") is True
        assert populated.get(b"key03") is None
        assert len(populated) == 9

    def test_delete_missing(self, populated):
        assert populated.delete(b"nope") is False

    def test_contains(self, populated):
        assert b"key00" in populated
        assert b"zzz" not in populated

    def test_rejects_non_bytes_keys(self):
        store = OrderedKVMap()
        with pytest.raises(TypeError):
            store.put("string", b"x")
        with pytest.raises(TypeError):
            store.put(b"x", 42)


class TestTestAndSet:
    def test_insert_if_absent_succeeds(self):
        store = OrderedKVMap()
        assert store.test_and_set(b"a", None, b"1") is True
        assert store.get(b"a") == b"1"

    def test_insert_if_absent_fails_when_present(self, populated):
        assert populated.test_and_set(b"key00", None, b"x") is False
        assert populated.get(b"key00") == b"value0"

    def test_swap_with_expected_value(self, populated):
        assert populated.test_and_set(b"key00", b"value0", b"next") is True
        assert populated.get(b"key00") == b"next"

    def test_swap_with_wrong_expected_value(self, populated):
        assert populated.test_and_set(b"key00", b"wrong", b"next") is False


class TestRangeOperations:
    def test_full_range_in_order(self, populated):
        keys = [k for k, _ in populated.range()]
        assert keys == sorted(keys)
        assert len(keys) == 10

    def test_bounded_range_is_half_open(self, populated):
        pairs = populated.range(b"key02", b"key05")
        assert [k for k, _ in pairs] == [b"key02", b"key03", b"key04"]

    def test_range_with_limit(self, populated):
        pairs = populated.range(b"key02", b"key09", limit=2)
        assert [k for k, _ in pairs] == [b"key02", b"key03"]

    def test_descending_range(self, populated):
        pairs = populated.range(b"key02", b"key05", ascending=False)
        assert [k for k, _ in pairs] == [b"key04", b"key03", b"key02"]

    def test_descending_range_with_limit(self, populated):
        pairs = populated.range(b"key00", b"key09", limit=3, ascending=False)
        assert [k for k, _ in pairs] == [b"key08", b"key07", b"key06"]

    def test_empty_range(self, populated):
        assert populated.range(b"x", b"y") == []

    def test_negative_limit_rejected(self, populated):
        with pytest.raises(ValueError):
            populated.range(limit=-1)

    def test_range_sees_new_writes(self, populated):
        populated.put(b"key035", b"between")
        keys = [k for k, _ in populated.range(b"key03", b"key04")]
        assert keys == [b"key03", b"key035"]

    def test_count_range(self, populated):
        assert populated.count_range(b"key02", b"key05") == 3
        assert populated.count_range() == 10
        assert populated.count_range(b"zzz", None) == 0

    def test_iter_items_sorted(self, populated):
        keys = [k for k, _ in populated.iter_items()]
        assert keys == sorted(keys)

    def test_clear(self, populated):
        populated.clear()
        assert len(populated) == 0
        assert populated.range() == []
