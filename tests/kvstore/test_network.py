"""NetworkModel tests: partitions, cuts, flaky links, delays, determinism."""

import pytest

from repro.kvstore.network import CLIENT, NetworkModel


class TestHealthyDefault:
    def test_inactive_by_default_and_everything_delivers(self):
        net = NetworkModel(seed=1)
        assert not net.active
        assert net.reachable(CLIENT, 0)
        assert net.delivers(CLIENT, 0)
        assert net.delay_seconds(0, 1) == 0.0
        # The healthy fast path must not consume any randomness.
        assert net.dropped_messages == 0

    def test_self_messages_always_deliver(self):
        net = NetworkModel(seed=1)
        net.partition([(0,), (1,)])
        assert net.reachable(0, 0)
        assert net.delivers(1, 1)


class TestPartition:
    def test_cross_group_blocked_same_group_open(self):
        net = NetworkModel(seed=1)
        net.partition([(0, 1), (2, 3)])
        assert net.active
        assert net.reachable(0, 1)
        assert net.reachable(2, 3)
        assert not net.reachable(0, 2)
        assert not net.reachable(3, 1)

    def test_client_lands_in_implicit_remainder_group(self):
        net = NetworkModel(seed=1)
        net.partition([(2, 3)])
        # Unlisted endpoints (client included) share the remainder group.
        assert net.reachable(CLIENT, 0)
        assert net.reachable(0, 1)
        assert not net.reachable(CLIENT, 2)
        assert not net.reachable(CLIENT, 3)

    def test_client_may_be_isolated_explicitly(self):
        net = NetworkModel(seed=1)
        net.partition([(CLIENT,)])
        assert not net.reachable(CLIENT, 0)
        assert net.reachable(0, 1)

    def test_unreachable_messages_count_as_dropped(self):
        net = NetworkModel(seed=1)
        net.partition([(0,)])
        assert not net.delivers(CLIENT, 0)
        assert net.dropped_messages == 1

    def test_empty_groups_rejected(self):
        net = NetworkModel(seed=1)
        with pytest.raises(ValueError):
            net.partition([])
        with pytest.raises(ValueError):
            net.partition([(0,), (0, 1)])


class TestDirectedCuts:
    def test_cut_is_one_way(self):
        net = NetworkModel(seed=1)
        net.cut(0, 1)
        assert not net.reachable(0, 1)
        assert net.reachable(1, 0)
        net.restore_link(0, 1)
        assert net.reachable(0, 1)
        assert not net.active


class TestFlaky:
    def test_probability_validated(self):
        net = NetworkModel(seed=1)
        with pytest.raises(ValueError):
            net.set_flaky(0, 1.5)

    def test_certain_drop_and_certain_delivery(self):
        net = NetworkModel(seed=1)
        net.set_flaky(0, 1.0)
        assert not net.delivers(CLIENT, 0)
        assert not net.delivers(0, 1)  # either endpoint being flaky drops
        assert net.delivers(1, 2)
        net.set_flaky(0, 0.0)  # zero clears the entry entirely
        assert not net.active

    def test_drop_rate_tracks_probability(self):
        net = NetworkModel(seed=7)
        net.set_flaky(0, 0.3)
        drops = sum(1 for _ in range(2000) if not net.delivers(CLIENT, 0))
        assert 0.25 < drops / 2000 < 0.35

    def test_draws_are_seed_deterministic(self):
        outcomes = []
        for _ in range(2):
            net = NetworkModel(seed=42)
            net.set_flaky(1, 0.5)
            outcomes.append([net.delivers(CLIENT, 1) for _ in range(50)])
        assert outcomes[0] == outcomes[1]
        different = NetworkModel(seed=43)
        different.set_flaky(1, 0.5)
        assert [different.delivers(CLIENT, 1) for _ in range(50)] != outcomes[0]


class TestDelay:
    def test_delays_are_additive_per_endpoint(self):
        net = NetworkModel(seed=1)
        net.set_delay(0, 0.2)
        net.set_delay(1, 0.1)
        assert net.delay_seconds(CLIENT, 0) == pytest.approx(0.2)
        assert net.delay_seconds(0, 1) == pytest.approx(0.3)
        assert net.delay_seconds(CLIENT, 2) == 0.0
        net.set_delay(0, 0.0)
        net.set_delay(1, 0.0)
        assert not net.active

    def test_negative_delay_rejected(self):
        net = NetworkModel(seed=1)
        with pytest.raises(ValueError):
            net.set_delay(0, -0.1)


class TestHeal:
    def test_heal_clears_every_fault_class(self):
        net = NetworkModel(seed=1)
        net.partition([(0,)])
        net.cut(1, 2)
        net.set_flaky(3, 0.9)
        net.set_delay(2, 0.5)
        assert net.active
        net.heal()
        assert not net.active
        assert net.reachable(CLIENT, 0)
        assert net.reachable(1, 2)
        assert net.delivers(CLIENT, 3)
        assert net.delay_seconds(CLIENT, 2) == 0.0

    def test_describe_reports_fault_state(self):
        net = NetworkModel(seed=1)
        snapshot = net.describe()
        assert snapshot["partitioned"] is False
        assert snapshot["flaky"] == {}
        net.set_flaky(0, 0.5)
        net.partition([(0,)])
        snapshot = net.describe()
        assert snapshot["partitioned"] is True
        assert snapshot["flaky"] == {0: 0.5}
