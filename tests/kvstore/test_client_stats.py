"""Tests for ``ClientStats``: snapshot/delta semantics and the reservoir."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.kvstore.client import ClientStats


class TestSnapshotAndDelta:
    def test_snapshot_is_an_independent_copy(self):
        stats = ClientStats()
        stats.operations = 3
        stats.keys_touched = 7
        stats.rpcs = 2
        stats.total_latency_seconds = 0.5
        stats.record_latency(0.25)
        snap = stats.snapshot()
        stats.operations = 10
        stats.record_latency(0.75)
        assert snap.operations == 3
        assert snap.keys_touched == 7
        assert snap.rpcs == 2
        assert snap.total_latency_seconds == pytest.approx(0.5)
        assert snap.latency_samples == [0.25]
        assert snap.samples_seen == 1

    def test_delta_subtracts_counters(self):
        earlier = ClientStats(
            operations=2, keys_touched=5, rpcs=1, total_latency_seconds=0.1
        )
        later = ClientStats(
            operations=7, keys_touched=11, rpcs=4, total_latency_seconds=0.35
        )
        diff = later.delta(earlier)
        assert diff.operations == 5
        assert diff.keys_touched == 6
        assert diff.rpcs == 3
        assert diff.total_latency_seconds == pytest.approx(0.25)
        # The reservoir is a sample, not a sum: deltas start empty.
        assert diff.latency_samples == []

    def test_delta_of_snapshots_tracks_live_traffic(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=8))
        db.execute_ddl(
            "CREATE TABLE t (id INT, v VARCHAR(8), PRIMARY KEY (id))"
        )
        before = db.client.stats.snapshot()
        db.insert("t", {"id": 1, "v": "a"})
        db.insert("t", {"id": 2, "v": "b"})
        diff = db.client.stats.snapshot().delta(before)
        assert diff.operations > 0
        assert diff.rpcs > 0
        assert diff.total_latency_seconds > 0.0


class TestLatencyReservoir:
    def test_percentile_of_small_sample(self):
        stats = ClientStats()
        for value in (0.01, 0.02, 0.03, 0.04, 0.05):
            stats.record_latency(value)
        assert stats.percentile(0.5) == pytest.approx(0.03)
        assert stats.percentile(1.0) == pytest.approx(0.05)

    def test_percentile_requires_samples_and_valid_fraction(self):
        stats = ClientStats()
        with pytest.raises(ValueError):
            stats.percentile(0.5)
        stats.record_latency(0.01)
        with pytest.raises(ValueError):
            stats.percentile(0.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_reservoir_is_bounded(self):
        stats = ClientStats(reservoir_capacity=16)
        for i in range(1000):
            stats.record_latency(i * 0.001)
        assert len(stats.latency_samples) == 16
        assert stats.samples_seen == 1000

    def test_reservoir_remains_representative(self):
        stats = ClientStats(reservoir_capacity=128)
        # Uniform 0..1: the sampled median should land near 0.5.
        for i in range(10_000):
            stats.record_latency((i % 1000) / 1000.0)
        assert 0.3 < stats.percentile(0.5) < 0.7

    def test_client_records_latencies_automatically(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=8))
        db.execute_ddl(
            "CREATE TABLE t (id INT, v VARCHAR(8), PRIMARY KEY (id))"
        )
        for i in range(20):
            db.insert("t", {"id": i, "v": "x"})
        stats = db.client.stats
        assert stats.samples_seen > 0
        assert stats.percentile(0.99) >= stats.percentile(0.5) > 0.0
