"""Cluster behaviour under network faults: drops become timeouts or hints.

The contract under test: a dropped client→replica *write* message turns
into a hint (the write still acks if the quorum is met elsewhere — newest
wins makes a partial apply safe), while a dropped *read* message surfaces
as an :class:`RpcTimeoutError` before any result is returned.  A healthy
cluster never consults the fault plane's RNG at all.
"""

import pytest

from repro.errors import QuorumNotMetError, RpcTimeoutError, UnavailableError
from repro.kvstore import ClusterConfig, KeyValueCluster
from repro.kvstore.network import CLIENT


def small_cluster(**overrides) -> KeyValueCluster:
    config = dict(
        storage_nodes=3, replication=3, read_quorum=2, write_quorum=2, seed=5
    )
    config.update(overrides)
    cluster = KeyValueCluster(ClusterConfig(**config))
    cluster.create_namespace("data")
    return cluster


class TestHealthyPath:
    def test_no_draws_without_configured_faults(self):
        cluster = small_cluster()
        for index in range(25):
            cluster.put("data", f"k{index}".encode(), b"v")
            cluster.get("data", f"k{index}".encode())
        assert not cluster.network.active
        assert cluster.network.dropped_messages == 0
        assert cluster.network._draws == 0


class TestDroppedWrites:
    def test_one_dropped_replica_becomes_hint_and_write_acks(self):
        cluster = small_cluster()
        cluster.network.set_flaky(2, 1.0)
        result = cluster.put("data", b"key", b"value")
        assert result.latency_seconds > 0
        assert cluster.replication.hint_count(2) == 1
        assert cluster.metrics.value("network.dropped") >= 1
        # Replicas that did receive the write serve the read quorum.
        cluster.network.heal()
        assert cluster.get("data", b"key").value == b"value"

    def test_all_replicas_dropped_raises_timeout(self):
        cluster = small_cluster()
        for node_id in range(3):
            cluster.network.set_flaky(node_id, 1.0)
        with pytest.raises(RpcTimeoutError):
            cluster.put("data", b"key", b"value")

    def test_hinted_write_replays_after_heal(self):
        cluster = small_cluster()
        cluster.network.set_flaky(0, 1.0)
        cluster.put("data", b"key", b"value")
        assert cluster.replication.hint_count(0) == 1
        cluster.network.heal()
        cluster.replication.replay_hints(0)
        assert cluster.replication.hint_count(0) == 0


class TestDroppedReads:
    def test_dropped_read_is_timeout_not_stale_result(self):
        cluster = small_cluster()
        cluster.put("data", b"key", b"value")
        for node_id in range(3):
            cluster.network.set_flaky(node_id, 1.0)
        with pytest.raises(RpcTimeoutError) as excinfo:
            cluster.get("data", b"key")
        assert excinfo.value.namespace == "data"
        cluster.network.heal()
        assert cluster.get("data", b"key").value == b"value"

    def test_timeout_is_an_unavailable_error(self):
        # Retry loops catch UnavailableError; timeouts must be members.
        assert issubclass(RpcTimeoutError, UnavailableError)


class TestPartition:
    def test_minority_partition_fails_quorums_then_heals(self):
        cluster = small_cluster(storage_nodes=5)
        keys = [f"k{index}".encode() for index in range(40)]
        for key in keys:
            cluster.put("data", key, b"v")
        # Cut nodes 2 and 3 off from the client and the majority: any key
        # with two of its three replicas in the minority loses both
        # quorums; every other key keeps working.
        cluster.network.partition([(2, 3)])
        outcomes = {"ok": 0, "unavailable": 0}
        for key in keys:
            try:
                cluster.get("data", key)
                outcomes["ok"] += 1
            except UnavailableError:
                outcomes["unavailable"] += 1
        assert outcomes["ok"] > 0
        assert outcomes["unavailable"] > 0
        cluster.network.heal()
        for key in keys:
            assert cluster.get("data", key).value == b"v"

    def test_isolated_client_cannot_reach_anything(self):
        cluster = small_cluster()
        cluster.network.partition([(CLIENT,)])
        with pytest.raises(UnavailableError):
            cluster.get("data", b"key")
        with pytest.raises(UnavailableError):
            cluster.put("data", b"key", b"v")

    def test_recovery_during_partition_skips_unreachable_sources(self):
        cluster = small_cluster(storage_nodes=4)
        cluster.put("data", b"key", b"value")
        cluster.crash_node(1)
        for index in range(10):
            cluster.put("data", f"down{index}".encode(), b"x")
        # Node 1 comes back while isolated: recovery must not read from
        # replicas it cannot reach, and must not throw.
        cluster.network.partition([(1,)])
        report = cluster.recover_node(1)
        assert cluster.node(1).up
        # Hints live with the coordinator and replay locally; every copy
        # must come from them — zero cross-node anti-entropy traffic.
        assert report.keys_copied == report.hints_replayed
        # Healed, a second pass completes the catch-up.
        cluster.network.heal()
        cluster.replication.rebalance(cluster.up_node_ids())
        for index in range(10):
            assert cluster.get("data", f"down{index}".encode()).value == b"x"


class TestDelay:
    def test_link_delay_charges_latency(self):
        slow = small_cluster()
        fast = small_cluster()
        slow.cluster_seed_check = fast  # keep configs visibly identical
        for node_id in range(3):
            slow.network.set_delay(node_id, 0.25)
        slow_result = slow.put("data", b"key", b"v")
        fast_result = fast.put("data", b"key", b"v")
        assert slow_result.latency_seconds >= fast_result.latency_seconds + 0.25


class TestHedgedReads:
    def test_hedge_fires_and_is_flagged(self):
        cluster = small_cluster()
        cluster.put("data", b"key", b"value")
        eager = cluster.get("data", b"key", hedge_delay_seconds=1e-9)
        assert eager.hedged
        assert eager.value == b"value"
        lazy = cluster.get("data", b"key", hedge_delay_seconds=10.0)
        assert not lazy.hedged

    def test_hedge_effective_latency_never_exceeds_primary_plus_delay(self):
        cluster = small_cluster()
        cluster.put("data", b"key", b"value")
        delay = 1e-6
        for _ in range(20):
            result = cluster.get("data", b"key", hedge_delay_seconds=delay)
            if not result.hedged:
                continue
            # Effective latency is min(primary, delay + hedge twin).
            assert result.latency_seconds <= delay + 10.0  # sanity ceiling
            assert result.latency_seconds > 0


class TestSuspects:
    def test_reads_avoid_suspects_when_healthy_replicas_suffice(self):
        cluster = small_cluster(storage_nodes=4)
        cluster.put("data", b"key", b"value")
        replicas = cluster.replication.preference_list("data", b"key")
        suspect = replicas[0]
        result = cluster.get("data", b"key", suspects={suspect})
        assert result.value == b"value"
        assert result.node_id != suspect

    def test_all_replicas_suspect_still_serves(self):
        # Suspicion is advisory: when nothing healthy remains, suspects
        # are used anyway rather than failing the read.
        cluster = small_cluster()
        cluster.put("data", b"key", b"value")
        result = cluster.get("data", b"key", suspects={0, 1, 2})
        assert result.value == b"value"

    def test_writes_hint_suspects_when_quorum_met_without_them(self):
        cluster = small_cluster()
        replicas = cluster.replication.preference_list("data", b"key")
        suspect = replicas[-1]
        result = cluster.put("data", b"key", b"value", suspects={suspect})
        assert result.latency_seconds > 0
        assert cluster.replication.hint_count(suspect) == 1
