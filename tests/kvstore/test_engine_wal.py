"""Unit tests for the engine write-ahead log (framing, replay, torn tails)."""

import os

import pytest

from repro.kvstore.engine.wal import (
    OP_DELETE,
    OP_DROP_NAMESPACE,
    OP_PUT,
    WriteAheadLog,
)


@pytest.fixture
def wal_path(tmp_path) -> str:
    return str(tmp_path / "wal.log")


class TestAppendReplay:
    def test_replay_returns_ops_in_order(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_put("data", b"k1", b"v1")
        wal.append_delete("data", b"k2")
        wal.append_drop_namespace("other")
        wal.append_put("data", b"k1", b"v2")
        wal.close()

        replay = WriteAheadLog.replay(wal_path)
        assert replay.ops == [
            (OP_PUT, "data", b"k1", b"v1"),
            (OP_DELETE, "data", b"k2", b""),
            (OP_DROP_NAMESPACE, "other", b"", b""),
            (OP_PUT, "data", b"k1", b"v2"),
        ]
        assert replay.torn_bytes == 0
        assert replay.good_offset == os.path.getsize(wal_path)

    def test_empty_and_missing_logs_replay_empty(self, wal_path):
        assert WriteAheadLog.replay(wal_path).ops == []
        WriteAheadLog(wal_path).close()
        assert WriteAheadLog.replay(wal_path).ops == []

    def test_records_appended_counts_since_reset(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_put("data", b"a", b"1")
        wal.append_put("data", b"b", b"2")
        assert wal.records_appended == 2
        assert wal.size_bytes() > 0
        wal.reset()
        assert wal.records_appended == 0
        assert wal.size_bytes() == 0
        wal.append_delete("data", b"a")
        wal.close()
        assert len(WriteAheadLog.replay(wal_path).ops) == 1

    def test_binary_keys_and_values_roundtrip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        key = bytes(range(256))
        value = b"\x00" * 100 + b"\xff" * 100
        wal.append_put("ns", key, value)
        wal.append_put("ns", b"", b"")
        wal.close()
        replay = WriteAheadLog.replay(wal_path)
        assert replay.ops == [
            (OP_PUT, "ns", key, value),
            (OP_PUT, "ns", b"", b""),
        ]


class TestTornTail:
    def _write_three(self, wal_path) -> int:
        wal = WriteAheadLog(wal_path)
        for index in range(3):
            wal.append_put("data", f"k{index}".encode(), f"v{index}".encode())
        wal.close()
        return os.path.getsize(wal_path)

    def test_partial_final_frame_is_dropped_and_truncated(self, wal_path):
        size = self._write_three(wal_path)
        # Simulate a crash mid-append: half a frame of garbage at the tail.
        with open(wal_path, "ab") as handle:
            handle.write(b"\x00\x01\x02garbage")
        replay = WriteAheadLog.replay(wal_path)
        assert [op[2] for op in replay.ops] == [b"k0", b"k1", b"k2"]
        assert replay.torn_bytes == 10
        # The tail was truncated back to the last good record.
        assert os.path.getsize(wal_path) == size
        assert WriteAheadLog.replay(wal_path).torn_bytes == 0

    def test_truncated_final_frame_is_dropped(self, wal_path):
        size = self._write_three(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.truncate(size - 3)
        replay = WriteAheadLog.replay(wal_path)
        assert [op[2] for op in replay.ops] == [b"k0", b"k1"]
        assert replay.torn_bytes > 0

    def test_corrupt_crc_stops_replay_at_the_tear(self, wal_path):
        self._write_three(wal_path)
        # Flip a payload byte of the second record: its CRC check fails, so
        # replay keeps only the first record (everything after the tear is
        # unacknowledged by definition).
        with open(wal_path, "r+b") as handle:
            data = handle.read()
            handle.seek(len(data) // 2)
            original = handle.read(1)
            handle.seek(len(data) // 2)
            handle.write(bytes([original[0] ^ 0xFF]))
        replay = WriteAheadLog.replay(wal_path)
        assert len(replay.ops) < 3
        assert replay.torn_bytes > 0

    def test_truncate_can_be_disabled(self, wal_path):
        size = self._write_three(wal_path)
        with open(wal_path, "ab") as handle:
            handle.write(b"tail")
        WriteAheadLog.replay(wal_path, truncate_torn_tail=False)
        assert os.path.getsize(wal_path) == size + 4
