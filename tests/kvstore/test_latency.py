"""Unit tests for the latency model and simulated clock."""

import pytest

from repro.kvstore.latency import LatencyModel, LatencyParameters
from repro.kvstore.simtime import SimClock, milliseconds, seconds_from_ms


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(0.75)
        assert clock.total_advanced == pytest.approx(0.75)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0
        assert clock.total_advanced == 0

    def test_interval_index(self):
        clock = SimClock(now=1250.0)
        assert clock.interval_index(600) == 2
        with pytest.raises(ValueError):
            clock.interval_index(0)

    def test_unit_conversions(self):
        assert milliseconds(0.5) == 500
        assert seconds_from_ms(250) == 0.25


class TestLatencyParameters:
    def test_scaled(self):
        params = LatencyParameters(base_rpc_ms=2.0, per_key_ms=0.1)
        scaled = params.scaled(3.0)
        assert scaled.base_rpc_ms == pytest.approx(6.0)
        assert scaled.per_key_ms == pytest.approx(0.3)
        # Non-latency parameters are untouched.
        assert scaled.lognormal_sigma == params.lognormal_sigma


class TestLatencyModel:
    def test_deterministic_given_seed(self):
        a = LatencyModel(seed=5)
        b = LatencyModel(seed=5)
        samples_a = [a.sample_seconds(num_keys=10) for _ in range(20)]
        samples_b = [b.sample_seconds(num_keys=10) for _ in range(20)]
        assert samples_a == samples_b

    def test_samples_positive(self):
        model = LatencyModel(seed=1)
        assert all(model.sample_seconds() > 0 for _ in range(100))

    def test_median_grows_with_keys_and_bytes(self):
        model = LatencyModel(seed=1)
        assert model.median_ms(100, 0) > model.median_ms(1, 0)
        assert model.median_ms(1, 100_000) > model.median_ms(1, 0)

    def test_queueing_inflation(self):
        model = LatencyModel(seed=1)
        assert model.queueing_factor(0.0) == pytest.approx(1.0)
        assert model.queueing_factor(0.5) == pytest.approx(2.0)
        # Utilisation is clamped so the factor never explodes.
        assert model.queueing_factor(5.0) == model.queueing_factor(0.99)

    def test_mean_latency_grows_with_utilization(self):
        low = LatencyModel(seed=3)
        high = LatencyModel(seed=3)
        low_mean = sum(low.sample_seconds(utilization=0.0) for _ in range(500)) / 500
        high_mean = sum(high.sample_seconds(utilization=0.8) for _ in range(500)) / 500
        assert high_mean > low_mean * 2

    def test_weather_is_per_interval_and_deterministic(self):
        model = LatencyModel(seed=9)
        params = model.params
        w0 = model.weather(10.0)
        w0_again = model.weather(params.weather_interval_seconds - 1.0)
        w1 = model.weather(params.weather_interval_seconds + 1.0)
        assert w0 == pytest.approx(w0_again)
        assert w0 != w1
        assert LatencyModel(seed=9).weather(10.0) == pytest.approx(w0)

    def test_weather_disabled_when_sigma_zero(self):
        model = LatencyModel(LatencyParameters(weather_sigma=0.0), seed=1)
        assert model.weather(0) == 1.0
        assert model.weather(10_000) == 1.0

    def test_reseed_restarts_stream(self):
        model = LatencyModel(seed=4)
        first = [model.sample_seconds() for _ in range(5)]
        model.reseed(4)
        second = [model.sample_seconds() for _ in range(5)]
        assert first == second
