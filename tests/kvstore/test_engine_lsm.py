"""Tests for the LSM-lite storage engine: oracle parity, durability, recovery.

Every test runs in a pytest tmp directory; nothing is written inside the
repository.  The in-memory :class:`OrderedKVMap` is the behavioural oracle —
an LSM tree must be observationally identical through the whole map surface
no matter how its state is split between memtable, WAL, and segments.
"""

import os
import random

import pytest

from repro.kvstore.engine import create_engine
from repro.kvstore.engine.lsm import LsmEngine
from repro.kvstore.engine.segment import write_segment
from repro.kvstore.memory import OrderedKVMap


@pytest.fixture
def engine(tmp_path):
    engine = LsmEngine(str(tmp_path / "node-0"), memtable_budget_bytes=2048)
    yield engine
    engine.close()


def _fill(target, count: int, prefix: str = "k") -> None:
    for index in range(count):
        target.put(f"{prefix}{index:04d}".encode(), f"v{index}".encode())


class TestFactory:
    def test_create_engine_places_lsm_under_data_dir(self, tmp_path):
        engine = create_engine("lsm", 3, data_dir=str(tmp_path))
        try:
            assert engine.data_dir == str(tmp_path / "node-3")
            assert engine.durable
        finally:
            engine.close()

    def test_dict_engine_is_the_default(self):
        engine = create_engine("dict", 0)
        assert not engine.durable

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            create_engine("rocksdb", 0)


class TestOracleParity:
    def test_randomized_ops_match_ordered_map(self, engine):
        """Mixed workload with flushes and compactions interleaved."""
        oracle = OrderedKVMap()
        tree = engine.map("data")
        rng = random.Random(42)
        keys = [f"k{i:03d}".encode() for i in range(120)]
        for step in range(3000):
            key = rng.choice(keys)
            action = rng.random()
            if action < 0.55:
                value = f"v{step}".encode()
                tree.put(key, value)
                oracle.put(key, value)
            elif action < 0.75:
                assert tree.delete(key) == oracle.delete(key)
            elif action < 0.85:
                assert tree.get(key) == oracle.get(key)
                assert (key in tree) == (key in oracle)
            else:
                lo, hi = sorted(rng.sample(range(len(keys)), 2))
                start, end = keys[lo], keys[hi]
                limit = rng.choice([None, 1, 5])
                ascending = rng.random() < 0.5
                assert tree.range(start, end, limit, ascending) == oracle.range(
                    start, end, limit, ascending
                )
                assert tree.count_range(start, end) == oracle.count_range(start, end)
            if step % 500 == 250:
                engine.run_maintenance()
        assert list(tree.iter_items()) == list(oracle.iter_items())
        assert len(tree) == len(oracle)

    def test_type_errors_match_ordered_map(self, engine):
        tree = engine.map("data")
        with pytest.raises(TypeError):
            tree.put("str-key", b"v")
        with pytest.raises(TypeError):
            tree.put(b"k", 42)
        with pytest.raises(ValueError):
            tree.range(limit=-1)

    def test_test_and_set_semantics(self, engine):
        tree = engine.map("data")
        assert tree.test_and_set(b"k", None, b"v1")
        assert not tree.test_and_set(b"k", None, b"v2")
        assert tree.test_and_set(b"k", b"v1", b"v2")
        assert tree.get(b"k") == b"v2"


class TestFlushAndCompaction:
    def test_budget_bounds_memtable_bytes(self, engine):
        _fill(engine.map("data"), 500)
        # Every mutation that pushes past the budget triggers a flush, so
        # resident memtable bytes never stay above the configured budget.
        assert engine.memtable_bytes() <= engine.memtable_budget_bytes
        assert engine.flushes > 0
        assert engine.wal.records_appended < 500  # reset on every flush

    def test_flush_resets_wal_and_preserves_reads(self, engine):
        tree = engine.map("data")
        _fill(tree, 40)
        engine.flush()
        assert engine.wal.size_bytes() == 0
        assert engine.memtable_bytes() == 0
        assert tree.get(b"k0000") == b"v0"
        assert len(tree) == 40

    def test_delete_of_flushed_key_needs_a_marker(self, engine):
        tree = engine.map("data")
        tree.put(b"k", b"v")
        engine.flush()
        assert tree.delete(b"k")
        assert tree.get(b"k") is None
        assert b"k" not in tree
        engine.flush()  # the marker must survive its own flush
        assert tree.get(b"k") is None
        assert list(tree.iter_items()) == []

    def test_maintenance_compacts_segment_runs(self, engine):
        tree = engine.map("data")
        # Rounds small enough to stay under the memtable budget, so each
        # explicit flush writes one same-sized (same-tier) segment.
        for round_index in range(6):
            _fill(tree, 20, prefix=f"r{round_index}-")
            engine.flush()
        assert len(tree.segments) >= engine.fanout
        assert engine.maintenance_backlog() > 0
        before = len(tree.segments)
        ran = engine.run_maintenance()
        assert ran > 0
        assert len(tree.segments) < before
        assert len(tree) == 120

    def test_hard_cap_backstops_segment_growth(self, tmp_path):
        engine = LsmEngine(
            str(tmp_path / "node"), memtable_budget_bytes=256, fanout=2
        )
        try:
            tree = engine.map("data")
            rng = random.Random(5)
            for step in range(2000):
                key = f"k{rng.randrange(200):03d}".encode()
                tree.put(key, f"v{step}".encode())
            # Without a kernel draining the backlog the inline backstop
            # keeps the per-tree segment count bounded.
            assert len(tree.segments) <= engine.hard_segment_cap
            assert engine.compactions > 0
        finally:
            engine.close()

    def test_compaction_is_invisible_to_readers(self, engine):
        oracle = OrderedKVMap()
        tree = engine.map("data")
        rng = random.Random(9)
        for step in range(800):
            key = f"k{rng.randrange(80):03d}".encode()
            if rng.random() < 0.3 and oracle.get(key) is not None:
                tree.delete(key)
                oracle.delete(key)
            else:
                tree.put(key, f"v{step}".encode())
                oracle.put(key, f"v{step}".encode())
            if step % 100 == 99:
                engine.flush()
        while engine.run_maintenance():
            pass
        assert list(tree.iter_items()) == list(oracle.iter_items())


class TestCrashRecovery:
    def test_acked_writes_survive_crash(self, engine):
        tree = engine.map("data")
        _fill(tree, 120)  # crosses several flushes
        tree.delete(b"k0005")
        expected = [
            (f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(120) if i != 5
        ]
        engine.crash()
        with pytest.raises(RuntimeError):
            engine.map("data")
        info = engine.recover()
        assert info.segments_loaded + (1 if info.wal_records_replayed else 0) > 0
        assert list(engine.map("data").iter_items()) == expected

    def test_fresh_engine_restores_from_directory(self, tmp_path):
        path = str(tmp_path / "node")
        engine = LsmEngine(path, memtable_budget_bytes=2048)
        _fill(engine.map("data"), 100)
        engine.map("idx").put(b"i1", b"x")
        engine.close()  # clean shutdown flushes everything

        reborn = LsmEngine(path, memtable_budget_bytes=2048)
        try:
            assert reborn.last_recovery.segments_loaded > 0
            assert reborn.last_recovery.wal_records_replayed == 0
            assert sorted(reborn.namespaces()) == ["data", "idx"]
            assert len(reborn.map("data")) == 100
            assert reborn.map("idx").get(b"i1") == b"x"
        finally:
            reborn.close()

    def test_torn_wal_tail_is_truncated_on_recovery(self, engine):
        tree = engine.map("data")
        tree.put(b"k1", b"v1")
        tree.put(b"k2", b"v2")
        engine.crash()
        with open(os.path.join(engine.data_dir, "wal.log"), "ab") as handle:
            handle.write(b"\x13\x37torn")
        info = engine.recover()
        assert info.wal_records_replayed == 2
        assert info.torn_tail_bytes_dropped == 6
        assert engine.map("data").get(b"k2") == b"v2"

    def test_partial_segment_is_discarded_and_covered_by_wal(self, engine):
        tree = engine.map("data")
        _fill(tree, 10)
        engine.crash()
        # A crash mid-flush leaves a file without a valid trailer.
        with open(os.path.join(engine.data_dir, "seg-00000099.seg"), "wb") as handle:
            handle.write(b"SEG1partial garbage")
        info = engine.recover()
        assert info.partial_segments_discarded == 1
        assert not os.path.exists(
            os.path.join(engine.data_dir, "seg-00000099.seg")
        )
        assert len(engine.map("data")) == 10

    def test_foreign_segment_namespace_is_recovered(self, tmp_path):
        # A valid segment present on disk (e.g. from a bulk load) is adopted
        # even when the WAL never mentions its namespace.
        path = str(tmp_path / "node")
        engine = LsmEngine(path)
        engine.close()
        write_segment(
            os.path.join(path, "seg-00000000.seg"), "loaded", [(b"a", b"1")]
        )
        reborn = LsmEngine(path)
        try:
            assert reborn.namespaces() == ["loaded"]
            assert reborn.map("loaded").get(b"a") == b"1"
        finally:
            reborn.close()

    def test_drop_namespace_survives_crash_replay(self, engine):
        tree = engine.map("data")
        tree.put(b"k", b"v")
        tree.clear()
        tree.put(b"after", b"1")
        engine.crash()
        engine.recover()
        assert list(engine.map("data").iter_items()) == [(b"after", b"1")]

    def test_recovered_engine_keeps_generation_monotonic(self, engine):
        _fill(engine.map("data"), 60)
        engine.flush()
        gens_before = sorted(
            name for name in os.listdir(engine.data_dir) if name.endswith(".seg")
        )
        engine.crash()
        engine.recover()
        _fill(engine.map("data"), 60, prefix="x")
        engine.flush()
        gens_after = sorted(
            name for name in os.listdir(engine.data_dir) if name.endswith(".seg")
        )
        # New segments never reuse an existing generation number.
        assert set(gens_before) <= set(gens_after)
        assert len(gens_after) > len(gens_before)


class TestBulkLoad:
    def test_budgeted_bulk_load_spills_and_dedupes(self, engine):
        rng = random.Random(21)
        pairs = []
        for i in range(2000):
            pairs.append((f"k{rng.randrange(500):04d}".encode(), f"v{i}".encode()))
        stored = engine.bulk_load("data", pairs, memory_budget_bytes=1024)
        expected = dict(pairs)
        assert stored == len(expected)
        assert engine.bulk_spill_count > 0
        assert engine.bulk_loads == 1
        tree = engine.map("data")
        assert list(tree.iter_items()) == sorted(expected.items())
        # Scratch runs are cleaned up.
        spill_dir = os.path.join(engine.data_dir, "spill")
        assert not os.path.isdir(spill_dir) or not os.listdir(spill_dir)

    def test_bulk_load_is_durable_without_wal_traffic(self, tmp_path):
        path = str(tmp_path / "node")
        engine = LsmEngine(path)
        engine.bulk_load("data", [(b"a", b"1"), (b"b", b"2")])
        assert engine.wal.records_appended == 0
        engine.crash()
        engine.recover()
        assert list(engine.map("data").iter_items()) == [(b"a", b"1"), (b"b", b"2")]
        engine.close()

    def test_bulk_load_lands_newest(self, engine):
        tree = engine.map("data")
        tree.put(b"k", b"old")
        engine.bulk_load("data", [(b"k", b"new")])
        assert tree.get(b"k") == b"new"
        # ...but later point writes still win over the loaded segment.
        tree.put(b"k", b"newer")
        assert tree.get(b"k") == b"newer"


class TestObservability:
    def test_gauges_cover_the_engine_lifecycle(self, engine):
        _fill(engine.map("data"), 200)
        gauges = engine.gauges()
        for name in (
            "memtable_bytes",
            "wal_bytes",
            "segment_count",
            "segment_bytes",
            "compaction_backlog",
            "flushes",
            "compactions",
            "recoveries",
            "wal_records_replayed",
            "torn_tail_bytes_dropped",
            "partial_segments_discarded",
        ):
            assert name in gauges
        assert gauges["segment_count"] > 0
        assert gauges["segment_bytes"] > 0
        assert gauges["flushes"] == engine.flushes

    def test_destroy_removes_the_directory(self, tmp_path):
        path = str(tmp_path / "node")
        engine = LsmEngine(path)
        engine.map("data").put(b"k", b"v")
        engine.destroy()
        assert not os.path.exists(path)
