"""Unit tests for the simulated key/value store cluster and client."""

import pytest

from repro.errors import ExecutionError
from repro.kvstore import ClusterConfig, KeyValueCluster, StorageClient


@pytest.fixture
def cluster() -> KeyValueCluster:
    cluster = KeyValueCluster(ClusterConfig(storage_nodes=4, replication=2, seed=3))
    cluster.create_namespace("data")
    for index in range(50):
        cluster.load("data", f"k{index:03d}".encode(), f"v{index}".encode())
    return cluster


class TestClusterConfig:
    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            ClusterConfig(storage_nodes=0)

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            ClusterConfig(storage_nodes=2, replication=3)


class TestClusterOperations:
    def test_get_returns_value_and_latency(self, cluster):
        result = cluster.get("data", b"k001")
        assert result.value == b"v1"
        assert result.latency_seconds > 0

    def test_get_missing_key(self, cluster):
        assert cluster.get("data", b"nope").value is None

    def test_unknown_namespace(self, cluster):
        with pytest.raises(ExecutionError):
            cluster.get("missing", b"k")

    def test_put_then_get(self, cluster):
        cluster.put("data", b"new", b"value")
        assert cluster.get("data", b"new").value == b"value"

    def test_delete(self, cluster):
        assert cluster.delete("data", b"k001").value is True
        assert cluster.get("data", b"k001").value is None
        assert cluster.delete("data", b"k001").value is False

    def test_test_and_set(self, cluster):
        assert cluster.test_and_set("data", b"tas", None, b"1").value is True
        assert cluster.test_and_set("data", b"tas", None, b"2").value is False
        assert cluster.test_and_set("data", b"tas", b"1", b"2").value is True

    def test_bounded_range_scatter_gather(self, cluster):
        result = cluster.get_range("data", b"k000", b"k010")
        assert len(result.value) == 10
        # Replicas are placed by consistent hashing, so a bounded range is
        # served by the (several) replicas owning its keys in parallel.
        assert result.latency_seconds > 0
        assert result.partial is False

    def test_unbounded_scan_touches_all_nodes(self, cluster):
        bounded = cluster.get_range("data", b"k000", b"k005")
        full = cluster.get_range("data", None, None)
        assert len(full.value) == 50
        # A full scan visits every partition so it reports no single node.
        assert full.node_id == -1
        assert full.latency_seconds > bounded.latency_seconds

    def test_multi_get_parallel_faster_than_sequential(self, cluster):
        keys = [f"k{i:03d}".encode() for i in range(20)]
        parallel = cluster.multi_get("data", keys, parallel=True)
        sequential = cluster.multi_get("data", keys, parallel=False)
        assert parallel.value == sequential.value
        assert parallel.latency_seconds < sequential.latency_seconds

    def test_multi_get_empty(self, cluster):
        result = cluster.multi_get("data", [])
        assert result.value == []
        assert result.latency_seconds == 0.0

    def test_multi_get_range(self, cluster):
        ranges = [(b"k000", b"k003", None, True), (b"k010", b"k012", None, True)]
        parallel = cluster.multi_get_range("data", ranges, parallel=True)
        sequential = cluster.multi_get_range("data", ranges, parallel=False)
        assert [len(r) for r in parallel.value] == [3, 2]
        assert parallel.value == sequential.value
        # Each call draws fresh service-time noise, so compare totals over
        # several repetitions rather than a single (straggler-prone) pair.
        total_parallel = sum(
            cluster.multi_get_range("data", ranges, parallel=True).latency_seconds
            for _ in range(20)
        )
        total_sequential = sum(
            cluster.multi_get_range("data", ranges, parallel=False).latency_seconds
            for _ in range(20)
        )
        assert total_parallel < total_sequential

    def test_count_range(self, cluster):
        assert cluster.count_range("data", b"k000", b"k010").value == 10

    def test_offered_load_increases_latency(self, cluster):
        baseline = sum(
            cluster.get("data", b"k001").latency_seconds for _ in range(200)
        )
        cluster.set_offered_load(
            cluster.config.storage_nodes
            * cluster.config.node_capacity_ops_per_second
            * 0.85
        )
        loaded = sum(cluster.get("data", b"k001").latency_seconds for _ in range(200))
        assert loaded > baseline * 2

    def test_namespace_management(self):
        cluster = KeyValueCluster(ClusterConfig(storage_nodes=2, replication=1))
        cluster.create_namespace("a")
        cluster.create_namespace("a")  # idempotent
        assert cluster.namespaces() == ["a"]
        cluster.drop_namespace("a")
        assert cluster.namespaces() == []

    def test_stats_tracking(self, cluster):
        cluster.reset_stats()
        cluster.get("data", b"k001")
        cluster.put("data", b"x", b"y")
        gets = sum(node.stats.gets for node in cluster.nodes)
        puts = sum(node.stats.puts for node in cluster.nodes)
        assert gets == 1
        assert puts == cluster.config.replication


class TestRangeEdgeCases:
    """Range semantics now that data is physically split per node."""

    @pytest.fixture
    def replicated(self) -> KeyValueCluster:
        cluster = KeyValueCluster(
            ClusterConfig(storage_nodes=5, replication=3, read_quorum=2,
                          write_quorum=2, seed=11)
        )
        cluster.create_namespace("data")
        for index in range(40):
            cluster.load("data", f"k{index:03d}".encode(), f"v{index}".encode())
        return cluster

    def test_empty_bounded_range(self, replicated):
        result = replicated.get_range("data", b"zzz", b"zzzz")
        assert result.value == []
        assert result.keys_touched == 0
        # An empty probe still costs one RPC.
        assert result.latency_seconds > 0

    def test_empty_range_with_inverted_bounds(self, replicated):
        assert replicated.get_range("data", b"k030", b"k010").value == []
        assert replicated.count_range("data", b"k030", b"k010").value == 0

    def test_single_key_range(self, replicated):
        result = replicated.get_range("data", b"k007", b"k007\x00")
        assert result.value == [(b"k007", b"v7")]
        assert replicated.count_range("data", b"k007", b"k007\x00").value == 1

    def test_range_spans_shard_boundaries(self, replicated):
        """A contiguous key range is scattered over nodes; the merge must
        reassemble it completely and in order."""
        result = replicated.get_range("data", b"k000", b"k040")
        keys = [key for key, _ in result.value]
        assert keys == [f"k{i:03d}".encode() for i in range(40)]
        serving_nodes = set()
        for key in keys:
            serving_nodes.add(replicated.route("data", key).node_id)
        assert len(serving_nodes) > 1  # genuinely crosses shards

    def test_descending_range_with_limit(self, replicated):
        result = replicated.get_range("data", b"k000", b"k040", limit=5,
                                      ascending=False)
        keys = [key for key, _ in result.value]
        assert keys == [f"k{i:03d}".encode() for i in (39, 38, 37, 36, 35)]

    def test_count_range_across_shards(self, replicated):
        assert replicated.count_range("data", None, None).value == 40
        assert replicated.count_range("data", b"k010", b"k020").value == 10

    def test_multi_get_range_across_shards(self, replicated):
        ranges = [
            (b"k000", b"k003", None, True),
            (b"k038", b"k040", None, True),
            (b"zzz", b"zzzz", None, True),  # empty
        ]
        parallel = replicated.multi_get_range("data", ranges, parallel=True)
        sequential = replicated.multi_get_range("data", ranges, parallel=False)
        assert [len(r) for r in parallel.value] == [3, 2, 0]
        assert parallel.value == sequential.value

    def test_range_correct_after_topology_changes(self, replicated):
        replicated.add_node()
        assert len(replicated.get_range("data", b"k000", b"k040").value) == 40
        replicated.remove_node()
        assert len(replicated.get_range("data", b"k000", b"k040").value) == 40

    def test_deleted_key_suppressed_across_replicas(self, replicated):
        replicated.delete("data", b"k005")
        keys = [key for key, _ in replicated.get_range("data", b"k000", b"k010").value]
        assert b"k005" not in keys
        assert replicated.count_range("data", b"k000", b"k010").value == 9


class TestStorageClient:
    def test_clock_advances_with_operations(self, cluster):
        client = StorageClient(cluster=cluster)
        assert client.now == 0
        client.get("data", b"k001")
        after_one = client.now
        client.get("data", b"k002")
        assert client.now > after_one > 0

    def test_operation_counting(self, cluster):
        client = StorageClient(cluster=cluster)
        client.get("data", b"k001")
        client.multi_get("data", [b"k001", b"k002", b"k003"])
        client.get_range("data", b"k000", b"k010")
        assert client.stats.operations == 1 + 3 + 1

    def test_stats_delta(self, cluster):
        client = StorageClient(cluster=cluster)
        client.get("data", b"k001")
        before = client.stats.snapshot()
        client.multi_get("data", [b"k001", b"k002"])
        delta = client.stats.snapshot().delta(before)
        assert delta.operations == 2
        assert delta.total_latency_seconds > 0

    def test_put_and_delete(self, cluster):
        client = StorageClient(cluster=cluster)
        client.put("data", b"cw", b"1")
        assert client.get("data", b"cw") == b"1"
        assert client.delete("data", b"cw") is True
        assert client.test_and_set("data", b"cw", None, b"2") is True
        assert client.count_range("data", b"cw", b"cx") == 1
