"""Unit tests for sorted segment files (format, filters, range scans)."""

import os

import pytest

from repro.kvstore.engine.segment import Segment, SegmentError, write_segment


def _items(count: int):
    return [(f"k{index:04d}".encode(), f"v{index}".encode()) for index in range(count)]


@pytest.fixture
def segment(tmp_path):
    path = str(tmp_path / "seg-00000000.seg")
    write_segment(path, "data", _items(200), sparse_every=8)
    seg = Segment(path)
    yield seg
    seg.close()


class TestRoundTrip:
    def test_metadata(self, segment):
        assert segment.namespace == "data"
        assert segment.entry_count == 200
        assert segment.min_key == b"k0000"
        assert segment.max_key == b"k0199"
        assert segment.size_bytes == os.path.getsize(segment.path)

    def test_point_lookups(self, segment):
        for index in (0, 1, 7, 8, 99, 198, 199):
            found, value = segment.get(f"k{index:04d}".encode())
            assert found and value == f"v{index}".encode()
        assert segment.get(b"k0200") == (False, None)
        assert segment.get(b"a") == (False, None)
        assert segment.get(b"z") == (False, None)
        # A key inside the range but absent from the file.
        assert segment.get(b"k0005x") == (False, None)

    def test_bloom_rejects_out_of_range(self, segment):
        assert not segment.maybe_contains(b"zzz")
        assert not segment.maybe_contains(b"")
        assert segment.maybe_contains(b"k0042")

    def test_full_scan_ascending_and_descending(self, segment):
        expected = _items(200)
        assert list(segment.iter_range()) == expected
        assert list(segment.iter_range(ascending=False)) == expected[::-1]

    def test_bounded_scans(self, segment):
        rows = list(segment.iter_range(b"k0010", b"k0015"))
        assert [key for key, _ in rows] == [
            f"k{index:04d}".encode() for index in range(10, 15)
        ]
        rows = list(segment.iter_range(b"k0010", b"k0015", ascending=False))
        assert [key for key, _ in rows] == [
            f"k{index:04d}".encode() for index in range(14, 9, -1)
        ]
        # Bounds falling between keys behave as half-open intervals.
        assert [k for k, _ in segment.iter_range(b"k0197x", None)] == [b"k0198", b"k0199"]
        assert list(segment.iter_range(b"x", b"z")) == []

    def test_delete_markers_roundtrip(self, tmp_path):
        path = str(tmp_path / "seg-00000001.seg")
        write_segment(path, "data", [(b"a", b"1"), (b"b", None), (b"c", b"3")])
        seg = Segment(path)
        try:
            assert seg.get(b"b") == (True, None)
            assert list(seg.iter_range()) == [(b"a", b"1"), (b"b", None), (b"c", b"3")]
        finally:
            seg.close()

    def test_empty_segment(self, tmp_path):
        path = str(tmp_path / "seg-00000002.seg")
        assert write_segment(path, "data", []) == 0
        seg = Segment(path)
        try:
            assert seg.entry_count == 0
            assert seg.get(b"k") == (False, None)
            assert list(seg.iter_range()) == []
        finally:
            seg.close()


class TestValidation:
    def test_out_of_order_items_raise(self, tmp_path):
        path = str(tmp_path / "bad.seg")
        with pytest.raises(SegmentError):
            write_segment(path, "data", [(b"b", b"1"), (b"a", b"2")])
        with pytest.raises(SegmentError):
            write_segment(path, "data", [(b"a", b"1"), (b"a", b"2")])

    def test_partial_write_leaves_no_segment(self, tmp_path):
        # write_segment goes through a temporary name, so a failed write
        # never leaves a file under the real name.
        path = str(tmp_path / "seg-00000003.seg")
        with pytest.raises(SegmentError):
            write_segment(path, "data", [(b"b", b"1"), (b"a", b"2")])
        assert not os.path.exists(path)

    def test_truncated_file_fails_validation(self, tmp_path):
        path = str(tmp_path / "seg-00000004.seg")
        write_segment(path, "data", _items(50))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(SegmentError):
            Segment(path)

    def test_corrupt_footer_fails_validation(self, tmp_path):
        path = str(tmp_path / "seg-00000005.seg")
        write_segment(path, "data", _items(50))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 30)
            handle.write(b"\xff")
        with pytest.raises(SegmentError):
            Segment(path)

    def test_missing_file_fails_validation(self, tmp_path):
        with pytest.raises(SegmentError):
            Segment(str(tmp_path / "absent.seg"))

    def test_bad_header_fails_validation(self, tmp_path):
        path = str(tmp_path / "seg-00000006.seg")
        write_segment(path, "data", _items(10))
        with open(path, "r+b") as handle:
            handle.write(b"NOPE")
        with pytest.raises(SegmentError):
            Segment(path)
