"""Unit tests for memory-budgeted external sorting (bulk-load spill path)."""

import os
import random

from repro.kvstore.engine.external import SpillPool, SpillingSorter


def _run_files(spill_dir: str):
    if not os.path.isdir(spill_dir):
        return []
    return [name for name in os.listdir(spill_dir) if name.endswith(".run")]


class TestSpillingSorter:
    def test_sorts_without_spilling_when_under_budget(self, tmp_path):
        sorter = SpillingSorter(str(tmp_path / "spill"), budget_bytes=1 << 20)
        rng = random.Random(7)
        pairs = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(500)]
        shuffled = pairs[:]
        rng.shuffle(shuffled)
        for key, value in shuffled:
            sorter.add(key, value)
        assert sorter.spill_count == 0
        assert list(sorter.iter_sorted()) == pairs

    def test_spills_under_a_tiny_budget_and_cleans_up(self, tmp_path):
        spill_dir = str(tmp_path / "spill")
        sorter = SpillingSorter(spill_dir, budget_bytes=512)
        rng = random.Random(11)
        pairs = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(400)]
        shuffled = pairs[:]
        rng.shuffle(shuffled)
        for key, value in shuffled:
            sorter.add(key, value)
            # Resident memory never exceeds budget + one entry.
            assert sorter.buffered_bytes <= 512 + (8 + 5 + 64)
        assert sorter.spill_count > 1
        assert _run_files(spill_dir)
        assert list(sorter.iter_sorted()) == pairs
        # Consuming the sorter deletes its scratch runs.
        assert _run_files(spill_dir) == []

    def test_duplicate_keys_resolve_last_wins_across_runs(self, tmp_path):
        sorter = SpillingSorter(str(tmp_path / "spill"), budget_bytes=256)
        for round_index in range(5):
            for i in range(50):
                sorter.add(f"k{i:02d}".encode(), f"r{round_index}".encode())
        result = dict(sorter.iter_sorted())
        assert len(result) == 50
        assert set(result.values()) == {b"r4"}

    def test_items_added_counts_duplicates(self, tmp_path):
        sorter = SpillingSorter(str(tmp_path / "spill"))
        sorter.add(b"a", b"1")
        sorter.add(b"a", b"2")
        assert sorter.items_added == 2
        assert list(sorter.iter_sorted()) == [(b"a", b"2")]


class TestSpillPool:
    def test_shared_budget_bounds_resident_bytes(self, tmp_path):
        pool = SpillPool(str(tmp_path / "spill"), budget_bytes=2048)
        rng = random.Random(3)
        expected = {}
        for i in range(600):
            namespace = f"ns{i % 3}"
            key = f"k{rng.randrange(100):03d}".encode()
            value = f"v{i}".encode()
            pool.add(namespace, key, value)
            expected.setdefault(namespace, {})[key] = value
            assert pool.resident_bytes() <= 2048 + (4 + 8 + 64)
        assert pool.spill_count > 0
        assert pool.spilled_bytes > 0
        assert pool.namespaces() == ["ns0", "ns1", "ns2"]
        for namespace in pool.namespaces():
            rows = list(pool.iter_namespace(namespace))
            assert rows == sorted(expected[namespace].items())
        pool.close()

    def test_unknown_namespace_iterates_empty(self, tmp_path):
        pool = SpillPool(str(tmp_path / "spill"), budget_bytes=1024)
        assert list(pool.iter_namespace("absent")) == []
        pool.close()
