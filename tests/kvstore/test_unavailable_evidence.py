"""Membership-view unavailability as breaker evidence.

The coordinator skips replicas it knows are down or unreachable, so the
quorum path produces no timeouts during a crash or partition — and the
client's circuit breakers would never learn anything was wrong.
``OpResult.unavailable_nodes`` names the preference-list replicas skipped
on membership grounds; the client feeds each sighting to its breaker
board as a per-node failure, which is what fences the node while it is
gone and lets half-open probes close the breaker after recovery.
"""

from __future__ import annotations

import pytest

from repro.kvstore import ClusterConfig, KeyValueCluster, StorageClient
from repro.resilience.breaker import BreakerBoard


@pytest.fixture
def cluster() -> KeyValueCluster:
    cluster = KeyValueCluster(
        ClusterConfig(storage_nodes=4, replication=3, read_quorum=2,
                      write_quorum=2, seed=3)
    )
    cluster.create_namespace("data")
    for index in range(40):
        cluster.load("data", f"k{index:03d}".encode(), f"v{index}".encode())
    return cluster


def keys_replicated_on(cluster, node_id, count=5):
    """Some loaded keys whose preference list includes ``node_id``."""
    chosen = []
    for index in range(40):
        key = f"k{index:03d}".encode()
        prefs = cluster._preference_list("data", key)
        if node_id in prefs:
            chosen.append(key)
        if len(chosen) >= count:
            break
    assert chosen, f"no key maps to node {node_id}"
    return chosen


class TestUnavailableNodes:
    def test_healthy_cluster_reports_none(self, cluster):
        result = cluster.get("data", b"k001")
        assert result.unavailable_nodes == ()

    def test_crashed_replica_is_named_on_reads(self, cluster):
        cluster.crash_node(1)
        key = keys_replicated_on(cluster, 1)[0]
        result = cluster.get("data", key)
        assert result.value is not None  # survivors met the quorum
        assert 1 in result.unavailable_nodes

    def test_crashed_replica_is_named_on_writes(self, cluster):
        cluster.crash_node(1)
        key = keys_replicated_on(cluster, 1)[0]
        result = cluster.put("data", key, b"new")
        assert result.value is True
        assert 1 in result.unavailable_nodes

    def test_recovery_clears_the_evidence(self, cluster):
        cluster.crash_node(1)
        key = keys_replicated_on(cluster, 1)[0]
        assert 1 in cluster.get("data", key).unavailable_nodes
        cluster.recover_node(1)
        assert cluster.get("data", key).unavailable_nodes == ()

    def test_multi_get_unions_across_keys(self, cluster):
        cluster.crash_node(1)
        keys = keys_replicated_on(cluster, 1, count=3)
        result = cluster.multi_get("data", keys)
        assert 1 in result.unavailable_nodes


class TestBreakerEvidence:
    def test_sightings_open_the_breaker(self, cluster):
        client = StorageClient(cluster=cluster)
        client.breakers = BreakerBoard(failure_threshold=3)
        cluster.crash_node(1)
        for key in keys_replicated_on(cluster, 1, count=4):
            client.get("data", key)
        assert 1 in client.breakers.suspects(client.clock.now)

    def test_healthy_traffic_keeps_breakers_closed(self, cluster):
        client = StorageClient(cluster=cluster)
        client.breakers = BreakerBoard(failure_threshold=3)
        for key in keys_replicated_on(cluster, 1, count=4):
            client.get("data", key)
        assert client.breakers.suspects(client.clock.now) == set()
