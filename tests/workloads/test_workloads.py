"""Tests for the TPC-W and SCADr benchmark workloads."""

import random

import pytest

from repro.workloads.scadr.data import ScadrDataConfig, ScadrDataGenerator
from repro.workloads.tpcw.data import TpcwDataConfig, TpcwDataGenerator
from repro.workloads.tpcw.queries import QUERIES as TPCW_QUERIES
from repro.workloads.tpcw.workload import ORDERING_MIX


class TestScadrGenerator:
    def test_row_counts(self):
        generator = ScadrDataGenerator(
            ScadrDataConfig(users=50, thoughts_per_user=5, subscriptions_per_user=3)
        )
        assert len(list(generator.users())) == 50
        assert len(list(generator.thoughts())) == 250
        subscriptions = list(generator.subscriptions())
        assert len(subscriptions) == 150

    def test_subscriptions_respect_limit_and_self_exclusion(self):
        generator = ScadrDataGenerator(
            ScadrDataConfig(users=20, subscriptions_per_user=5)
        )
        per_owner = {}
        for row in generator.subscriptions():
            assert row["owner"] != row["target"]
            per_owner[row["owner"]] = per_owner.get(row["owner"], 0) + 1
        assert all(count == 5 for count in per_owner.values())

    def test_deterministic_given_seed(self):
        a = list(ScadrDataGenerator(ScadrDataConfig(users=10, seed=3)).subscriptions())
        b = list(ScadrDataGenerator(ScadrDataConfig(users=10, seed=3)).subscriptions())
        assert a == b


class TestTpcwGenerator:
    def test_row_counts(self):
        config = TpcwDataConfig(customers=30, items=40, orders_per_customer=2,
                                lines_per_order=3)
        generator = TpcwDataGenerator(config)
        assert len(list(generator.customers())) == 30
        assert len(list(generator.items())) == 40
        orders, lines, xacts = generator.orders_and_lines()
        assert len(orders) == 60
        assert len(lines) == 180
        assert len(xacts) == 60
        carts, cart_lines = generator.carts_and_lines()
        assert len(carts) == 30
        assert all(line["SCL_SC_ID"] <= 30 for line in cart_lines)

    def test_items_reference_existing_authors(self):
        generator = TpcwDataGenerator(TpcwDataConfig(customers=10, items=40))
        author_ids = {row["A_ID"] for row in generator.authors()}
        assert all(row["I_A_ID"] in author_ids for row in generator.items())


class TestLoadedScadrWorkload:
    def test_setup_loads_all_tables(self, loaded_scadr):
        db, workload = loaded_scadr
        summary = db.storage_summary()
        assert summary["table:users"] == 120
        assert summary["table:subscriptions"] == 120 * 5
        assert summary["table:thoughts"] == 120 * 10

    def test_every_query_is_prepared_and_bounded(self, loaded_scadr, rng):
        db, workload = loaded_scadr
        for name in workload.query_names():
            prepared = db.prepare(workload.query_sql(name))
            result = workload.run_query(db, name, rng)
            assert result.operations <= prepared.operation_bound

    def test_interaction_runs_all_queries(self, loaded_scadr, rng):
        db, workload = loaded_scadr
        result = workload.interaction(db, rng)
        assert set(workload.query_names()) <= set(result.query_latencies)
        assert result.latency_seconds > 0

    def test_thoughtstream_returns_subscribed_users_only(self, loaded_scadr, rng):
        db, workload = loaded_scadr
        uname = workload.usernames[0]
        followed = {
            row["username"]
            for row in db.prepare(workload.query_sql("users_followed"))
            .execute(uname=uname).rows
        }
        stream = db.prepare(workload.query_sql("thoughtstream")).execute(uname=uname)
        assert {row["owner"] for row in stream.rows} <= followed


class TestLoadedTpcwWorkload:
    def test_all_queries_return_plausible_results(self, loaded_tpcw, rng):
        db, workload = loaded_tpcw
        for name in workload.query_names():
            result = workload.run_query(db, name, rng)
            assert result.latency_seconds > 0
            if name in ("home_wi", "product_detail_wi", "order_display_get_customer"):
                assert len(result.rows) == 1

    def test_new_products_sorted_by_pub_date(self, loaded_tpcw):
        db, workload = loaded_tpcw
        result = db.prepare(TPCW_QUERIES["new_products_wi"]).execute(
            subject="COMPUTERS"
        )
        dates = [row["I_PUB_DATE"] for row in result.rows]
        assert dates == sorted(dates, reverse=True)
        assert len(result.rows) <= 50

    def test_search_by_title_matches_token(self, loaded_tpcw):
        db, workload = loaded_tpcw
        result = db.prepare(TPCW_QUERIES["search_by_title_wi"]).execute(
            title_word="database"
        )
        assert result.rows, "the generator always produces titles with 'database'"
        assert all("database" in row["I_TITLE"] for row in result.rows)

    def test_order_lines_join_items(self, loaded_tpcw):
        db, workload = loaded_tpcw
        result = db.prepare(TPCW_QUERIES["order_display_get_order_lines"]).execute(
            order_id=1
        )
        assert result.rows
        assert all("I_TITLE" in row for row in result.rows)

    def test_ordering_mix_interactions(self, loaded_tpcw):
        db, workload = loaded_tpcw
        rng = random.Random(7)
        names = set()
        for _ in range(40):
            result = workload.interaction(db, rng)
            names.add(result.name)
            assert result.latency_seconds >= 0
        # The ordering mix exercises both reads and updates.
        assert names & {"shopping_cart", "customer_registration", "buy_confirm"}
        assert names & {"home", "product_detail", "search_by_author", "search_by_title"}

    def test_mix_weights_are_positive(self):
        assert all(weight > 0 for weight in ORDERING_MIX.values())
