"""Tests for interaction DAGs: serial vs pipelined replays of the same plan."""

from __future__ import annotations

import random

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.workloads import (
    InteractionPlan,
    QueryStep,
    ScadrWorkload,
    TpcwWorkload,
    WorkloadScale,
    WriteStep,
)


def fresh_tpcw(seed: int = 31):
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=seed))
    workload = TpcwWorkload()
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=15, items_total=60,
                          seed=seed)
    )
    db.reset_measurements()
    return db, workload


def fresh_scadr(seed: int = 31):
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=seed))
    workload = ScadrWorkload(max_subscriptions=10, subscriptions_per_user=5,
                             thoughts_per_user=8)
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=20, seed=seed)
    )
    db.reset_measurements()
    return db, workload


class TestPlanShapes:
    def test_tpcw_order_display_is_one_parallel_stage(self):
        db, workload = fresh_tpcw()
        plan = workload._plan_order_display(db, random.Random(1))
        assert isinstance(plan, InteractionPlan)
        assert len(plan.stages) == 1
        assert len(plan.stages[0]) == 3
        assert all(isinstance(step, QueryStep) for step in plan.stages[0])

    def test_tpcw_buy_confirm_reads_then_writes(self):
        db, workload = fresh_tpcw()
        plan = workload._plan_buy_confirm(db, random.Random(1))
        assert len(plan.stages) == 2
        read_stage, write_stage = plan.stages
        assert [step.label for step in read_stage] == ["buy_request_wi"]
        assert callable(write_stage), "write steps depend on the cart rows"

    def test_scadr_home_page_is_one_stage_of_independent_queries(self):
        db, workload = fresh_scadr()
        plan = workload.interaction_plan(db, random.Random(2))
        assert len(plan.stages) == 1
        labels = [step.label for step in plan.stages[0]]
        assert set(workload.query_names()) <= set(labels)

    def test_scadr_post_thought_joins_the_stage(self):
        db, workload = fresh_scadr()
        # post_probability=1 forces the write branch.
        workload.post_probability = 1.0
        plan = workload.interaction_plan(db, random.Random(3))
        kinds = {type(step) for step in plan.stages[0]}
        assert WriteStep in kinds
        assert len(plan.stages[0]) == len(workload.query_names()) + 1


class TestSerialVsPipelined:
    @pytest.mark.parametrize("factory", [fresh_tpcw, fresh_scadr])
    def test_identical_work_faster_pages(self, factory):
        """Replaying the same plan stream pipelined does identical per-query
        work while never being slower, and is strictly faster overall."""
        interactions = 40
        records = {}
        for arm in ("serial", "pipelined"):
            db, workload = factory()
            db.cluster.reseed_latency_models(5)
            rng = random.Random(17)
            session = db.session() if arm == "pipelined" else None
            rows = []
            for _ in range(interactions):
                plan = workload.interaction_plan(db, rng)
                result = workload.run_plan(db, plan, session=session)
                rows.append(
                    (result.name, tuple(sorted(result.query_operations.items())),
                     result.latency_seconds)
                )
            records[arm] = rows
        serial, pipelined = records["serial"], records["pipelined"]
        assert [r[:2] for r in serial] == [r[:2] for r in pipelined], (
            "per-interaction per-query operation counts must be identical"
        )
        assert sum(r[2] for r in pipelined) < sum(r[2] for r in serial)

    def test_serial_latency_is_sum_pipelined_is_max_per_stage(self):
        db, workload = fresh_tpcw()
        rng = random.Random(9)
        plan = workload._plan_order_display(db, rng)
        serial = workload.run_plan(db, plan)
        assert serial.latency_seconds == pytest.approx(
            sum(serial.query_latencies.values())
        )

        db2, workload2 = fresh_tpcw()
        rng2 = random.Random(9)
        plan2 = workload2._plan_order_display(db2, rng2)
        pipelined = workload2.run_plan(db2, plan2, session=db2.session())
        assert pipelined.latency_seconds == pytest.approx(
            max(pipelined.query_latencies.values())
        )

    def test_interaction_uses_the_serial_replay(self):
        db, workload = fresh_scadr()
        rng = random.Random(4)
        result = workload.interaction(db, rng)
        assert result.name == "home_page"
        assert set(workload.query_names()) <= set(result.query_latencies)
        assert result.latency_seconds == pytest.approx(
            sum(result.query_latencies.values())
        )

    def test_workload_without_plan_cannot_be_pipelined(self):
        from repro.workloads.base import Workload

        class Opaque(Workload):
            def setup(self, db, scale):  # pragma: no cover - unused
                pass

            def query_names(self):
                return []

            def query_sql(self, name):
                raise KeyError(name)

            def sample_parameters(self, name, rng):
                return {}

        db, _ = fresh_scadr()
        with pytest.raises(NotImplementedError):
            Opaque().interaction_plan(db, random.Random(0))


class TestPipelinedServing:
    def test_closed_loop_pipelined_beats_serial(self):
        from repro.serving import ServingConfig, run_serving_simulation

        percentiles = {}
        for pipelined in (False, True):
            db, workload = fresh_tpcw(seed=13)
            db.cluster.reseed_latency_models(13)
            report = run_serving_simulation(
                db,
                workload,
                ServingConfig(
                    mode="closed",
                    clients=10,
                    think_time_seconds=0.3,
                    duration_seconds=5.0,
                    pipelined=pipelined,
                    seed=13,
                ),
            )
            assert report.completed > 50
            percentiles[pipelined] = report.response_percentile_ms(0.50)
        assert percentiles[True] < percentiles[False]

    def test_request_records_carry_operation_counts(self):
        from repro.serving import ServingConfig, run_serving_simulation

        db, workload = fresh_tpcw(seed=19)
        report = run_serving_simulation(
            db,
            workload,
            ServingConfig(
                mode="open",
                clients=5,
                arrival_rate_per_second=20.0,
                duration_seconds=3.0,
                pipelined=True,
                seed=19,
            ),
        )
        assert report.log.records
        for record in report.log.records:
            assert record.operations > 0
            assert record.operations == sum(
                ops for _, ops in record.query_operations
            )
