"""Engine-level availability semantics: typed errors and the retry path."""

import pytest

from repro import (
    ClusterConfig,
    PiqlDatabase,
    QuorumNotMetError,
    UnavailableError,
)
from repro.workloads.scadr.schema import scadr_ddl


def make_db() -> PiqlDatabase:
    db = PiqlDatabase.simulated(
        ClusterConfig(storage_nodes=4, replication=3, read_quorum=2,
                      write_quorum=2, seed=9)
    )
    db.execute_ddl(scadr_ddl(max_subscriptions=10))
    for name in ("alice", "bob"):
        db.insert("users", {"username": name, "password": "x",
                            "hometown": "berkeley", "created": 1})
    return db


FIND_USER = "SELECT * FROM users WHERE username = <name>"


class TestTypedUnavailable:
    def test_execute_surfaces_typed_error_when_quorum_lost(self):
        db = make_db()
        for node_id in (0, 1, 2):
            db.cluster.crash_node(node_id)
        with pytest.raises(UnavailableError):
            db.execute(FIND_USER, name="alice")

    def test_execute_retries_and_succeeds_after_recovery(self):
        db = make_db()
        for node_id in (0, 1, 2):
            db.cluster.crash_node(node_id)

        # Heal the cluster from inside the retry loop: the first attempt
        # fails, the retry finds the replicas back.
        original = db.executor.execute
        state = {"calls": 0}

        def flaky(*args, **kwargs):
            state["calls"] += 1
            if state["calls"] == 1:
                raise QuorumNotMetError("read", "users", 2, 1)
            for node_id in (0, 1, 2):
                if not db.cluster.node(node_id).up:
                    db.cluster.recover_node(node_id)
            return original(*args, **kwargs)

        db.executor.execute = flaky
        result = db.execute(FIND_USER, name="alice")
        assert state["calls"] == 2
        assert result.rows[0]["username"] == "alice"

    def test_retries_exhaust_and_reraise(self):
        db = make_db()
        db.unavailable_retries = 3
        calls = {"n": 0}

        def always_down(*args, **kwargs):
            calls["n"] += 1
            raise QuorumNotMetError("read", "users", 2, 0)

        db.executor.execute = always_down
        with pytest.raises(QuorumNotMetError):
            db.execute(FIND_USER, name="alice")
        assert calls["n"] == 4  # initial attempt + 3 retries

    def test_new_client_inherits_retry_budget(self):
        db = make_db()
        db.unavailable_retries = 5
        assert db.new_client().unavailable_retries == 5

    def test_partial_range_reads_counted_by_client(self):
        db = make_db()
        cluster = db.cluster
        for node_id in (0, 1, 2):
            cluster.crash_node(node_id)
        table = db.catalog.table("users")
        with pytest.raises(UnavailableError):
            db.client.get_range(table.namespace, None, None)
        pairs = db.client.get_range(table.namespace, None, None,
                                    allow_partial=True)
        assert isinstance(pairs, list)
        assert db.client.stats.partial_results == 1
