"""Tests for the PiqlDatabase facade."""

import pytest

from repro import ClusterConfig, ExecutionStrategy, PiqlDatabase
from repro.errors import SchemaError
from repro.workloads.scadr.schema import scadr_ddl


class TestDdlExecution:
    def test_execute_ddl_creates_tables_and_storage(self, empty_db):
        created = empty_db.execute_ddl(scadr_ddl(50))
        assert created == ["users", "subscriptions", "thoughts"]
        assert empty_db.catalog.has_table("users")
        assert "table:users" in empty_db.storage_summary()

    def test_execute_ddl_accepts_statement_list(self, empty_db):
        created = empty_db.execute_ddl(
            [
                "CREATE TABLE a (x INT, PRIMARY KEY (x))",
                "CREATE INDEX idx_a ON a (x)",
                "INSERT INTO a (x) VALUES (1)",
            ]
        )
        assert created == ["a", "idx_a"]
        assert empty_db.get("a", [1]) == {"x": 1}

    def test_execute_ddl_rejects_select(self, empty_db):
        with pytest.raises(SchemaError):
            empty_db.execute_ddl("SELECT * FROM x")

    def test_constraint_index_auto_created(self, empty_db):
        # A cardinality limit on a non-prefix column needs a supporting index
        # for the insert-time count; it must be provisioned automatically.
        empty_db.execute_ddl(
            "CREATE TABLE msgs (sender VARCHAR(10), id INT, room VARCHAR(10), "
            "PRIMARY KEY (sender, id), CARDINALITY LIMIT 3 (room))"
        )
        assert any(
            index.table == "msgs" for index in empty_db.catalog.indexes()
        )
        for i in range(3):
            empty_db.insert("msgs", {"sender": "a", "id": i, "room": "r1"})
        from repro.errors import CardinalityViolationError

        with pytest.raises(CardinalityViolationError):
            empty_db.insert("msgs", {"sender": "a", "id": 99, "room": "r1"})


class TestPrepare:
    def test_prepare_caches(self, scadr_db, thoughtstream_sql):
        assert scadr_db.prepare(thoughtstream_sql) is scadr_db.prepare(thoughtstream_sql)

    def test_prepare_creates_required_indexes(self, scadr_db):
        before = len(scadr_db.catalog.indexes())
        scadr_db.prepare(
            "SELECT * FROM users WHERE hometown LIKE [1: town] LIMIT 5"
        )
        assert len(scadr_db.catalog.indexes()) == before + 1
        # The new inverted index is immediately usable.
        result = scadr_db.execute(
            "SELECT * FROM users WHERE hometown LIKE [1: town] LIMIT 5",
            {"town": "berkeley"},
        )
        assert {row["username"] for row in result.rows} == {"alice", "carol"}

    def test_prepared_cache_invalidated_by_create_table(self, scadr_db,
                                                        thoughtstream_sql):
        first = scadr_db.prepare(thoughtstream_sql)
        scadr_db.execute_ddl(
            "CREATE TABLE extra (id INT, PRIMARY KEY (id))"
        )
        second = scadr_db.prepare(thoughtstream_sql)
        assert second is not first
        # The recompiled query is cached again.
        assert scadr_db.prepare(thoughtstream_sql) is second

    def test_prepared_cache_invalidated_by_create_index(self, scadr_db,
                                                        thoughtstream_sql):
        from repro.schema.ddl import IndexColumn, IndexDefinition

        first = scadr_db.prepare(thoughtstream_sql)
        scadr_db.create_index(
            IndexDefinition(
                name="idx_users_hometown",
                table="users",
                columns=(IndexColumn("hometown"),),
            )
        )
        assert scadr_db.prepare(thoughtstream_sql) is not first

    def test_prepare_with_auto_index_still_caches(self, scadr_db):
        # Preparing this query creates its own inverted index, which clears
        # the cache mid-prepare; the freshly prepared query must still be
        # cached afterwards.
        sql = "SELECT * FROM users WHERE hometown LIKE [1: town] LIMIT 5"
        assert scadr_db.prepare(sql) is scadr_db.prepare(sql)

    def test_diagnose_passthrough(self, scadr_db):
        diagnosis = scadr_db.diagnose("SELECT * FROM users WHERE hometown = 'x'")
        assert not diagnosis.scale_independent

    def test_keyword_and_dict_parameters(self, scadr_db):
        prepared = scadr_db.prepare("SELECT * FROM users WHERE username = <u>")
        assert prepared.execute({"u": "alice"}).rows == prepared.execute(u="alice").rows


class TestClientViews:
    def test_new_client_shares_data_but_not_clock(self, scadr_db):
        view = scadr_db.new_client(strategy=ExecutionStrategy.LAZY)
        assert view.cluster is scadr_db.cluster
        assert view.catalog is scadr_db.catalog
        result = view.execute("SELECT * FROM users WHERE username = <u>", {"u": "bob"})
        assert result.rows[0]["username"] == "bob"
        assert view.client.clock.now > 0
        assert view.client.clock.now != scadr_db.client.clock.now
        assert view.executor.config.strategy is ExecutionStrategy.LAZY

    def test_new_client_accepts_external_clock(self, scadr_db):
        from repro.kvstore.simtime import SimClock

        clock = SimClock(now=5.0)
        view = scadr_db.new_client(clock=clock)
        assert view.client.clock is clock
        view.execute("SELECT * FROM users WHERE username = <u>", {"u": "bob"})
        assert clock.now > 5.0

    def test_reset_measurements(self, scadr_db):
        scadr_db.execute("SELECT * FROM users WHERE username = <u>", {"u": "bob"})
        assert scadr_db.client.clock.now > 0
        scadr_db.reset_measurements()
        assert scadr_db.client.clock.now == 0
        assert scadr_db.client.stats.operations == 0

    def test_set_offered_load(self, scadr_db):
        scadr_db.set_offered_load(
            scadr_db.cluster.config.storage_nodes * 4000 * 0.5
        )
        assert all(node.utilization == pytest.approx(0.5) for node in scadr_db.cluster.nodes)
