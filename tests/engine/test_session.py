"""Tests for the asynchronous session API: futures, gather, cursors."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.engine.session import QueryFuture, ResultCursor, Session
from repro.errors import ExecutionError

USERS_BY_NAME = "SELECT * FROM users WHERE username = <u>"
RECENT_THOUGHTS = (
    "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 10"
)
PAGINATED_THOUGHTS = (
    "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 6"
)


def fresh_scadr_db(seed: int = 7) -> PiqlDatabase:
    """A small hand-populated database (fresh ⇒ deterministic noise streams)."""
    from repro.workloads.scadr.schema import scadr_ddl

    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=seed))
    db.execute_ddl(scadr_ddl(max_subscriptions=100))
    for index, name in enumerate(["alice", "bob", "carol", "dave"]):
        db.insert(
            "users",
            {"username": name, "password": f"pw{index}", "hometown": "berkeley",
             "created": 1_000 + index},
        )
        for sequence in range(20):
            db.insert(
                "thoughts",
                {"owner": name, "timestamp": 1_000_000 + sequence,
                 "text": f"thought {sequence} from {name}"},
            )
    db.reset_measurements()
    return db


class TestFutures:
    def test_submit_is_non_blocking(self):
        db = fresh_scadr_db()
        session = db.session()
        future = session.submit(USERS_BY_NAME, u="alice")
        assert isinstance(future, QueryFuture)
        assert not future.done()
        assert session.now == 0.0, "submission must not charge the clock"

    def test_result_resolves_inline_and_charges_sequentially(self):
        db = fresh_scadr_db()
        session = db.session()
        future = session.submit(USERS_BY_NAME, u="alice")
        cursor = future.result()
        assert future.done()
        assert cursor.rows[0]["username"] == "alice"
        assert session.now == pytest.approx(cursor.latency_seconds)
        assert future.latency_seconds == pytest.approx(cursor.latency_seconds)

    def test_result_is_idempotent(self):
        db = fresh_scadr_db()
        session = db.session()
        future = session.submit(USERS_BY_NAME, u="bob")
        first = future.result()
        at = session.now
        assert future.result() is first
        assert session.now == at, "re-reading a result must charge nothing"

    def test_foreign_future_rejected(self):
        db = fresh_scadr_db()
        other = fresh_scadr_db()
        future = other.session().submit(USERS_BY_NAME, u="alice")
        with pytest.raises(ExecutionError):
            db.session().gather(future)

    def test_failed_future_raises_from_gather_and_result(self):
        db = fresh_scadr_db()
        session = db.session()
        good = session.submit(USERS_BY_NAME, u="alice")
        bad = session.submit(USERS_BY_NAME)  # parameter never bound
        with pytest.raises(KeyError):
            session.gather(good, bad)
        assert good.done() and bad.done()
        assert bad.exception() is not None
        with pytest.raises(KeyError):
            bad.result()
        # The successful sibling's result is still available.
        assert good.result().rows


class TestGather:
    def test_gather_charges_max_of_branches(self):
        serial_db = fresh_scadr_db()
        r1 = serial_db.execute(USERS_BY_NAME, u="alice")
        r2 = serial_db.execute(RECENT_THOUGHTS, u="bob")
        serial_total = serial_db.client.clock.now
        assert serial_total == pytest.approx(
            r1.latency_seconds + r2.latency_seconds
        )

        db = fresh_scadr_db()
        session = db.session()
        f1 = session.submit(USERS_BY_NAME, u="alice")
        f2 = session.submit(RECENT_THOUGHTS, u="bob")
        c1, c2 = session.gather(f1, f2)
        assert session.now == pytest.approx(
            max(f1.latency_seconds, f2.latency_seconds)
        )
        assert session.now < serial_total
        # Identical rows and identical per-query work in both modes.
        assert c1.rows == r1.rows and c2.rows == r2.rows
        assert c1.operations == r1.operations
        assert c2.operations == r2.operations

    def test_gather_preserves_per_query_bounds(self):
        db = fresh_scadr_db()
        session = db.session()
        prepared = db.prepare(RECENT_THOUGHTS)
        futures = [session.submit(prepared, u=name) for name in
                   ("alice", "bob", "carol")]
        cursors = session.gather(*futures)
        for cursor in cursors:
            assert cursor.operations <= prepared.operation_bound

    def test_gather_returns_results_in_argument_order(self):
        db = fresh_scadr_db()
        session = db.session()
        f1 = session.submit(USERS_BY_NAME, u="carol")
        f2 = session.submit(USERS_BY_NAME, u="dave")
        c1, c2 = session.gather(f1, f2)
        assert c1.rows[0]["username"] == "carol"
        assert c2.rows[0]["username"] == "dave"

    def test_gather_tolerates_duplicate_futures(self):
        db = fresh_scadr_db()
        session = db.session()
        future = session.submit(USERS_BY_NAME, u="alice")
        c1, c2 = session.gather(future, future)
        assert c1 is c2
        assert session.now == pytest.approx(future.latency_seconds)

    def test_gather_of_already_done_futures_charges_nothing(self):
        db = fresh_scadr_db()
        session = db.session()
        future = session.submit(USERS_BY_NAME, u="alice")
        future.result()
        at = session.now
        session.gather(future)
        assert session.now == at

    def test_nested_gather_rejected(self):
        db = fresh_scadr_db()
        session = db.session()

        def nested(view):
            view.default_session.gather(
                view.default_session.submit(USERS_BY_NAME, u="bob")
            )

        future = session.call(nested)
        with pytest.raises(ExecutionError):
            session.gather(future, session.submit(USERS_BY_NAME, u="alice"))

    def test_deterministic_timeline_given_seed(self):
        """Same seed + same DAG ⇒ identical simulated timeline."""
        timelines = []
        for _ in range(2):
            db = fresh_scadr_db(seed=21)
            session = db.session()
            marks = []
            for name in ("alice", "bob"):
                futures = [
                    session.submit(USERS_BY_NAME, u=name),
                    session.submit(RECENT_THOUGHTS, u=name),
                ]
                session.gather(*futures)
                marks.append(
                    (session.now, tuple(f.latency_seconds for f in futures))
                )
            timelines.append(marks)
        assert timelines[0] == timelines[1]


class TestCoalescing:
    def test_duplicate_reads_coalesce_within_gather(self):
        db = fresh_scadr_db()
        session = db.session()
        f1 = session.submit(USERS_BY_NAME, u="alice")
        f2 = session.submit(USERS_BY_NAME, u="alice")
        c1, c2 = session.gather(f1, f2)
        assert c1.rows == c2.rows
        stats = db.client.stats
        assert stats.coalesced_reads >= 1
        # Coalescing never hides work: both queries count their operations.
        assert c1.operations == c2.operations
        assert stats.operations == c1.operations + c2.operations

    def test_no_coalescing_outside_gather(self):
        db = fresh_scadr_db()
        db.execute(USERS_BY_NAME, u="alice")
        db.execute(USERS_BY_NAME, u="alice")
        assert db.client.stats.coalesced_reads == 0

    def test_write_inside_gather_invalidates_cached_read(self):
        db = fresh_scadr_db()
        session = db.session()

        read_first = session.submit(USERS_BY_NAME, u="alice")

        def update(view):
            row = dict(view.get("users", ["alice"]))
            row["hometown"] = "oakland"
            view.update("users", row)

        write = session.call(update, label="relocate")
        read_after = session.submit(USERS_BY_NAME, u="alice")
        session.gather(read_first, write, read_after)
        # The branch submitted after the write observes the new value rather
        # than the coalescing buffer's stale entry.
        assert read_after.result().rows[0]["hometown"] == "oakland"


class TestResultCursor:
    def test_single_page_cursor_matches_query_result(self):
        db = fresh_scadr_db()
        cursor = db.session().execute(USERS_BY_NAME, u="alice")
        assert isinstance(cursor, ResultCursor)
        assert not cursor.has_more
        result = cursor.to_query_result()
        assert cursor.fetch_all() == result.rows
        assert cursor.operations == result.operations

    def test_pages_stream_lazily(self):
        db = fresh_scadr_db()
        cursor = db.session().execute(PAGINATED_THOUGHTS, u="alice")
        assert cursor.pages_fetched == 1
        assert cursor.has_more
        operations_before = cursor.operations
        rows = list(cursor)
        assert cursor.pages_fetched > 1
        assert cursor.operations > operations_before
        assert len(rows) == 20

    def test_lazy_fetches_charge_the_session_clock(self):
        db = fresh_scadr_db()
        session = db.session()
        cursor = session.execute(PAGINATED_THOUGHTS, u="bob")
        after_first_page = session.now
        cursor.fetch_all()
        assert session.now > after_first_page
        assert session.now == pytest.approx(cursor.latency_seconds)

    def test_fetch_all_matches_legacy_pages(self):
        db = fresh_scadr_db()
        legacy = [
            row
            for page in db.prepare(PAGINATED_THOUGHTS).pages(u="carol")
            for row in page.rows
        ]
        db2 = fresh_scadr_db()
        assert db2.session().execute(PAGINATED_THOUGHTS, u="carol").fetch_all() \
            == legacy

    def test_iterating_twice_does_not_refetch(self):
        db = fresh_scadr_db()
        cursor = db.session().execute(PAGINATED_THOUGHTS, u="dave")
        first = cursor.fetch_all()
        operations = cursor.operations
        assert cursor.fetch_all() == first
        assert cursor.operations == operations


class TestLegacyShims:
    def test_prepared_execute_goes_through_default_session(self, scadr_db):
        prepared = scadr_db.prepare(USERS_BY_NAME)
        assert isinstance(prepared._session, Session)
        result = prepared.execute(u="alice")
        # The shim returns the eager QueryResult type, not a cursor.
        from repro import QueryResult

        assert isinstance(result, QueryResult)
        assert result.rows[0]["username"] == "alice"

    def test_db_execute_unchanged(self, scadr_db):
        result = scadr_db.execute(USERS_BY_NAME, {"u": "bob"})
        assert result.rows[0]["username"] == "bob"
        assert result.latency_seconds > 0

    def test_call_future_measures_write_cost(self):
        db = fresh_scadr_db()
        session = db.session()
        future = session.call(
            lambda view: view.insert(
                "thoughts",
                {"owner": "alice", "timestamp": 5_000_000, "text": "hi"},
                upsert=True,
            ),
            label="post",
        )
        outcome = future.result()
        assert outcome.operations >= 1
        assert outcome.latency_seconds > 0
        assert session.now == pytest.approx(outcome.latency_seconds)


class TestAutoIndexReporting:
    def test_required_indexes_stable_across_recompiles(self, scadr_db):
        """Re-preparing after the auto index exists must still report it.

        This is the seed-era Table 1 bug: ``required_indexes`` only listed
        indexes that did not exist yet, so whichever query compiled first
        "stole" the report from every later compile.
        """
        sql = "SELECT * FROM users WHERE hometown LIKE [1: town] LIMIT 5"
        first = scadr_db.prepare(sql)
        assert first.optimized.required_indexes
        described = [ix.describe() for ix in first.optimized.required_indexes]
        # Invalidate the plan cache with unrelated DDL and recompile.
        scadr_db.execute_ddl("CREATE TABLE unrelated (id INT, PRIMARY KEY (id))")
        second = scadr_db.prepare(sql)
        assert second is not first
        assert [ix.describe() for ix in second.optimized.required_indexes] \
            == described

    def test_schema_declared_indexes_not_reported(self, scadr_db,
                                                  thoughtstream_sql):
        # The thoughtstream plan runs off primary indexes plus the schema's
        # own constraint metadata — nothing "additional" to report, before
        # or after other queries create their automatic indexes.
        scadr_db.prepare("SELECT * FROM users WHERE hometown LIKE [1: x] LIMIT 5")
        prepared = scadr_db.prepare(thoughtstream_sql)
        assert prepared.optimized.required_indexes == []
