"""Shared fixtures for the PIQL reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.workloads import ScadrWorkload, TpcwWorkload, WorkloadScale
from repro.workloads.scadr.schema import scadr_ddl


@pytest.fixture
def empty_db() -> PiqlDatabase:
    """A fresh database with no schema on a small simulated cluster."""
    return PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=1234))


@pytest.fixture
def scadr_db() -> PiqlDatabase:
    """A small, hand-populated SCADr database used by many tests.

    Layout: four users; ``alice`` subscribes to the other three (one of them
    unapproved); every user has 20 thoughts with increasing timestamps.
    """
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=7))
    db.execute_ddl(scadr_ddl(max_subscriptions=100))
    users = ["alice", "bob", "carol", "dave"]
    for index, name in enumerate(users):
        db.insert(
            "users",
            {
                "username": name,
                "password": f"pw{index}",
                "hometown": "berkeley" if index % 2 == 0 else "seattle",
                "created": 1_000 + index,
            },
        )
    for target in ["bob", "carol", "dave"]:
        db.insert(
            "subscriptions",
            {"owner": "alice", "target": target, "approved": target != "dave"},
        )
    db.insert("subscriptions", {"owner": "bob", "target": "alice", "approved": True})
    for name in users:
        for sequence in range(20):
            db.insert(
                "thoughts",
                {
                    "owner": name,
                    "timestamp": 1_000_000 + sequence,
                    "text": f"thought {sequence} from {name}",
                },
            )
    return db


THOUGHTSTREAM_SQL = """
SELECT t.*
FROM subscriptions s JOIN thoughts t
WHERE t.owner = s.target
  AND s.owner = <uname>
  AND s.approved = true
ORDER BY t.timestamp DESC
LIMIT 10
"""


@pytest.fixture
def thoughtstream_sql() -> str:
    return THOUGHTSTREAM_SQL


@pytest.fixture(scope="session")
def loaded_scadr():
    """A generated SCADr dataset shared (read-only) across the session."""
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=6, seed=99))
    workload = ScadrWorkload(max_subscriptions=10, subscriptions_per_user=5,
                             thoughts_per_user=10)
    workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=60))
    return db, workload


@pytest.fixture(scope="session")
def loaded_tpcw():
    """A generated TPC-W dataset shared (read-only) across the session."""
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=6, seed=101))
    workload = TpcwWorkload()
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=50, items_total=200)
    )
    return db, workload


@pytest.fixture
def rng() -> random.Random:
    return random.Random(2024)
