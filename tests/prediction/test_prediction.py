"""Tests for histograms, operator models, SLO predictions, and heatmaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, PiqlDatabase
from repro.errors import PredictionError
from repro.kvstore.cluster import KeyValueCluster
from repro.prediction import (
    LatencyHistogram,
    OperatorModelKey,
    OperatorModelStore,
    OperatorModelTrainer,
    QueryLatencyModel,
    ServiceLevelObjective,
    SLOPrediction,
    TrainingConfig,
    convolve_all,
    thoughtstream_heatmap,
)
from repro.prediction.slo import observed_interval_quantiles
from repro.workloads.scadr.schema import scadr_ddl

FAST_TRAINING = TrainingConfig(
    alphas=(1, 10, 50, 100, 500),
    join_cardinalities=(1, 10, 50),
    tuple_sizes=(40, 160),
    intervals=3,
    samples_per_interval=4,
    oversample_factor=20,
    max_samples_per_interval=60,
)


@pytest.fixture(scope="module")
def trained_store() -> OperatorModelStore:
    cluster = KeyValueCluster(ClusterConfig(storage_nodes=10, seed=55))
    return OperatorModelTrainer(cluster, FAST_TRAINING).train()


class TestHistogram:
    def test_quantiles_and_mean(self):
        histogram = LatencyHistogram.from_samples([0.010] * 99 + [0.100])
        assert histogram.quantile(0.5) == pytest.approx(0.0105, abs=1e-3)
        assert histogram.quantile(1.0) == pytest.approx(0.1005, abs=1e-3)
        assert 0.010 < histogram.mean() < 0.012

    def test_empty_histogram_rejected(self):
        with pytest.raises(PredictionError):
            LatencyHistogram().quantile(0.99)

    def test_invalid_inputs(self):
        histogram = LatencyHistogram()
        with pytest.raises(PredictionError):
            histogram.add(-1.0)
        histogram.add(0.01)
        with pytest.raises(PredictionError):
            histogram.quantile(0.0)

    def test_convolution_shifts_distribution(self):
        a = LatencyHistogram.from_samples([0.010] * 100)
        b = LatencyHistogram.from_samples([0.020] * 100)
        combined = a.convolve(b)
        assert combined.quantile(0.5) == pytest.approx(0.030, abs=2e-3)

    def test_convolve_all_matches_pairwise(self):
        a = LatencyHistogram.from_samples([0.005] * 50)
        b = LatencyHistogram.from_samples([0.007] * 50)
        c = LatencyHistogram.from_samples([0.002] * 50)
        assert convolve_all([a, b, c]).quantile(0.9) == pytest.approx(
            a.convolve(b).convolve(c).quantile(0.9)
        )

    def test_max_with(self):
        fast = LatencyHistogram.from_samples([0.001] * 100)
        slow = LatencyHistogram.from_samples([0.050] * 100)
        assert fast.max_with(slow).quantile(0.5) == pytest.approx(0.0505, abs=2e-3)

    def test_merge_pools_observations(self):
        a = LatencyHistogram.from_samples([0.001] * 10)
        b = LatencyHistogram.from_samples([0.003] * 10)
        assert a.merge(b).total == 20

    def test_incompatible_binning_rejected(self):
        a = LatencyHistogram(bin_width_seconds=0.001)
        b = LatencyHistogram(bin_width_seconds=0.002)
        a.add(0.01)
        b.add(0.01)
        with pytest.raises(PredictionError):
            a.convolve(b)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=200),
           st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100)
    def test_quantile_is_monotone_and_bounded(self, samples, q):
        histogram = LatencyHistogram.from_samples(samples)
        value = histogram.quantile(q)
        assert 0 <= value <= histogram.max_latency_seconds + 1e-9
        assert histogram.quantile(1.0) >= value

    @given(st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=50),
           st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_convolution_dominates_components(self, left, right):
        a = LatencyHistogram.from_samples(left)
        b = LatencyHistogram.from_samples(right)
        combined = a.convolve(b)
        # The p99 of a sum of non-negative variables is at least each part's p99
        # minus binning error.
        assert combined.quantile(0.99) >= max(a.quantile(0.99), b.quantile(0.99)) - 0.002


class TestSLO:
    def test_slo_validation(self):
        with pytest.raises(PredictionError):
            ServiceLevelObjective(quantile=1.5)
        with pytest.raises(PredictionError):
            ServiceLevelObjective(latency_seconds=0)

    def test_prediction_statistics(self):
        prediction = SLOPrediction(0.99, [0.1, 0.2, 0.3, 0.4])
        assert prediction.max_seconds == 0.4
        assert prediction.mean_seconds == pytest.approx(0.25)
        assert prediction.percentile_across_intervals(0.5) == 0.3

    def test_violation_risk_and_meets(self):
        prediction = SLOPrediction(0.99, [0.1, 0.2, 0.6, 0.7])
        slo = ServiceLevelObjective(latency_seconds=0.5)
        assert prediction.violation_risk(slo) == pytest.approx(0.5)
        assert not prediction.meets(slo)
        assert prediction.meets(slo, max_risk=0.5)

    def test_observed_interval_quantiles(self):
        quantiles = observed_interval_quantiles([[0.1] * 10, [0.2] * 10], 0.99)
        assert quantiles == [0.1, 0.2]
        with pytest.raises(PredictionError):
            observed_interval_quantiles([[]], 0.99)


class TestOperatorModels:
    def test_training_covers_all_operator_kinds(self, trained_store):
        operators = {key.operator for key in trained_store.keys()}
        assert operators == {"index_scan", "lookup", "sorted_index_join"}
        assert trained_store.intervals() == [0, 1, 2]

    def test_resolve_key_is_conservative(self, trained_store):
        requested = OperatorModelKey("index_scan", 60, 0, 100)
        resolved = trained_store.resolve_key(requested)
        assert resolved.alpha >= 60
        assert resolved.tuple_bytes >= 100

    def test_resolve_key_falls_back_to_largest(self, trained_store):
        requested = OperatorModelKey("index_scan", 10_000, 0, 10_000)
        resolved = trained_store.resolve_key(requested)
        assert resolved.alpha == max(FAST_TRAINING.alphas)

    def test_untrained_operator_rejected(self):
        store = OperatorModelStore()
        with pytest.raises(PredictionError):
            store.resolve_key(OperatorModelKey("index_scan", 10, 0, 10))

    def test_latency_grows_with_cardinality(self, trained_store):
        small = trained_store.histogram(OperatorModelKey("index_scan", 10, 0, 40))
        large = trained_store.histogram(OperatorModelKey("index_scan", 500, 0, 40))
        assert large.quantile(0.9) > small.quantile(0.9)


class TestQueryPrediction:
    @pytest.fixture
    def scadr_model(self, trained_store):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=5))
        db.execute_ddl(scadr_ddl(100))
        return db, QueryLatencyModel(trained_store, db.catalog)

    def test_requirements_extracted_from_plan(self, scadr_model, thoughtstream_sql):
        db, model = scadr_model
        plan = db.prepare(thoughtstream_sql).physical_plan
        requirements = model.operator_requirements(plan)
        kinds = [req.key.operator for req in requirements]
        assert kinds.count("index_scan") == 1
        assert kinds.count("sorted_index_join") == 1

    def test_prediction_is_per_interval(self, scadr_model, thoughtstream_sql):
        db, model = scadr_model
        plan = db.prepare(thoughtstream_sql).physical_plan
        prediction = model.predict(plan, 0.99)
        assert len(prediction.interval_quantiles_seconds) == FAST_TRAINING.intervals
        assert prediction.max_seconds >= prediction.mean_seconds > 0

    def test_join_prediction_larger_than_point_lookup(self, scadr_model, thoughtstream_sql):
        db, model = scadr_model
        join_plan = db.prepare(thoughtstream_sql).physical_plan
        point_plan = db.prepare("SELECT * FROM users WHERE username = <u>").physical_plan
        assert model.predict_quantile(join_plan) > model.predict_quantile(point_plan)


class TestHeatmap:
    def test_thoughtstream_heatmap_shape_and_monotonicity(self, trained_store):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=5))
        db.execute_ddl(scadr_ddl(100))
        model = QueryLatencyModel(trained_store, db.catalog)
        heatmap = thoughtstream_heatmap(
            model,
            subscription_counts=(100, 300, 500),
            page_sizes=(10, 30, 50),
        )
        assert len(heatmap.cells_seconds) == 3
        assert len(heatmap.cells_seconds[0]) == 3
        # Latency grows along both axes (as in Figure 6).
        assert heatmap.cell_ms(500, 10) > heatmap.cell_ms(100, 10)
        assert heatmap.cell_ms(100, 50) > heatmap.cell_ms(100, 10)
        rendered = heatmap.render()
        assert "records per page" in rendered

    def test_acceptable_settings_against_slo(self, trained_store):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=5))
        db.execute_ddl(scadr_ddl(100))
        model = QueryLatencyModel(trained_store, db.catalog)
        heatmap = thoughtstream_heatmap(
            model, subscription_counts=(100, 500), page_sizes=(10, 50)
        )
        slo = ServiceLevelObjective(latency_seconds=heatmap.cells_seconds[0][0] + 1e-6)
        acceptable = heatmap.acceptable_settings(slo)
        assert (100, 10) in acceptable
        assert (500, 50) not in acceptable
