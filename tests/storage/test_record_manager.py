"""Unit tests for the record manager, index maintenance, and constraints."""

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.errors import CardinalityViolationError, UniquenessViolationError
from repro.schema.ddl import IndexColumn, IndexDefinition
from repro.storage.fulltext import query_token, tokenize
from repro.storage.rows import (
    deserialize_pk,
    deserialize_row,
    index_entries,
    index_namespace,
    record_key,
    serialize_pk,
    serialize_row,
)
from repro.workloads.scadr.schema import scadr_ddl


@pytest.fixture
def db() -> PiqlDatabase:
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=11))
    db.execute_ddl(scadr_ddl(max_subscriptions=3))
    return db


class TestTokenizer:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Hello, World! HELLO") == ["hello", "world"]

    def test_tokenize_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []

    def test_query_token_strips_wildcards(self):
        assert query_token("%Database%") == "database"
        assert query_token("two words") == "two"
        assert query_token("") == ""


class TestRowSerialization:
    def test_row_roundtrip(self):
        row = {"a": 1, "b": "text", "c": None, "d": True}
        assert deserialize_row(serialize_row(row)) == row

    def test_pk_roundtrip(self):
        assert deserialize_pk(serialize_pk(["alice", 42])) == ["alice", 42]

    def test_index_entries_tokenized(self, db):
        catalog = db.catalog
        users = catalog.table("users")
        index = IndexDefinition(
            "idx_town", "users", (IndexColumn("hometown", tokenized=True),)
        )
        row = {"username": "a", "password": "p", "hometown": "san francisco",
               "created": 1}
        entries = list(index_entries(index, users, row))
        assert len(entries) == 2  # one posting per token
        assert all(deserialize_pk(value) == ["a"] for _, value in entries)

    def test_index_entries_skip_missing_token_value(self, db):
        users = db.catalog.table("users")
        index = IndexDefinition(
            "idx_town", "users", (IndexColumn("hometown", tokenized=True),)
        )
        row = {"username": "a", "password": "p", "hometown": None, "created": 1}
        assert list(index_entries(index, users, row)) == []


class TestInsertProtocol:
    def test_insert_and_get(self, db):
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        assert db.get("users", ["bob"])["hometown"] == "sf"

    def test_duplicate_primary_key_rejected(self, db):
        row = {"username": "bob", "password": "x", "hometown": "sf", "created": 1}
        db.insert("users", row)
        with pytest.raises(UniquenessViolationError):
            db.insert("users", row)

    def test_upsert_allows_overwrite(self, db):
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        db.insert("users", {"username": "bob", "password": "y", "hometown": "la",
                            "created": 2}, upsert=True)
        assert db.get("users", ["bob"])["hometown"] == "la"

    def test_cardinality_limit_enforced(self, db):
        for target in ("a", "b", "c"):
            db.insert("subscriptions", {"owner": "bob", "target": target,
                                        "approved": True})
        with pytest.raises(CardinalityViolationError):
            db.insert("subscriptions", {"owner": "bob", "target": "d",
                                        "approved": True})
        # The violating record was rolled back.
        assert db.get("subscriptions", ["bob", "d"]) is None
        # A different owner is unaffected.
        db.insert("subscriptions", {"owner": "carol", "target": "a",
                                    "approved": True})

    def test_delete_removes_record(self, db):
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        assert db.delete("users", ["bob"]) is True
        assert db.get("users", ["bob"]) is None
        assert db.delete("users", ["bob"]) is False


class TestIndexMaintenance:
    def _entry_count(self, db, index_name):
        index = db.catalog.index(index_name)
        return db.cluster.namespace_size(index_namespace(index))

    def test_secondary_index_updated_on_insert_and_delete(self, db):
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        assert self._entry_count(db, "idx_hometown") == 1
        db.delete("users", ["bob"])
        assert self._entry_count(db, "idx_hometown") == 0

    def test_update_replaces_stale_entries(self, db):
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        db.update("users", {"username": "bob", "password": "x", "hometown": "la",
                            "created": 1})
        index = db.catalog.index("idx_hometown")
        entries = list(db.cluster.iter_namespace(index_namespace(index)))
        assert len(entries) == 1
        # The remaining entry is for the new value.
        row = db.get("users", ["bob"])
        assert row["hometown"] == "la"

    def test_failed_duplicate_insert_keeps_survivor_entries(self, db):
        """The uniqueness-violation undo must not strip the surviving row
        out of its indexes when the duplicate shares its indexed values."""
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        import pytest as _pytest
        from repro.errors import UniquenessViolationError
        with _pytest.raises(UniquenessViolationError):
            db.insert("users", {"username": "bob", "password": "y",
                                "hometown": "sf", "created": 2})
        assert self._entry_count(db, "idx_hometown") == 1
        rows = db.execute(
            "SELECT * FROM users WHERE hometown = 'sf' LIMIT 5"
        ).rows
        assert [r["username"] for r in rows] == ["bob"]

    def test_upsert_overwrite_removes_stale_entries_on_view_tables(self, db):
        """On a view-driving table the old row is read anyway (contribution
        retraction), so upsert overwrites also clean their stale entries."""
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        db.create_materialized_view(
            "CREATE MATERIALIZED VIEW hometown_counts AS "
            "SELECT hometown, COUNT(*) AS n FROM users GROUP BY hometown"
        )
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1}, upsert=True)
        db.insert("users", {"username": "bob", "password": "x", "hometown": "la",
                            "created": 1}, upsert=True)
        index = db.catalog.index("idx_hometown")
        entries = list(db.cluster.iter_namespace(index_namespace(index)))
        # The overwrite deleted the old row's sf entry: no phantom match.
        assert len(entries) == 1

    def test_update_skips_unchanged_index_entries(self, db):
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        db.insert("users", {"username": "bob", "password": "x", "hometown": "sf",
                            "created": 1})
        before = db.client.stats.operations
        # hometown (the indexed value) is unchanged: the update must cost
        # exactly the base record's get + put — no index rewrites at all.
        db.update("users", {"username": "bob", "password": "y", "hometown": "sf",
                            "created": 1})
        assert db.client.stats.operations - before == 2
        assert self._entry_count(db, "idx_hometown") == 1

    def test_backfill_on_late_index_creation(self, db):
        for name in ("a", "b", "c"):
            db.insert("users", {"username": name, "password": "x",
                                "hometown": "sf", "created": 1})
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        assert self._entry_count(db, "idx_hometown") == 3

    def test_bulk_load_populates_indexes(self, db):
        db.create_index(
            IndexDefinition("idx_hometown", "users",
                            (IndexColumn("hometown"), IndexColumn("username")))
        )
        count = db.bulk_load(
            "users",
            ({"username": f"u{i}", "password": "x", "hometown": "sf", "created": i}
             for i in range(10)),
        )
        assert count == 10
        assert db.records.count("users") == 10
        assert self._entry_count(db, "idx_hometown") == 10

    def test_record_key_uses_primary_key_order(self, db):
        table = db.catalog.table("subscriptions")
        row = {"owner": "a", "target": "b", "approved": True}
        assert record_key(table, row) == record_key(table, dict(reversed(list(row.items()))))
