"""Chaos-soak harness smoke tests (quick configuration).

The full soak lives in ``repro.bench.bench_chaos_soak``; here the quick
configuration runs once end-to-end and every hard invariant must hold:
no acked write lost, no runtime-bound violation, read-your-writes, post-
heal convergence, the availability floor, and strict dominance of the
resilient client over naive retries inside the partition windows.
"""

import dataclasses

import pytest

from repro.bench.chaos import (
    ChaosSoakConfig,
    ChaosSoakExperiment,
    run_chaos_soak,
)
from repro.replication.faults import validate_timeline


class TestChaosSchedule:
    def test_fault_schedule_is_valid_and_deterministic(self):
        config = ChaosSoakConfig()
        faults = config.faults()
        validate_timeline(faults)
        assert faults == config.faults()
        kinds = {spec.kind for spec in faults}
        assert kinds == {
            "crash", "recover", "partition", "flaky", "slow", "restore",
            "delay", "heal",
        }

    def test_quick_schedule_scales_into_the_fault_window(self):
        config = ChaosSoakConfig().quick()
        faults = config.faults()
        validate_timeline(faults)
        assert all(
            config.warmup_seconds
            <= spec.time
            < config.warmup_seconds + config.fault_seconds
            for spec in faults
        )

    def test_partition_windows_cover_both_partitions(self):
        config = ChaosSoakConfig()
        windows = config.partition_windows()
        assert len(windows) == 2
        partition_times = sorted(
            spec.time for spec in config.faults() if spec.kind == "partition"
        )
        assert [w[0] for w in windows] == partition_times
        assert all(start < end for start, end in windows)


class TestChaosSoakQuick:
    @pytest.fixture(scope="class")
    def result(self):
        return run_chaos_soak(ChaosSoakConfig().quick())

    def test_all_invariants_hold(self, result):
        invariants = result.invariants()
        failing = [name for name, ok in invariants.items() if not ok]
        assert not failing, f"chaos invariants violated: {failing}"
        assert result.holds

    def test_resilient_strictly_dominates_in_partition_windows(self, result):
        naive = result.arms["naive"]
        resilient = result.arms["resilient"]
        assert resilient.window_failures < naive.window_failures

    def test_fault_free_prefix_is_paired(self, result):
        naive = result.arms["naive"]
        resilient = result.arms["resilient"]
        assert naive.prefix_completed == resilient.prefix_completed
        assert naive.prefix_completed > 0

    def test_payload_is_json_ready(self, result):
        import json

        payload = result.payload()
        encoded = json.loads(json.dumps(payload))
        assert encoded["invariants"]["no_lost_writes"] is True
        assert set(encoded["arms"]) == {"naive", "resilient"}
        arm = encoded["arms"]["resilient"]
        assert arm["write_audit"]["lost"] == 0
        assert "resilience.retries" in arm["resilience"]


class TestChaosSeeding:
    def test_arms_share_the_cluster_seed(self):
        config = dataclasses.replace(ChaosSoakConfig().quick(), seed=29)
        experiment = ChaosSoakExperiment(config)
        db_a, _ = experiment._fresh_database(config.naive_policy())
        db_b, _ = experiment._fresh_database(config.resilient_policy())
        assert db_a.cluster.config.seed == db_b.cluster.config.seed == 29
