"""Tests for the bench-regression harness (summary schema + baseline diff)."""

from __future__ import annotations

import json

import pytest

from repro.bench.regression import (
    SCHEMA,
    classify_metric,
    compare_summaries,
    flatten_numeric,
    main,
    make_summary,
    summary_from_results_dir,
    write_summary,
)


def summary(benches):
    payload = make_summary(benches)
    payload["timestamp"] = 0.0  # the diff must never read the clock
    return payload


class TestClassifyMetric:
    def test_latency_metrics_are_lower_is_better(self):
        for name in ("p99_ms", "p50_ms", "mean_latency_ms", "queue_wait", "backlog_seconds"):
            assert classify_metric(name).direction == "lower"

    def test_throughput_metrics_are_higher_is_better(self):
        for name in ("throughput_per_second", "completed", "availability", "overall_compliance"):
            assert classify_metric(name).direction == "higher"

    def test_operation_counts_are_tight(self):
        rule = classify_metric("mean_operations")
        assert rule.direction == "lower"
        assert rule.tolerance == pytest.approx(0.10)

    def test_unknown_metrics_are_informational(self):
        rule = classify_metric("some_new_experimental_number")
        assert rule.direction == "info"


class TestFlattenNumeric:
    def test_nested_dicts_become_dotted_paths(self):
        flat = flatten_numeric({"a": {"b": 1, "c": 2.5}, "d": 3})
        assert flat == {"a.b": 1.0, "a.c": 2.5, "d": 3.0}

    def test_lists_index_numerically(self):
        flat = flatten_numeric({"series": [{"p99": 5.0}, {"p99": 7.0}]})
        assert flat == {"series.0.p99": 5.0, "series.1.p99": 7.0}

    def test_booleans_and_strings_are_skipped(self):
        flat = flatten_numeric({"ok": True, "label": "fast", "n": 2})
        assert flat == {"n": 2.0}

    def test_bare_number(self):
        assert flatten_numeric(42) == {"value": 42.0}


class TestCompareSummaries:
    def test_identical_summaries_have_no_regressions(self):
        s = summary({"b": {"p99_ms": 10.0, "throughput": 100.0}})
        assert compare_summaries(s, s) == []

    def test_latency_regression_beyond_band_is_flagged(self):
        base = summary({"b": {"p99_ms": 10.0}})
        cur = summary({"b": {"p99_ms": 20.0}})  # +100% > 25% band
        (regression,) = compare_summaries(cur, base)
        assert regression.bench == "b"
        assert regression.metric == "p99_ms"
        assert regression.relative_change == pytest.approx(1.0)
        assert "lower-is-better" in regression.describe()

    def test_latency_within_band_passes(self):
        base = summary({"b": {"p99_ms": 10.0}})
        cur = summary({"b": {"p99_ms": 11.0}})  # +10% < 25% band
        assert compare_summaries(cur, base) == []

    def test_latency_improvement_never_fails(self):
        base = summary({"b": {"p99_ms": 10.0}})
        cur = summary({"b": {"p99_ms": 1.0}})
        assert compare_summaries(cur, base) == []

    def test_throughput_drop_is_flagged(self):
        base = summary({"b": {"throughput_per_second": 100.0}})
        cur = summary({"b": {"throughput_per_second": 50.0}})
        (regression,) = compare_summaries(cur, base)
        assert regression.direction == "higher"

    def test_only_metrics_in_both_are_judged(self):
        base = summary({"b": {"p99_ms": 10.0, "gone_ms": 1.0}, "removed": {"p99_ms": 1.0}})
        cur = summary({"b": {"p99_ms": 10.0, "new_ms": 999.0}, "added": {"p99_ms": 999.0}})
        assert compare_summaries(cur, base) == []

    def test_info_metrics_never_fail(self):
        base = summary({"b": {"telemetry_scrapes": 17.0}})
        cur = summary({"b": {"telemetry_scrapes": 1.0}})
        assert compare_summaries(cur, base) == []

    def test_schema_mismatch_is_rejected(self):
        good = summary({})
        bad = dict(good, schema="bench-summary/v0")
        with pytest.raises(ValueError, match="schema"):
            compare_summaries(bad, good)
        with pytest.raises(ValueError, match="baseline"):
            compare_summaries(good, bad)


class TestSummaryFromResultsDir:
    def test_flattens_each_results_file(self, tmp_path):
        (tmp_path / "bench_a.json").write_text(json.dumps({"p99": 1.5}))
        (tmp_path / "bench_b.json").write_text(json.dumps({"rows": [1, 2]}))
        (tmp_path / "BENCH_summary.json").write_text(json.dumps({"p99": 9.9}))
        (tmp_path / "broken.json").write_text("{not json")
        result = summary_from_results_dir(str(tmp_path))
        assert result["schema"] == SCHEMA
        assert result["benches"] == {
            "bench_a": {"p99": 1.5},
            "bench_b": {"rows.0": 1.0, "rows.1": 2.0},
        }


class TestCli:
    """The CI contract: nonzero exit on a doctored out-of-band summary."""

    def write(self, tmp_path, name, benches):
        path = tmp_path / name
        write_summary(summary(benches), str(path))
        return str(path)

    def test_exits_nonzero_on_doctored_regression(self, tmp_path, capsys):
        baseline = self.write(
            tmp_path,
            "baseline.json",
            {"quick_serving": {"p99_ms": 80.0, "throughput_per_second": 35.0}},
        )
        doctored = self.write(
            tmp_path,
            "current.json",
            {"quick_serving": {"p99_ms": 160.0, "throughput_per_second": 17.0}},
        )
        exit_code = main(["--summary", doctored, "--baseline", baseline])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        assert "p99_ms" in out and "throughput_per_second" in out

    def test_exits_zero_within_tolerance(self, tmp_path, capsys):
        baseline = self.write(
            tmp_path, "baseline.json", {"quick_serving": {"p99_ms": 80.0}}
        )
        current = self.write(
            tmp_path, "current.json", {"quick_serving": {"p99_ms": 85.0}}
        )
        assert main(["--summary", current, "--baseline", baseline]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_emit_from_results_writes_summary(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench_a.json").write_text(json.dumps({"p99": 2.0}))
        out = tmp_path / "BENCH_summary.json"
        assert main(["--emit-from-results", str(results), "--summary", str(out)]) == 0
        written = json.loads(out.read_text())
        assert written["schema"] == SCHEMA
        assert written["benches"]["bench_a"] == {"p99": 2.0}

    def test_committed_baseline_is_valid(self):
        with open("benchmarks/baselines/BENCH_summary.json", encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert baseline["schema"] == SCHEMA
        assert set(baseline["benches"]) == {
            "quick_query",
            "quick_serving",
            "quick_storage",
            "quick_chaos",
        }
        # Self-diff of the committed baseline is trivially clean.
        assert compare_summaries(baseline, baseline) == []

    def test_trace_and_telemetry_artifacts_are_skipped(self, tmp_path):
        (tmp_path / "bench_a.json").write_text(json.dumps({"p99": 1.5}))
        (tmp_path / "serving_trace.json").write_text(
            json.dumps({"traceEvents": [{"ts": 1, "dur": 2}]})
        )
        (tmp_path / "telemetry_fault.json").write_text(
            json.dumps({"schema": "fleet-telemetry/v1", "scrapes": 33})
        )
        result = summary_from_results_dir(str(tmp_path))
        assert set(result["benches"]) == {"bench_a"}
