"""Tests for the benchmark harnesses (small configurations)."""

import pytest

from repro import ClusterConfig, PiqlDatabase
from repro.analysis import CLASS_QUERIES, ScalingClassAnalysis
from repro.bench import (
    ClientSimulationConfig,
    ExecutorStrategyConfig,
    ExecutorStrategyExperiment,
    IntersectionExperimentConfig,
    ScalingExperiment,
    ScalingExperimentConfig,
    SubscriberIntersectionExperiment,
    format_table,
    linear_fit_r_squared,
    percentile,
    run_workload,
)
from repro.workloads import ScadrWorkload, WorkloadScale


class TestReportingHelpers:
    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.99) == 100.0
        assert percentile(values, 0.5) == 51.0
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile(values, 1.5)

    def test_linear_fit_r_squared(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert linear_fit_r_squared(xs, [2.0, 4.0, 6.0, 8.0]) == pytest.approx(1.0)
        noisy = linear_fit_r_squared(xs, [2.1, 3.8, 6.2, 7.9])
        assert 0.98 < noisy < 1.0
        with pytest.raises(ValueError):
            linear_fit_r_squared([1.0], [2.0])

    def test_format_table(self):
        text = format_table(["name", "value"], [("a", 1.0), ("long-name", 123.456)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4


class TestHarness:
    def test_run_workload_collects_measurements(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=2))
        workload = ScadrWorkload(max_subscriptions=5, subscriptions_per_user=3,
                                 thoughts_per_user=5)
        workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=20))
        measurement = run_workload(
            db,
            workload,
            ClientSimulationConfig(
                client_machines=2, threads_per_client=2, interactions_per_thread=4
            ),
        )
        assert measurement.interactions == 2 * 2 * 4
        assert measurement.throughput > 0
        assert measurement.latency_percentile_ms(0.99) >= measurement.mean_latency_ms() / 2
        assert "thoughtstream" in measurement.query_latencies


class TestScalingExperiment:
    def test_throughput_scales_linearly_and_latency_stays_flat(self):
        experiment = ScalingExperiment(
            lambda: ScadrWorkload(max_subscriptions=5, subscriptions_per_user=3,
                                  thoughts_per_user=5),
            ScalingExperimentConfig(
                node_counts=(4, 8, 16),
                users_per_node=20,
                threads_per_client=2,
                interactions_per_thread=6,
            ),
        )
        result = experiment.run()
        throughputs = [p.throughput for p in result.points]
        assert throughputs[0] < throughputs[1] < throughputs[2]
        assert result.throughput_r_squared > 0.95
        # 99th-percentile latency does not blow up with scale.
        assert result.latency_flatness() < 2.5
        assert len(result.rows()) == 3


class TestExecutorStrategyExperiment:
    def test_parallel_beats_simple_beats_lazy(self):
        experiment = ExecutorStrategyExperiment(
            config=ExecutorStrategyConfig(
                storage_nodes=6,
                client_machines=2,
                threads_per_client=2,
                interactions_per_thread=6,
                users_per_node=20,
                items_total=150,
            )
        )
        measurements = experiment.run()
        by_name = {m.strategy: m.p99_latency_ms for m in measurements}
        assert by_name["parallel"] < by_name["simple"] < by_name["lazy"]


class TestIntersectionExperiment:
    def test_bounded_plan_is_flat_and_unbounded_grows(self):
        experiment = SubscriberIntersectionExperiment(
            IntersectionExperimentConfig(
                storage_nodes=6,
                subscriber_counts=(0, 1000, 4000),
                executions_per_point=40,
                fan_pool=4200,
            )
        )
        result = experiment.run()
        assert len(result.points) == 3
        bounded = [p.bounded_p99_ms for p in result.points]
        unbounded = [p.unbounded_p99_ms for p in result.points]
        # The PIQL plan performs the same bounded work regardless of popularity.
        assert all(p.bounded_operations <= 50 for p in result.points)
        assert max(bounded) < 5 * max(min(bounded), 1e-9)
        # The cost-based plan's work and latency grow with popularity.
        assert result.points[-1].unbounded_operations > 1000
        assert unbounded[-1] > unbounded[0] * 5
        assert unbounded[-1] > bounded[-1]
        # For an unpopular target the unbounded plan is the faster one.
        assert unbounded[0] < bounded[0]


class TestScalingClassAnalysis:
    def test_growth_shapes(self):
        analysis = ScalingClassAnalysis(user_counts=(200, 400, 800))
        result = analysis.run()
        database_growth = result.database_growth_factor()
        assert database_growth == pytest.approx(4.0)
        # Class I constant, Class II bounded, Class III ~linear, Class IV superlinear.
        assert result.growth_factor("class1_constant") == 1.0
        assert result.growth_factor("class2_bounded") == 1.0
        assert 2.0 < result.growth_factor("class3_linear") < 8.0
        assert result.growth_factor("class4_superlinear") > 8.0

    def test_piql_admits_only_class_one_and_two(self):
        result = ScalingClassAnalysis(user_counts=(100,)).run()
        assert result.accepted_by_piql == {
            "class1_find_user": True,
            "class2_thoughtstream": True,
            "class3_users_by_hometown": False,
            "class4_hometown_pairs": False,
        }
        assert set(CLASS_QUERIES) == set(result.accepted_by_piql)
