"""End-to-end integration and property-based tests across module boundaries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, ExecutionStrategy, PiqlDatabase
from repro.errors import NotScaleIndependentError


SCHEMA = """
CREATE TABLE accounts (
    owner   VARCHAR(20),
    number  INT,
    kind    VARCHAR(10),
    balance FLOAT,
    PRIMARY KEY (owner, number),
    CARDINALITY LIMIT 20 (owner)
)
"""


def reference_filter(rows, owner, kind=None, limit=None, descending=True):
    """Straight-Python reference implementation used to check query answers."""
    matching = [r for r in rows if r["owner"] == owner]
    if kind is not None:
        matching = [r for r in matching if r["kind"] == kind]
    matching.sort(key=lambda r: r["number"], reverse=descending)
    return matching[:limit] if limit is not None else matching


class TestAgainstReferenceImplementation:
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["ann", "bob", "cat", "dan"]),
                st.integers(min_value=0, max_value=19),
                st.sampled_from(["savings", "checking"]),
                st.floats(min_value=0, max_value=1000, allow_nan=False),
            ),
            max_size=60,
            unique_by=lambda t: (t[0], t[1]),
        ),
        owner=st.sampled_from(["ann", "bob", "cat", "dan"]),
        limit=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_ordered_limit_queries_match_reference(self, rows, owner, limit):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=1))
        db.execute_ddl(SCHEMA)
        records = [
            {"owner": o, "number": n, "kind": k, "balance": b}
            for o, n, k, b in rows
        ]
        db.bulk_load("accounts", records)
        result = db.execute(
            f"SELECT * FROM accounts WHERE owner = <o> "
            f"ORDER BY number DESC LIMIT {limit}",
            {"o": owner},
        )
        expected = reference_filter(records, owner, limit=limit)
        assert [r["number"] for r in result.rows] == [r["number"] for r in expected]

    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["ann", "bob"]),
                st.integers(min_value=0, max_value=19),
                st.sampled_from(["savings", "checking"]),
            ),
            max_size=40,
            unique_by=lambda t: (t[0], t[1]),
        ),
        owner=st.sampled_from(["ann", "bob"]),
        kind=st.sampled_from(["savings", "checking"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_filtered_queries_match_reference(self, rows, owner, kind):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=2))
        db.execute_ddl(SCHEMA)
        records = [
            {"owner": o, "number": n, "kind": k, "balance": 1.0} for o, n, k in rows
        ]
        db.bulk_load("accounts", records)
        result = db.execute(
            "SELECT * FROM accounts WHERE owner = <o> AND kind = <k>",
            {"o": owner, "k": kind},
        )
        expected = reference_filter(records, owner, kind=kind, descending=False)
        assert sorted(r["number"] for r in result.rows) == sorted(
            r["number"] for r in expected
        )


class TestScaleIndependenceInvariants:
    """The core promise: executed work never exceeds the static bound, at any size."""

    @pytest.mark.parametrize("users", [20, 200])
    def test_operations_independent_of_database_size(self, users, thoughtstream_sql):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=3))
        from repro.workloads.scadr.schema import scadr_ddl

        db.execute_ddl(scadr_ddl(10))
        rng = random.Random(9)
        names = [f"user{i:05d}" for i in range(users)]
        db.bulk_load(
            "users",
            ({"username": n, "password": "x", "hometown": "b", "created": 1}
             for n in names),
        )
        db.bulk_load(
            "subscriptions",
            (
                {"owner": n, "target": rng.choice(names), "approved": True}
                for n in names
                for _ in range(5)
            ),
        )
        db.bulk_load(
            "thoughts",
            (
                {"owner": n, "timestamp": t, "text": "hi"}
                for n in names
                for t in range(30)
            ),
        )
        prepared = db.prepare(thoughtstream_sql)
        operations = [
            prepared.execute(uname=rng.choice(names)).operations for _ in range(20)
        ]
        assert max(operations) <= prepared.operation_bound
        # The bound itself is independent of the number of users.
        assert prepared.operation_bound == 1 + 10

    def test_pagination_is_exhaustive_under_every_strategy(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=4))
        db.execute_ddl(SCHEMA)
        db.bulk_load(
            "accounts",
            (
                {"owner": "ann", "number": n, "kind": "savings", "balance": 1.0}
                for n in range(17)
            ),
        )
        prepared = db.prepare(
            "SELECT * FROM accounts WHERE owner = <o> ORDER BY number ASC PAGINATE 5"
        )
        for strategy in ExecutionStrategy:
            numbers = []
            for page in prepared.pages({"o": "ann"}, strategy=strategy):
                numbers.extend(row["number"] for row in page.rows)
            assert numbers == list(range(17)), strategy

    def test_queries_that_would_not_scale_are_rejected_up_front(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=5))
        db.execute_ddl(SCHEMA)
        with pytest.raises(NotScaleIndependentError):
            db.prepare("SELECT * FROM accounts WHERE kind = 'savings'")
        diagnosis = db.diagnose("SELECT * FROM accounts WHERE kind = 'savings'")
        assert "CARDINALITY LIMIT" in diagnosis.render()
