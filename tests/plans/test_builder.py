"""Unit tests for the analyzer (AST -> QuerySpec / logical plan)."""

import pytest

from repro.errors import PlanningError, UnknownColumnError, UnknownTableError
from repro.plans import logical as L
from repro.plans.builder import LogicalPlanBuilder
from repro.plans.printer import plan_operators, plan_to_string
from repro.schema import Catalog
from repro.sql.parser import parse_select
from repro.workloads.scadr.schema import scadr_ddl
from repro.sql.parser import parse
from repro.sql import ast


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    for statement_text in scadr_ddl(100).split(";"):
        statement = parse(statement_text.strip())
        assert isinstance(statement, ast.CreateTableStatement)
        catalog.add_table(statement.table)
    return catalog


@pytest.fixture
def builder(catalog) -> LogicalPlanBuilder:
    return LogicalPlanBuilder(catalog)


class TestSpecBuilding:
    def test_single_relation_equality(self, builder):
        spec = builder.build_spec(
            parse_select("SELECT * FROM users WHERE username = <u>")
        )
        assert spec.aliases() == ["users"]
        equality = spec.relation("users").equalities[0]
        assert equality.column == L.BoundColumn("users", "users", "username")

    def test_join_predicate_classification(self, builder, thoughtstream_sql):
        spec = builder.build_spec(parse_select(thoughtstream_sql))
        assert len(spec.join_predicates) == 1
        join = spec.join_predicates[0]
        assert {join.left.relation, join.right.relation} == {"s", "t"}
        assert spec.relation("s").equalities[0].column.column == "owner"
        # approved = true is an equality with a literal
        columns = {p.column.column for p in spec.relation("s").equalities}
        assert columns == {"owner", "approved"}

    def test_sort_and_stop(self, builder, thoughtstream_sql):
        spec = builder.build_spec(parse_select(thoughtstream_sql))
        assert spec.sort_keys[0][0].column == "timestamp"
        assert spec.sort_keys[0][1] is False
        assert spec.stop.count == 10 and spec.stop.paginate is False

    def test_case_insensitive_column_resolution(self, builder):
        spec = builder.build_spec(
            parse_select("SELECT * FROM users WHERE USERNAME = <u>")
        )
        assert spec.relation("users").equalities[0].column.column == "username"

    def test_unknown_table(self, builder):
        with pytest.raises(UnknownTableError):
            builder.build_spec(parse_select("SELECT * FROM missing WHERE a = 1"))

    def test_unknown_column(self, builder):
        with pytest.raises(UnknownColumnError):
            builder.build_spec(parse_select("SELECT * FROM users WHERE nope = 1"))

    def test_ambiguous_column(self, builder):
        with pytest.raises(PlanningError):
            builder.build_spec(
                parse_select(
                    "SELECT * FROM subscriptions s JOIN thoughts t "
                    "WHERE owner = 'x' AND t.owner = s.target"
                )
            )

    def test_qualified_by_table_name_despite_alias(self, builder):
        spec = builder.build_spec(
            parse_select("SELECT * FROM users u WHERE users.username = <x>")
        )
        assert spec.relation("u").equalities[0].column.relation == "u"

    def test_duplicate_binding_rejected(self, builder):
        with pytest.raises(PlanningError):
            builder.build_spec(parse_select("SELECT * FROM users, users WHERE username = 'a'"))

    def test_non_equi_join_rejected(self, builder):
        with pytest.raises(PlanningError):
            builder.build_spec(
                parse_select(
                    "SELECT * FROM subscriptions s JOIN thoughts t WHERE t.owner > s.target"
                )
            )

    def test_group_by_requires_aggregate(self, builder):
        with pytest.raises(PlanningError):
            builder.build_spec(
                parse_select("SELECT username FROM users WHERE username = 'a' GROUP BY username")
            )

    def test_aggregate_projection_validation(self, builder):
        with pytest.raises(PlanningError):
            builder.build_spec(
                parse_select(
                    "SELECT hometown, COUNT(*) FROM users WHERE username = 'a' GROUP BY created"
                )
            )

    def test_in_predicate(self, builder):
        spec = builder.build_spec(
            parse_select(
                "SELECT * FROM subscriptions WHERE target = <t> AND owner IN [1: friends(50)]"
            )
        )
        in_predicate = spec.relation("subscriptions").in_predicates[0]
        assert in_predicate.max_cardinality() == 50

    def test_like_becomes_token_match(self, builder):
        spec = builder.build_spec(
            parse_select("SELECT * FROM users WHERE hometown LIKE [1: town] LIMIT 5")
        )
        assert spec.relation("users").token_matches[0].column.column == "hometown"


class TestInitialPlan:
    def test_initial_plan_shape(self, builder, thoughtstream_sql):
        spec = builder.build_spec(parse_select(thoughtstream_sql))
        plan = builder.build_initial_plan(spec)
        operators = plan_operators(plan)
        assert operators[0].startswith("Project")
        assert any(op.startswith("Stop(10)") for op in operators)
        assert any(op.startswith("Sort") for op in operators)
        assert any(op.startswith("Join") for op in operators)
        assert sum(1 for op in operators if op.startswith("Relation")) == 2

    def test_plan_rendering_is_indented(self, builder):
        spec = builder.build_spec(
            parse_select("SELECT * FROM users WHERE username = <u>")
        )
        text = plan_to_string(builder.build_initial_plan(spec))
        assert "Project" in text.splitlines()[0]
        assert text.splitlines()[-1].startswith("    ")
