"""Delta-maintenance correctness: counters, MIN/MAX buffers, top-k eviction."""

from __future__ import annotations

import pytest

from repro import PiqlDatabase
from repro.kvstore.cluster import ClusterConfig
from repro.plans.bounds import write_operation_bound
from repro.views.maintenance import (
    MINMAX_CANDIDATES,
    maintenance_operation_bound,
    recompute_top_k,
    recompute_view,
)

DDL = """
CREATE TABLE sales (
    sale_id INT, shop VARCHAR(16), product VARCHAR(16), amount INT,
    PRIMARY KEY (sale_id)
)
"""

TOP_K_VIEW = """
CREATE MATERIALIZED VIEW product_totals AS
SELECT shop, product, SUM(amount) AS total
FROM sales
GROUP BY shop, product
ORDER BY total DESC LIMIT 2
"""

TOP_K_QUERY = """
SELECT product, SUM(amount) AS total
FROM sales
WHERE shop = <shop>
GROUP BY product
ORDER BY total DESC
LIMIT 2
"""

COUNT_VIEW = """
CREATE MATERIALIZED VIEW product_counts AS
SELECT product, COUNT(*) AS n, MIN(amount) AS smallest, MAX(amount) AS largest
FROM sales
GROUP BY product
"""

COUNT_QUERY = """
SELECT product, COUNT(*) AS n, MIN(amount) AS smallest, MAX(amount) AS largest
FROM sales
WHERE product = <product>
GROUP BY product
"""


@pytest.fixture
def db() -> PiqlDatabase:
    database = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=11))
    database.execute_ddl(DDL)
    return database


def sale(db, sale_id, shop, product, amount):
    db.insert("sales", {
        "sale_id": sale_id, "shop": shop, "product": product, "amount": amount,
    })


class TestCounters:
    def test_count_decrements_to_zero_delete_the_group(self, db):
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(COUNT_QUERY)
        sale(db, 1, "sf", "apple", 5)
        sale(db, 2, "sf", "apple", 3)
        assert query.execute(product="apple").rows == [
            {"product": "apple", "n": 2, "smallest": 3, "largest": 5}
        ]
        db.delete("sales", [2])
        assert query.execute(product="apple").rows == [
            {"product": "apple", "n": 1, "smallest": 5, "largest": 5}
        ]
        # Counter decrement to zero: the group's backing record disappears
        # and the query returns no row, exactly like recomputing offline.
        db.delete("sales", [1])
        assert query.execute(product="apple").rows == []
        view = db.catalog.view("product_counts")
        assert recompute_view(view, db.catalog, db.cluster) == {}

    def test_update_moves_row_between_groups(self, db):
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(COUNT_QUERY)
        sale(db, 1, "sf", "apple", 5)
        db.update("sales", {
            "sale_id": 1, "shop": "sf", "product": "pear", "amount": 5,
        })
        assert query.execute(product="apple").rows == []
        assert query.execute(product="pear").rows == [
            {"product": "pear", "n": 1, "smallest": 5, "largest": 5}
        ]

    def test_noop_update_skips_view_and_index_writes(self, db):
        db.create_materialized_view(COUNT_VIEW)
        sale(db, 1, "sf", "apple", 5)
        before = db.client.stats.operations
        # shop is neither grouped nor aggregated by the view and not indexed:
        # the update must cost exactly the base record's get + put.
        db.update("sales", {
            "sale_id": 1, "shop": "oakland", "product": "apple", "amount": 5,
        })
        assert db.client.stats.operations - before == 2

    def test_upsert_overwrite_retracts_old_contribution(self, db):
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(COUNT_QUERY)
        db.insert("sales", {
            "sale_id": 1, "shop": "sf", "product": "apple", "amount": 5,
        }, upsert=True)
        db.insert("sales", {
            "sale_id": 1, "shop": "sf", "product": "apple", "amount": 9,
        }, upsert=True)
        assert query.execute(product="apple").rows == [
            {"product": "apple", "n": 1, "smallest": 9, "largest": 9}
        ]


class TestMinMaxBuffers:
    def test_minmax_tracks_deletes_within_buffer(self, db):
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(COUNT_QUERY)
        for index, amount in enumerate([4, 9, 1, 7]):
            sale(db, index, "sf", "apple", amount)
        db.delete("sales", [2])  # removes the current minimum (1)
        assert query.execute(product="apple").rows == [
            {"product": "apple", "n": 3, "smallest": 4, "largest": 9}
        ]

    def test_minmax_buffer_underflow_reports_none(self, db):
        """Documented bounded-state limitation: an emptied candidate buffer
        cannot recover evicted values until a new delta refills it."""
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(COUNT_QUERY)
        amounts = list(range(MINMAX_CANDIDATES + 3))
        for index, amount in enumerate(amounts):
            sale(db, index, "sf", "apple", amount)
        # Delete every value the MIN buffer could be holding.
        for index in range(MINMAX_CANDIDATES + 1):
            db.delete("sales", [index])
        rows = query.execute(product="apple").rows
        assert rows[0]["n"] == 2
        assert rows[0]["smallest"] is None  # underflow, honestly reported
        assert rows[0]["largest"] == amounts[-1]


class TestTopK:
    def test_eviction_then_reentry_after_delete(self, db):
        db.create_materialized_view(TOP_K_VIEW)
        query = db.prepare(TOP_K_QUERY)
        sale(db, 1, "sf", "apple", 10)
        sale(db, 2, "sf", "pear", 8)
        # cherry is evicted at the boundary check: the top-2 index is full
        # with larger totals.
        sale(db, 3, "sf", "cherry", 5)
        assert [r["product"] for r in query.execute(shop="sf").rows] == [
            "apple", "pear",
        ]
        # Deleting pear's sale shrinks the partition below capacity...
        db.delete("sales", [2])
        # ...and cherry re-enters on its next delta (lazy re-entry: bounded
        # state cannot resurrect evicted entries spontaneously).
        sale(db, 4, "sf", "cherry", 1)
        rows = query.execute(shop="sf").rows
        assert [r["product"] for r in rows] == ["apple", "cherry"]
        assert rows[1]["total"] == 6

    def test_monotone_growth_matches_offline_recompute_exactly(self, db):
        db.create_materialized_view(TOP_K_VIEW)
        query = db.prepare(TOP_K_QUERY)
        import random
        rng = random.Random(3)
        products = ["apple", "pear", "cherry", "fig", "plum"]
        for sale_id in range(120):
            sale(db, sale_id, rng.choice(["sf", "la"]),
                 rng.choice(products), rng.randrange(1, 6))
        view = db.catalog.view("product_totals")
        recomputed = recompute_view(view, db.catalog, db.cluster)
        for shop in ("sf", "la"):
            expected = [
                {"product": row["product"], "total": row["total"]}
                for row in recompute_top_k(view, recomputed, (shop,))
            ]
            assert query.execute(shop=shop).rows == expected

    def test_ties_break_identically_to_recompute(self, db):
        db.create_materialized_view(TOP_K_VIEW)
        query = db.prepare(TOP_K_QUERY)
        for sale_id, product in enumerate(["apple", "pear", "cherry"]):
            sale(db, sale_id, "sf", product, 7)  # three-way tie, capacity 2
        view = db.catalog.view("product_totals")
        recomputed = recompute_view(view, db.catalog, db.cluster)
        expected = [
            {"product": row["product"], "total": row["total"]}
            for row in recompute_top_k(view, recomputed, ("sf",))
        ]
        assert query.execute(shop="sf").rows == expected


class TestBackfillAndBounds:
    def test_backfill_over_existing_data_matches_incremental(self, db):
        for sale_id in range(30):
            sale(db, sale_id, "sf", f"p{sale_id % 4}", 1 + sale_id % 3)
        db.create_materialized_view(TOP_K_VIEW)  # backfilled, not empty
        query = db.prepare(TOP_K_QUERY)
        view = db.catalog.view("product_totals")
        recomputed = recompute_view(view, db.catalog, db.cluster)
        expected = [
            {"product": row["product"], "total": row["total"]}
            for row in recompute_top_k(view, recomputed, ("sf",))
        ]
        assert query.execute(shop="sf").rows == expected

    def test_static_write_bound_covers_measured_cost(self, db):
        db.create_materialized_view(TOP_K_VIEW)
        bound = write_operation_bound(db.catalog, "sales")
        view = db.catalog.view("product_totals")
        assert maintenance_operation_bound(view) <= bound
        worst = 0
        for sale_id in range(40):
            before = db.client.stats.operations
            sale(db, sale_id, "sf", f"p{sale_id % 6}", 1 + sale_id % 5)
            worst = max(worst, db.client.stats.operations - before)
        assert worst <= bound

    def test_static_write_bound_covers_cross_group_updates(self, db):
        """The worst case: an update that moves a row between groups pays
        two full contribution deltas (both group RMWs and both top-k index
        updates) — the static bound must still cover it."""
        db.create_materialized_view(TOP_K_VIEW)
        bound = write_operation_bound(db.catalog, "sales")
        for sale_id, product in enumerate(["a", "b", "c", "d"]):
            sale(db, sale_id, "sf", product, 5 - sale_id)
        worst = 0
        import random
        rng = random.Random(6)
        for step in range(30):
            sale_id = rng.randrange(4)
            before = db.client.stats.operations
            db.update("sales", {
                "sale_id": sale_id, "shop": "sf",
                "product": rng.choice(["a", "b", "c", "d", "e"]),
                "amount": rng.randrange(1, 9),
            })
            worst = max(worst, db.client.stats.operations - before)
        assert worst <= bound

    def test_mixed_delta_on_missing_group_record_applies_add_only(self, db):
        """An on_update whose group record is absent (lost, or never
        materialized) must not drive counters negative or crash — the
        retraction is dropped and the addition materializes the group."""
        db.create_materialized_view(TOP_K_VIEW)
        query = db.prepare(TOP_K_QUERY)
        db.views.on_update(
            "sales",
            {"sale_id": 9, "shop": "sf", "product": "ghost", "amount": 4},
            {"sale_id": 9, "shop": "sf", "product": "ghost", "amount": 7},
        )
        assert query.execute(shop="sf").rows == [
            {"product": "ghost", "total": 7}
        ]

    def test_direct_dml_against_backing_table_is_rejected(self, db):
        from repro.errors import SchemaError
        db.create_materialized_view(COUNT_VIEW)
        sale(db, 1, "sf", "apple", 5)
        with pytest.raises(SchemaError, match="cannot be written directly"):
            db.insert("product_counts", {"product": "x", "n": 9,
                                         "smallest": 1, "largest": 1})
        with pytest.raises(SchemaError, match="cannot be written directly"):
            db.update("product_counts", {"product": "apple", "n": 0,
                                         "smallest": None, "largest": None})
        with pytest.raises(SchemaError, match="cannot be written directly"):
            db.delete("product_counts", ["apple"])
        with pytest.raises(SchemaError, match="cannot be written directly"):
            db.bulk_load("product_counts", [{"product": "y", "n": 1,
                                             "smallest": 1, "largest": 1}])
        # Maintenance itself still writes the backing table fine.
        sale(db, 2, "sf", "apple", 7)
        rows = db.prepare(COUNT_QUERY).execute(product="apple").rows
        assert rows[0]["n"] == 2

    def test_bulk_load_maintains_views_latency_free(self, db):
        db.create_materialized_view(TOP_K_VIEW)
        clock_before = db.client.clock.now
        db.bulk_load("sales", [
            {"sale_id": i, "shop": "sf", "product": f"p{i % 3}", "amount": 2}
            for i in range(50)
        ])
        assert db.client.clock.now == clock_before  # no simulated latency
        query = db.prepare(TOP_K_QUERY)
        view = db.catalog.view("product_totals")
        recomputed = recompute_view(view, db.catalog, db.cluster)
        expected = [
            {"product": row["product"], "total": row["total"]}
            for row in recompute_top_k(view, recomputed, ("sf",))
        ]
        assert query.execute(shop="sf").rows == expected
