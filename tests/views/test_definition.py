"""CREATE MATERIALIZED VIEW parsing and analysis."""

from __future__ import annotations

import pytest

from repro import PiqlDatabase
from repro.errors import ParseError, SchemaError
from repro.kvstore.cluster import ClusterConfig
from repro.sql import ast
from repro.sql.parser import parse
from repro.views.definition import analyze_view

DDL = """
CREATE TABLE item (
    I_ID INT, I_SUBJECT VARCHAR(20), I_COST FLOAT,
    PRIMARY KEY (I_ID)
);
CREATE TABLE order_line (
    OL_O_ID INT, OL_ID INT, OL_I_ID INT, OL_QTY INT,
    PRIMARY KEY (OL_O_ID, OL_ID),
    FOREIGN KEY (OL_I_ID) REFERENCES item (I_ID),
    CARDINALITY LIMIT 100 (OL_O_ID)
)
"""

BEST_SELLERS_VIEW = """
CREATE MATERIALIZED VIEW best_sellers AS
SELECT i.I_SUBJECT, ol.OL_I_ID, SUM(ol.OL_QTY) AS total_sold
FROM order_line ol JOIN item i
WHERE i.I_ID = ol.OL_I_ID
GROUP BY i.I_SUBJECT, ol.OL_I_ID
ORDER BY total_sold DESC LIMIT 10
"""


@pytest.fixture
def db() -> PiqlDatabase:
    database = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=5))
    database.execute_ddl(DDL)
    return database


class TestParsing:
    def test_parse_create_materialized_view(self):
        statement = parse(BEST_SELLERS_VIEW)
        assert isinstance(statement, ast.CreateMaterializedViewStatement)
        assert statement.name == "best_sellers"
        assert statement.select.group_by
        assert statement.select.limit.count == 10

    def test_view_definitions_must_be_parameter_free(self):
        with pytest.raises(ParseError, match="parameter-free"):
            parse(
                "CREATE MATERIALIZED VIEW v AS "
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "WHERE owner = <uname> GROUP BY owner"
            )

    def test_body_must_be_select(self):
        with pytest.raises(ParseError):
            parse("CREATE MATERIALIZED VIEW v AS DELETE FROM x WHERE a = 1")


class TestAnalysis:
    def test_backing_table_and_order_index(self, db):
        view = analyze_view(parse(BEST_SELLERS_VIEW), db.catalog)
        assert view.driving_table == "order_line"
        assert [d.table for d in view.dimensions] == ["item"]
        table = view.backing_table
        assert table.primary_key == ("I_SUBJECT", "OL_I_ID")
        assert table.column_names() == ["I_SUBJECT", "OL_I_ID", "total_sold"]
        assert table.backing_view == "best_sellers"
        assert view.order is not None
        assert (view.order.aggregate, view.order.ascending, view.order.limit) \
            == ("total_sold", False, 10)
        assert view.partition_column_names == ("I_SUBJECT",)
        assert view.entity_column_names == ("OL_I_ID",)
        assert [c.name for c in view.order_index.columns] == [
            "I_SUBJECT", "total_sold", "OL_I_ID",
        ]

    def test_counter_view_has_no_order_index(self, db):
        view = analyze_view(
            parse(
                "CREATE MATERIALIZED VIEW line_counts AS "
                "SELECT OL_I_ID, COUNT(*) AS n FROM order_line GROUP BY OL_I_ID"
            ),
            db.catalog,
        )
        assert view.order is None
        assert view.order_index is None
        assert view.dimensions == []

    def test_requires_group_by(self, db):
        with pytest.raises(SchemaError, match="GROUP BY"):
            analyze_view(
                parse(
                    "CREATE MATERIALIZED VIEW v AS "
                    "SELECT COUNT(*) AS n FROM order_line"
                ),
                db.catalog,
            )

    def test_requires_aggregates(self, db):
        with pytest.raises(Exception):
            analyze_view(
                parse(
                    "CREATE MATERIALIZED VIEW v AS "
                    "SELECT OL_I_ID FROM order_line GROUP BY OL_I_ID"
                ),
                db.catalog,
            )

    def test_limit_requires_aggregate_order(self, db):
        with pytest.raises(SchemaError, match="ORDER BY"):
            analyze_view(
                parse(
                    "CREATE MATERIALIZED VIEW v AS "
                    "SELECT OL_I_ID, COUNT(*) AS n FROM order_line "
                    "GROUP BY OL_I_ID LIMIT 5"
                ),
                db.catalog,
            )

    def test_dimension_must_be_joined_on_primary_key(self, db):
        # Joining item on a non-key column leaves no valid driving relation.
        with pytest.raises(SchemaError, match="drive maintenance"):
            analyze_view(
                parse(
                    "CREATE MATERIALIZED VIEW v AS "
                    "SELECT i.I_SUBJECT, COUNT(*) AS n "
                    "FROM order_line ol JOIN item i "
                    "WHERE i.I_COST = ol.OL_QTY "
                    "GROUP BY i.I_SUBJECT"
                ),
                db.catalog,
            )

    def test_name_clash_rejected(self, db):
        db.create_materialized_view(BEST_SELLERS_VIEW)
        with pytest.raises(SchemaError, match="already in use"):
            db.create_materialized_view(BEST_SELLERS_VIEW)

    def test_ddl_roundtrip_through_execute_ddl(self, db):
        created = db.execute_ddl(BEST_SELLERS_VIEW)
        assert created == ["best_sellers"]
        assert db.catalog.has_view("best_sellers")
        assert db.catalog.has_table("best_sellers")
        # The catalog version bump invalidates prepared-query caches.
        assert db.materialized_views()[0].name == "best_sellers"
