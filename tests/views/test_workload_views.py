"""Workload integration: restored best-sellers page and SCADr profile counts."""

from __future__ import annotations

import random

import pytest

from repro import PiqlDatabase
from repro.errors import NotScaleIndependentError
from repro.kvstore.cluster import ClusterConfig
from repro.prediction.model import OperatorModelKey, OperatorModelStore, QueryLatencyModel
from repro.serving.simulator import ServingConfig, ServingSimulation
from repro.views.maintenance import recompute_top_k, recompute_view
from repro.workloads.base import WorkloadScale
from repro.workloads.scadr.workload import ScadrWorkload
from repro.workloads.tpcw.queries import QUERY_MODIFICATIONS
from repro.workloads.tpcw.schema import SUBJECTS
from repro.workloads.tpcw.workload import TpcwWorkload


@pytest.fixture(scope="module")
def tpcw_with_views():
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=77))
    workload = TpcwWorkload(materialized_views=True)
    workload.setup(
        db, WorkloadScale(storage_nodes=2, users_per_node=20, items_total=160)
    )
    return db, workload


class TestTpcwBestSellers:
    def test_best_sellers_listed_as_precomputed(self):
        assert "materialized view" in QUERY_MODIFICATIONS["best_sellers_wi"]

    def test_query_compiles_to_bounded_view_scan(self, tpcw_with_views):
        db, workload = tpcw_with_views
        prepared = db.prepare(workload.query_sql("best_sellers_wi"))
        assert prepared.optimized.view_used == "best_sellers_by_subject"
        assert prepared.operation_bound == 51  # 1 range + 50 dereferences
        # No additional (auto-created) indexes beyond the view's own.
        assert prepared.optimized.required_indexes == []

    def test_rejected_without_views(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=78))
        workload = TpcwWorkload()  # views off: the paper's original workload
        workload.setup(
            db, WorkloadScale(storage_nodes=2, users_per_node=5, items_total=40)
        )
        assert "best_sellers_wi" not in workload.query_names()
        with pytest.raises(NotScaleIndependentError):
            db.prepare(TpcwWorkload(materialized_views=True)
                       .query_sql("best_sellers_wi"))

    def test_results_match_offline_recompute_after_traffic(self, tpcw_with_views):
        db, workload = tpcw_with_views
        rng = random.Random(5)
        for _ in range(120):
            workload.run_plan(db, workload.interaction_plan(db, rng))
        view = db.catalog.view("best_sellers_by_subject")
        recomputed = recompute_view(view, db.catalog, db.cluster)
        prepared = db.prepare(workload.query_sql("best_sellers_wi"))
        for subject in SUBJECTS[:4]:
            expected = [
                {"OL_I_ID": row["OL_I_ID"], "total_sold": row["total_sold"]}
                for row in recompute_top_k(view, recomputed, (subject,))
            ]
            assert prepared.execute(subject=subject).rows == expected

    def test_noop_order_line_update_costs_base_ops_only(self, tpcw_with_views):
        db, _ = tpcw_with_views
        db.insert("order_line", {
            "OL_O_ID": 77_000_001, "OL_ID": 1, "OL_I_ID": 1, "OL_QTY": 2,
            "OL_DISCOUNT": 0.0, "OL_COMMENT": "",
        })
        before = db.client.stats.operations
        # Only the comment changes: neither grouped, aggregated, predicate,
        # nor dimension-key columns — the view pays nothing, not even the
        # item dimension lookup, so the update is the base get + put.
        db.update("order_line", {
            "OL_O_ID": 77_000_001, "OL_ID": 1, "OL_I_ID": 1, "OL_QTY": 2,
            "OL_DISCOUNT": 0.0, "OL_COMMENT": "gift wrap",
        })
        assert db.client.stats.operations - before == 2

    def test_interaction_plan_served_through_serving_tier(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=4, seed=79))
        # Boost the best-sellers weight so a short run serves several pages.
        workload = TpcwWorkload(materialized_views=True)
        workload.mix["best_sellers"] = 0.5
        workload.setup(
            db, WorkloadScale(storage_nodes=2, users_per_node=10, items_total=80)
        )
        report = ServingSimulation(
            db,
            workload,
            ServingConfig(mode="closed", clients=8, think_time_seconds=0.2,
                          duration_seconds=3.0, seed=4),
        ).run()
        names = {record.name for record in report.log.records}
        assert "best_sellers" in names
        bound = db.prepare(
            workload.query_sql("best_sellers_wi")
        ).operation_bound
        for record in report.log.records:
            if record.name != "best_sellers":
                continue
            by_label = dict(record.query_operations)
            assert by_label["best_sellers_wi"] <= bound


class TestScadrCounts:
    def test_home_page_includes_profile_counts(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=80))
        workload = ScadrWorkload(materialized_views=True)
        workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=15))
        rng = random.Random(9)
        result = workload.run_plan(db, workload.interaction_plan(db, rng))
        assert {"thought_count", "follower_count"} <= set(
            result.query_latencies
        )
        # Each count is one bounded point read of its view.
        assert result.query_operations["thought_count"] == 1
        assert result.query_operations["follower_count"] == 1

    def test_both_count_queries_actually_use_their_views(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=83))
        workload = ScadrWorkload(materialized_views=True)
        workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=10))
        thought = db.prepare(workload.query_sql("thought_count"))
        follower = db.prepare(workload.query_sql("follower_count"))
        assert thought.optimized.view_used == "user_thought_counts"
        # The follower count groups by target — the direction the schema's
        # CARDINALITY LIMIT does not bound — so only the view can serve it.
        assert follower.optimized.view_used == "user_follower_counts"
        uname = workload.usernames[0]
        followers = follower.execute(uname=uname).rows
        if followers:
            assert followers[0]["follower_count"] > 0

    def test_counts_track_posts(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=81))
        workload = ScadrWorkload(materialized_views=True, post_probability=1.0)
        workload.setup(db, WorkloadScale(storage_nodes=2, users_per_node=10))
        query = db.prepare(workload.query_sql("thought_count"))
        uname = workload.usernames[0]
        before = query.execute(uname=uname).rows[0]["thought_count"]
        db.insert("thoughts", {
            "owner": uname, "timestamp": 9_999_999_999, "text": "new",
        })
        after = query.execute(uname=uname).rows[0]["thought_count"]
        assert after == before + 1


class TestWritePrediction:
    def test_write_requirements_cover_view_maintenance(self, tpcw_with_views):
        db, _ = tpcw_with_views
        store = OperatorModelStore()
        # Seed minimal per-operator samples so predictions can convolve.
        store.record(OperatorModelKey("lookup", 4, 0, 256), 0, 0.002)
        store.record(OperatorModelKey("index_scan", 100, 0, 256), 0, 0.003)
        model = QueryLatencyModel(store, db.catalog)
        requirements = model.write_requirements("order_line")
        descriptions = " ".join(r.description for r in requirements)
        assert "ViewGroupUpdate(best_sellers_by_subject)" in descriptions
        assert "ViewIndexBoundary(best_sellers_by_subject)" in descriptions
        assert "ViewDimensionFetch(best_sellers_by_subject, item)" in descriptions
        # The requirements compose into a finite latency prediction.
        predicted = model.predict_from_requirements(requirements, 0.99)
        assert predicted.max_seconds > 0

    def test_write_requirements_without_views_are_smaller(self):
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=82))
        workload = TpcwWorkload()
        workload.setup(
            db, WorkloadScale(storage_nodes=2, users_per_node=5, items_total=40)
        )
        store = OperatorModelStore()
        store.record(OperatorModelKey("lookup", 1, 0, 64), 0, 0.001)
        store.record(OperatorModelKey("index_scan", 10, 0, 64), 0, 0.001)
        model = QueryLatencyModel(store, db.catalog)
        base = model.write_requirements("order_line")
        assert all("View" not in r.description for r in base)
