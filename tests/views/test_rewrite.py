"""Optimizer view-rewrite phase: matching rules and bounded plans."""

from __future__ import annotations

import pytest

from repro import PiqlDatabase
from repro.errors import NotScaleIndependentError
from repro.kvstore.cluster import ClusterConfig
from repro.plans import physical as P

DDL = """
CREATE TABLE thoughts (
    owner VARCHAR(32), timestamp INT, text VARCHAR(140), approved BOOLEAN,
    PRIMARY KEY (owner, timestamp)
)
"""

COUNT_VIEW = """
CREATE MATERIALIZED VIEW approved_counts AS
SELECT owner, COUNT(*) AS n
FROM thoughts
WHERE approved = true
GROUP BY owner
"""

TOP_VIEW = """
CREATE MATERIALIZED VIEW prolific AS
SELECT approved, owner, COUNT(*) AS n
FROM thoughts
GROUP BY approved, owner
ORDER BY n DESC LIMIT 5
"""


@pytest.fixture
def db() -> PiqlDatabase:
    database = PiqlDatabase.simulated(ClusterConfig(storage_nodes=3, seed=21))
    database.execute_ddl(DDL)
    return database


class TestPointRewrite:
    def test_rejected_query_served_after_view_creation(self, db):
        sql = ("SELECT owner, COUNT(*) AS n FROM thoughts "
               "WHERE owner = <uname> AND approved = true GROUP BY owner")
        with pytest.raises(NotScaleIndependentError):
            db.prepare(sql)
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(sql)
        assert query.optimized.view_used == "approved_counts"
        assert query.operation_bound == 1  # one bounded point lookup
        assert isinstance(
            query.physical_plan.children()[0], P.PhysicalIndexLookup
        )

    def test_predicates_must_match_exactly(self, db):
        db.create_materialized_view(COUNT_VIEW)
        # Missing the approved=true filter: must NOT silently use the view.
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "WHERE owner = <uname> GROUP BY owner"
            )
        # Extra filters the view did not apply: likewise rejected.
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "WHERE owner = <uname> AND approved = true "
                "AND timestamp > 5 GROUP BY owner"
            )

    def test_group_column_filter_in_view_restricts_bindings(self, db):
        """A view that filters one of its own group columns only answers
        queries binding that column to the same literal."""
        db.execute_ddl(
            "CREATE TABLE sales (sale_id INT, shop VARCHAR(8), "
            "amount INT, PRIMARY KEY (sale_id))"
        )
        db.create_materialized_view(
            "CREATE MATERIALIZED VIEW sf_sales AS "
            "SELECT shop, COUNT(*) AS n FROM sales "
            "WHERE shop = 'sf' GROUP BY shop"
        )
        db.insert("sales", {"sale_id": 1, "shop": "sf", "amount": 1})
        db.insert("sales", {"sale_id": 2, "shop": "la", "amount": 1})
        db.insert("sales", {"sale_id": 3, "shop": "la", "amount": 1})
        matching = db.prepare(
            "SELECT shop, COUNT(*) AS n FROM sales "
            "WHERE shop = 'sf' GROUP BY shop"
        )
        assert matching.optimized.view_used == "sf_sales"
        assert matching.execute().rows == [{"shop": "sf", "n": 1}]
        # A different literal — and a runtime-bound parameter, whose value
        # cannot be proven to equal the filter — must NOT use the view.
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT shop, COUNT(*) AS n FROM sales "
                "WHERE shop = 'la' GROUP BY shop"
            )
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT shop, COUNT(*) AS n FROM sales "
                "WHERE shop = <shop> GROUP BY shop"
            )

    def test_aggregate_alias_must_match(self, db):
        db.create_materialized_view(COUNT_VIEW)
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT owner, COUNT(*) AS other_name FROM thoughts "
                "WHERE owner = <uname> AND approved = true GROUP BY owner"
            )


class TestTopKRewrite:
    def test_ranking_query_becomes_bounded_index_scan(self, db):
        db.create_materialized_view(TOP_VIEW)
        query = db.prepare(
            "SELECT owner, COUNT(*) AS n FROM thoughts "
            "WHERE approved = true GROUP BY owner "
            "ORDER BY n DESC LIMIT 5"
        )
        assert query.optimized.view_used == "prolific"
        scans = P.find_scans(query.physical_plan)
        assert len(scans) == 1
        assert scans[0].table == "prolific"
        assert not scans[0].ascending
        assert query.operation_bound == 6  # 1 range + 5 dereferences

    def test_smaller_limit_allowed_larger_rejected(self, db):
        db.create_materialized_view(TOP_VIEW)
        smaller = db.prepare(
            "SELECT owner, COUNT(*) AS n FROM thoughts "
            "WHERE approved = true GROUP BY owner ORDER BY n DESC LIMIT 3"
        )
        assert smaller.operation_bound == 4
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "WHERE approved = true GROUP BY owner ORDER BY n DESC LIMIT 50"
            )

    def test_sort_direction_must_match(self, db):
        db.create_materialized_view(TOP_VIEW)
        with pytest.raises(NotScaleIndependentError):
            db.prepare(
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "WHERE approved = true GROUP BY owner ORDER BY n ASC LIMIT 5"
            )

    def test_results_respect_view_content(self, db):
        db.create_materialized_view(TOP_VIEW)
        for owner, count in (("amy", 3), ("bob", 1), ("cas", 2)):
            for index in range(count):
                db.insert("thoughts", {
                    "owner": owner, "timestamp": index, "text": "t",
                    "approved": True,
                })
        rows = db.execute(
            "SELECT owner, COUNT(*) AS n FROM thoughts "
            "WHERE approved = true GROUP BY owner ORDER BY n DESC LIMIT 5"
        ).rows
        assert rows == [
            {"owner": "amy", "n": 3},
            {"owner": "cas", "n": 2},
            {"owner": "bob", "n": 1},
        ]


class TestNonInterference:
    def test_plannable_queries_keep_their_base_table_plans(self, db):
        """A query the normal pipeline can bound never switches to a view."""
        db.create_materialized_view(COUNT_VIEW)
        query = db.prepare(
            "SELECT * FROM thoughts WHERE owner = <uname> "
            "ORDER BY timestamp DESC LIMIT 10"
        )
        assert query.optimized.view_used is None
        scans = P.find_scans(query.physical_plan)
        assert scans and scans[0].table == "thoughts"

    def test_error_without_any_matching_view_suggests_precomputation(self, db):
        with pytest.raises(NotScaleIndependentError, match="precompute"):
            db.prepare(
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "GROUP BY owner ORDER BY n DESC LIMIT 5"
            )

    def test_cost_based_baseline_rejects_aggregate_ordering(self, db):
        """The Section 8.3 baseline must not silently drop the ranking."""
        from repro.errors import PlanningError
        from repro.optimizer.cost_based import CostBasedOptimizer

        baseline = CostBasedOptimizer(db.catalog, statistics={})
        with pytest.raises(PlanningError, match="aggregate"):
            baseline.optimize(
                "SELECT owner, COUNT(*) AS n FROM thoughts "
                "WHERE owner = 'a' GROUP BY owner ORDER BY n DESC LIMIT 5"
            )

    def test_prepared_cache_invalidated_by_view_creation(self, db):
        sql = ("SELECT owner, COUNT(*) AS n FROM thoughts "
               "WHERE owner = <uname> AND approved = true GROUP BY owner")
        with pytest.raises(NotScaleIndependentError):
            db.prepare(sql)
        db.create_materialized_view(COUNT_VIEW)
        assert db.prepare(sql).optimized.view_used == "approved_counts"
