"""View maintenance under replica failures: hints buffer view writes too.

Maintenance goes through the same quorum write path as base-table writes,
so a crashed replica receives hinted handoff for the view's backing records
and ordered-index entries, and replays them at recovery.
"""

from __future__ import annotations

import pytest

from repro import PiqlDatabase
from repro.kvstore.cluster import ClusterConfig

DDL = """
CREATE TABLE sales (
    sale_id INT, shop VARCHAR(16), product VARCHAR(16), amount INT,
    PRIMARY KEY (sale_id)
)
"""

VIEW = """
CREATE MATERIALIZED VIEW product_totals AS
SELECT shop, product, SUM(amount) AS total
FROM sales
GROUP BY shop, product
ORDER BY total DESC LIMIT 3
"""

QUERY = """
SELECT product, SUM(amount) AS total
FROM sales
WHERE shop = <shop>
GROUP BY product
ORDER BY total DESC
LIMIT 3
"""


@pytest.fixture
def db() -> PiqlDatabase:
    database = PiqlDatabase.simulated(
        ClusterConfig(
            storage_nodes=4,
            replication=3,
            read_quorum=2,
            write_quorum=2,
            seed=31,
        )
    )
    database.execute_ddl(DDL)
    database.create_materialized_view(VIEW)
    return database


def test_maintenance_survives_crashed_replica_via_hinted_handoff(db):
    query = db.prepare(QUERY)
    victim = 0
    db.cluster.crash_node(victim)

    # Maintenance writes land on the surviving quorum and buffer hints for
    # the crashed replica.
    for sale_id, (product, amount) in enumerate(
        [("apple", 5), ("pear", 4), ("cherry", 3), ("apple", 2), ("fig", 1)]
    ):
        db.insert("sales", {
            "sale_id": sale_id, "shop": "sf",
            "product": product, "amount": amount,
        })
    assert db.cluster.replication.hint_count(victim) > 0

    expected = [
        {"product": "apple", "total": 7},
        {"product": "pear", "total": 4},
        {"product": "cherry", "total": 3},
    ]
    # Quorum reads answer correctly while the replica is down...
    assert query.execute(shop="sf").rows == expected

    # ...and recovery replays the buffered view writes onto the replica.
    db.cluster.recover_node(victim)
    assert db.cluster.replication.hint_count(victim) == 0

    # Force reads to depend on the recovered copy: crash a different node,
    # so any read quorum of the remaining replicas may include the victim.
    db.cluster.crash_node(1)
    assert query.execute(shop="sf").rows == expected
    db.cluster.recover_node(1)

    # Deletes (retractions) follow the same hinted path.
    db.cluster.crash_node(victim)
    db.delete("sales", [0])
    db.delete("sales", [3])  # apple's total drops to zero: group removed
    db.cluster.recover_node(victim)
    db.cluster.crash_node(2)
    rows = query.execute(shop="sf").rows
    assert rows == [
        {"product": "pear", "total": 4},
        {"product": "cherry", "total": 3},
    ]
