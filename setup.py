"""Setuptools entry point.

The pyproject.toml [project] table is the canonical metadata; this setup.py
mirrors it so that editable installs work in offline environments where the
``wheel`` package (required by the PEP 517 editable path) is unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'PIQL: Success-Tolerant Query Processing in the "
        "Cloud' (VLDB 2011)"
    ),
    author="PIQL reproduction authors",
    license="Apache-2.0",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
