"""Figures 8 & 9 — TPC-W throughput and 99th-percentile latency vs cluster size.

Reproduces the scale-up experiment of Section 8.4.1: the number of storage
nodes grows from 20 to 100 (with one client machine per two storage nodes
and data per node held constant); throughput must grow near-linearly
(the paper reports R^2 = 0.9985) while the 99th-percentile web-interaction
response time stays essentially flat.
"""

from __future__ import annotations

from repro.bench import ScalingExperiment, ScalingExperimentConfig, format_table, save_results
from repro.workloads import TpcwWorkload


def run_experiment():
    experiment = ScalingExperiment(
        TpcwWorkload,
        ScalingExperimentConfig(
            node_counts=(20, 40, 60, 80, 100),
            users_per_node=40,
            items_total=600,
            threads_per_client=4,
            interactions_per_thread=12,
        ),
    )
    return experiment.run()


def test_fig8_fig9_tpcw_scaling(run_once):
    result = run_once(run_experiment)

    print("\nFigures 8 & 9 — TPC-W scale-up (ordering mix)")
    print(
        format_table(
            ["storage nodes", "clients", "WIPS", "p99 RT (ms)", "mean RT (ms)"],
            result.rows(),
        )
    )
    print(f"throughput linearity R^2 = {result.throughput_r_squared:.4f} "
          f"(paper: 0.9985)")
    print(f"p99 latency range: {result.min_p99_ms:.1f}-{result.max_p99_ms:.1f} ms")
    save_results(
        "fig8_9_tpcw_scaling",
        {"rows": result.rows(), "r_squared": result.throughput_r_squared},
    )

    throughputs = [p.throughput for p in result.points]
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    # Figure 8: near-linear throughput scale-up.
    assert result.throughput_r_squared > 0.98
    # Roughly 5x the nodes should give roughly 5x the throughput (within 40%).
    assert throughputs[-1] / throughputs[0] > 5 * 0.6
    # Figure 9: 99th-percentile latency is independent of scale.
    assert result.latency_flatness() < 2.0


def test_fig8_single_point_20_nodes(benchmark):
    """Timing for one scale point (useful when iterating on the simulator)."""
    experiment = ScalingExperiment(
        TpcwWorkload,
        ScalingExperimentConfig(
            node_counts=(20,), users_per_node=40, items_total=600,
            threads_per_client=4, interactions_per_thread=8,
        ),
    )
    point = benchmark.pedantic(
        lambda: experiment.run_point(20), rounds=1, iterations=1
    )
    assert point.throughput > 0
