"""Shared configuration for the paper-reproduction benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
the paper-vs-measured comparison).  Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the reproduced tables/series; each benchmark also
writes its data to ``results/*.json``.
"""

from __future__ import annotations

from pathlib import Path

import pytest


def pytest_configure(config):
    # The experiments are end-to-end simulations, not micro-benchmarks; one
    # round each is what we want from pytest-benchmark.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False


def pytest_sessionfinish(session, exitstatus):
    # Normalise everything this run wrote under results/ into the unified
    # bench-summary schema (git SHA + flattened headline metrics), so the
    # perf trajectory accumulates one comparable record per benchmark run.
    # See repro.bench.regression for the schema and the baseline diff.
    results = Path("results")
    if not results.is_dir():
        return
    from repro.bench.regression import summary_from_results_dir, write_summary

    summary = summary_from_results_dir(str(results))
    if summary.get("benches"):
        write_summary(summary, str(results / "BENCH_summary.json"))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
