"""Serving tier — SLO violation under a traffic surge, then recovery.

Not a figure from the paper but the serving-tier scenario its SLO
methodology implies (Sections 6.2/6.3 applied to a running system): an
open-loop TPC-W fleet whose arrival rate surges past cluster capacity.
Without admission control the p99 response time diverges and SLO windows
stay violated through the recovery phase; with the admission controller
enabled, part of the offered load is shed and the admitted requests return
to compliance within one SLO interval of the surge ending.

Run with ``pytest benchmarks/bench_serving_slo.py --benchmark-only -s``
or directly via ``python -m repro.bench.bench_serving_slo``.
"""

from __future__ import annotations

from repro.bench import ServingSloExperiment, format_table, save_results


def run_experiment():
    return ServingSloExperiment().run()


def test_serving_slo_violation_and_recovery(run_once):
    result = run_once(run_experiment)
    slo = result.config.slo

    print(
        f"\nServing tier — surge scenario (SLO: {slo.quantile:.0%} under "
        f"{slo.latency_ms:.0f} ms per {slo.interval_seconds:.0f} s interval)"
    )
    for label, summaries in result.phase_summaries.items():
        report = result.reports[label]
        shed = report.admission.shed if report.admission else 0
        print(f"\n{label} (completed={report.completed}, shed={shed})")
        print(
            format_table(
                ["phase", "completed", "p50 ms", "p99 ms", "SLO compliance"],
                [
                    (s.phase, s.completed, s.p50_ms, s.p99_ms, s.compliance)
                    for s in summaries
                ],
            )
        )
    save_results("serving_slo", result.summary_payload())

    without = {s.phase: s for s in result.phase_summaries["no_admission"]}
    with_ac = {s.phase: s for s in result.phase_summaries["admission"]}
    # Both runs start healthy.
    assert without["normal"].compliance > 0.95
    assert with_ac["normal"].compliance > 0.95
    # The surge violates the SLO when every request is accepted...
    assert without["surge"].compliance < 0.5
    assert any(w.violated for w in result.reports["no_admission"].windows)
    # ...and shedding restores compliance for the admitted requests.
    assert result.reports["admission"].admission.shed > 0
    assert with_ac["surge"].compliance > without["surge"].compliance + 0.3
    assert with_ac["recovery"].compliance > 0.95
