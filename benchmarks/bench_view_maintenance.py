"""Materialized-view tier: incremental precomputation at constant write cost.

The write-amplification sweep proves per-insert maintenance cost is bounded
by the static write bound and independent of table cardinality; the
serving-tier closed loop exercises maintenance under live buy-confirm
traffic; and the equivalence phase proves every best-sellers view scan is
identical — values and order, ties included — to an offline recomputation
from the base tables.  Without the view, the same query is rejected as not
scale-independent (the paper's Table 1 omits it for exactly that reason).
"""

from __future__ import annotations

from repro.bench import (
    ViewMaintenanceConfig,
    ViewMaintenanceExperiment,
    save_results,
)
from repro.bench.bench_view_maintenance import check_result, print_result


def run_experiment():
    experiment = ViewMaintenanceExperiment(ViewMaintenanceConfig())
    return experiment.run()


def test_view_maintenance(run_once):
    result = run_once(run_experiment)
    print()
    print_result(result)
    save_results("view_maintenance", result.summary_payload())

    # Rejection without the view, constant write amplification bounded by
    # the static write bound, bounded reads with flat latency across a ~9x
    # cardinality range, and bit-identical view-scan results.
    check_result(result)

    # The full configuration spans an order of magnitude of order-line
    # cardinality; reads must cost the identical bounded ceiling at the
    # smallest and the largest scale.
    points = result.scale_points
    assert points[-1].order_line_rows >= 8 * points[0].order_line_rows
    assert points[0].read_bound == points[-1].read_bound
    # Maintenance keeps the restored page cheap: the bounded view scan's
    # operation ceiling is 1 range + top-k dereferences.
    assert points[0].read_bound == 51
