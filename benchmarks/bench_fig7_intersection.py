"""Figure 7 — subscriber intersection query: scale-independent vs cost-based plan.

Reproduces the comparison of Section 8.3: the cost-based plan (unbounded
index scan over the target's subscribers) is faster for unpopular users but
its latency grows without bound with popularity, while PIQL's bounded
random-lookup plan stays flat and keeps meeting the SLO.
"""

from __future__ import annotations

from repro.bench import (
    IntersectionExperimentConfig,
    SubscriberIntersectionExperiment,
    format_table,
    save_results,
)


def run_experiment():
    experiment = SubscriberIntersectionExperiment(
        IntersectionExperimentConfig(
            storage_nodes=10,
            subscriber_counts=(0, 500, 1000, 2000, 3000, 4000, 5000),
            executions_per_point=120,
            friends=50,
        )
    )
    return experiment.run()


def test_fig7_subscriber_intersection(run_once):
    result = run_once(run_experiment)

    rows = [
        (p.subscribers, round(p.unbounded_p99_ms, 1), round(p.bounded_p99_ms, 1),
         p.unbounded_operations, p.bounded_operations)
        for p in result.points
    ]
    print("\nFigure 7 — 99th-percentile response time of the subscriber "
          "intersection query")
    print(
        format_table(
            ["subscribers", "unbounded scan p99 (ms)", "bounded lookups p99 (ms)",
             "scan ops", "lookup ops"],
            rows,
        )
    )
    print("crossover at ~", result.crossover_subscribers(), "subscribers")
    save_results("fig7_intersection", {"points": rows,
                                       "crossover": result.crossover_subscribers()})

    first, last = result.points[0], result.points[-1]
    # The cost-based plan wins for unpopular users (the paper reports up to 4x).
    assert first.unbounded_p99_ms < first.bounded_p99_ms
    # ... but its latency and operation count grow with popularity,
    assert last.unbounded_p99_ms > 5 * first.unbounded_p99_ms
    assert last.unbounded_operations > 1000
    # ... while the PIQL plan's work stays bounded and its latency roughly flat,
    assert all(p.bounded_operations <= 50 for p in result.points)
    assert last.bounded_p99_ms < 5 * max(first.bounded_p99_ms, 1.0)
    # ... so for popular users the scale-independent plan wins decisively.
    assert last.bounded_p99_ms < last.unbounded_p99_ms
    assert result.crossover_subscribers() is not None
