"""Tuple-at-a-time versus batch-at-a-time executor rounds.

A paired replay proves round fusion changes only the RPC structure
(identical per-query operation counts and static bounds arm to arm), the
query microbench shows the multiplicative drop in dereference rounds on
multi-child sorted-index joins, and a closed-loop run through the serving
tier reports the end-to-end wall-clock throughput effect.
"""

from __future__ import annotations

from repro.bench import (
    OperatorFusionConfig,
    OperatorFusionExperiment,
    save_results,
)
from repro.bench.bench_operator_fusion import check_result, print_result


def run_experiment():
    experiment = OperatorFusionExperiment(OperatorFusionConfig())
    return experiment.run()


def test_operator_fusion(run_once):
    result = run_once(run_experiment)
    print()
    print_result(result)
    save_results("operator_fusion", result.summary_payload())

    # Fusion must not change the work done — identical per-query operation
    # counts and static bounds in both arms — and must collapse the
    # dereference rounds of multi-child sorted-index joins by at least 2x.
    # check_result also applies the coarse wall-clock regression guard.
    check_result(result)

    # The fused arm's round structure is strictly better on the replay mix:
    # fewer physical RPCs overall, and the multi-child sorted-join query
    # gets a large simulated-latency cut from paying one bulk dereference
    # round instead of one per child.
    serial_rpcs, serial_rounds = result.replay_totals("serial")
    fused_rpcs, fused_rounds = result.replay_totals("fused")
    assert fused_rpcs < serial_rpcs
    assert fused_rounds < serial_rounds
    search_serial = result.micro["serial"]["search_by_author_wi"]
    search_fused = result.micro["fused"]["search_by_author_wi"]
    assert search_fused.mean_latency_ms < 0.6 * search_serial.mean_latency_ms

    # End to end, under a near-saturation closed loop the removed rounds
    # come out of storage-node queues: the fused arm must complete strictly
    # more work in the same simulated horizon with better percentiles
    # (deterministic simulation, so these are exact), and report a
    # wall-clock throughput gain (generous floor: the wall clock of a
    # shared CI box is noisy).
    serial_loop = result.closed_loop["serial"]
    fused_loop = result.closed_loop["fused"]
    assert fused_loop["completed"] > 1.05 * serial_loop["completed"]
    assert fused_loop["p50_ms"] < serial_loop["p50_ms"]
    assert fused_loop["p99_ms"] < serial_loop["p99_ms"]
    assert (
        fused_loop["completed_per_wall_second"]
        >= 0.95 * serial_loop["completed_per_wall_second"]
    )

    # Observability budget: recording a full span tree per interaction must
    # not change the work done, and its wall-clock cost must stay in the
    # single digits against the most adversarial denominator there is — a
    # bare replay loop of sub-millisecond simulated queries with no client
    # think time.  The design target is 5%; the guard adds headroom for the
    # measured noise floor of shared CI runners (the chunk-paired median
    # tames drift, but ±2-3% process-to-process variance remains).
    overhead = result.tracing_overhead
    assert overhead["operations_identical"] == 1.0
    assert overhead["overhead_ratio"] <= 1.12, (
        f"tracing cost {(overhead['overhead_ratio'] - 1) * 100:.1f}% wall clock"
    )
