"""Figure 12 — 99th-percentile TPC-W latency under the three execution strategies.

The paper (Section 8.5) measures 639 ms (Lazy), 451 ms (Simple) and 331 ms
(Parallel) on a 10-node cluster with 5 client machines, demonstrating the
value of limit-hint batching and intra-query parallelism.  The absolute
numbers differ in the simulator; the ordering and meaningful gaps must hold.
"""

from __future__ import annotations

from repro.bench import ExecutorStrategyConfig, ExecutorStrategyExperiment, format_table, save_results
from repro.workloads import TpcwWorkload


def run_experiment():
    experiment = ExecutorStrategyExperiment(
        TpcwWorkload,
        ExecutorStrategyConfig(
            storage_nodes=10,
            client_machines=5,
            threads_per_client=4,
            interactions_per_thread=15,
            users_per_node=40,
            items_total=600,
        ),
    )
    return experiment.run()


def test_fig12_execution_strategies(run_once):
    measurements = run_once(run_experiment)

    rows = [
        (m.strategy, round(m.p99_latency_ms, 1), round(m.mean_latency_ms, 1),
         round(m.throughput, 1))
        for m in measurements
    ]
    print("\nFigure 12 — TPC-W 99th-percentile response time by execution strategy")
    print(format_table(["strategy", "p99 RT (ms)", "mean RT (ms)", "WIPS"], rows))
    print("paper: lazy 639 ms, simple 451 ms, parallel 331 ms")
    save_results("fig12_executors", {"rows": rows})

    by_name = {m.strategy: m for m in measurements}
    # The ordering of Figure 12: Parallel < Simple < Lazy.
    assert by_name["parallel"].p99_latency_ms < by_name["simple"].p99_latency_ms
    assert by_name["simple"].p99_latency_ms < by_name["lazy"].p99_latency_ms
    # Both batching and parallelism contribute meaningfully (>15% each).
    assert by_name["simple"].p99_latency_ms < 0.85 * by_name["lazy"].p99_latency_ms
    assert by_name["parallel"].p99_latency_ms < 0.85 * by_name["simple"].p99_latency_ms
