"""Table 1 — query modifications, required indexes, actual vs predicted 99th percentile.

For every read query of TPC-W and SCADr this benchmark reports the
modifications and additional indexes needed for scale-independent execution
together with the measured and model-predicted 99th-percentile latencies.
Following Section 8.6, the prediction model should (mildly) over-predict in
most cases — its purpose is SLO compliance, not point-accurate latency.
"""

from __future__ import annotations

from repro.bench import (
    PredictionAccuracyExperiment,
    PredictionExperimentConfig,
    format_table,
    save_results,
)
from repro.prediction import ServiceLevelObjective, TrainingConfig


def run_experiment():
    experiment = PredictionAccuracyExperiment(
        PredictionExperimentConfig(
            storage_nodes=10,
            users_per_node=50,
            items_total=400,
            intervals=8,
            executions_per_interval=120,
        ),
        TrainingConfig(intervals=8, samples_per_interval=14),
    )
    rows = experiment.run()
    return experiment, rows


def test_table1_prediction_accuracy(run_once):
    experiment, rows = run_once(run_experiment)

    table = [
        (
            row.benchmark,
            row.query,
            row.modifications,
            "; ".join(row.additional_indexes) or "-",
            round(row.actual_p99_ms, 1),
            round(row.predicted_p99_ms, 1),
        )
        for row in rows
    ]
    print("\nTable 1 — modifications, indexes, actual vs predicted 99th percentile")
    print(
        format_table(
            ["benchmark", "query", "modifications", "additional indexes",
             "actual 99th (ms)", "predicted 99th (ms)"],
            table,
        )
    )
    summary = experiment.summary(rows)
    print("summary:", {k: round(float(v), 2) for k, v in summary.items()})
    save_results("table1_prediction", {"rows": table, "summary": {
        k: float(v) for k, v in summary.items()}})

    # The paper's thirteen read queries, plus the three restored by the
    # materialized-view tier (Best Sellers and the SCADr profile counts,
    # which the paper's table omits as inexpressible).
    assert len(rows) == 16
    # Qualitative columns: the tokenised-search rewrites need their inverted
    # indexes, the point lookups need none.
    by_query = {row.query: row for row in rows}
    assert by_query["new_products_wi"].additional_indexes
    assert by_query["search_by_title_wi"].additional_indexes
    assert by_query["home_wi"].additional_indexes == []
    assert by_query["find_user"].additional_indexes == []
    # The restored queries are served by precomputation: no additional
    # indexes beyond the views' own bounded structures.
    assert by_query["best_sellers_wi"].modifications.startswith("Precomputed")
    assert by_query["best_sellers_wi"].additional_indexes == []
    assert by_query["thought_count"].additional_indexes == []
    assert by_query["follower_count"].additional_indexes == []
    # The model predicts SLO compliance conservatively on balance.  (The
    # "actual" column is a max-over-intervals of per-interval percentiles
    # estimated from far fewer samples than the trained models, so individual
    # heavy-tail queries can exceed their prediction — see EXPERIMENTS.md.)
    assert summary["fraction_overpredicted"] >= 0.45
    assert summary["max_underprediction_ms"] < 45.0
    # Every query comfortably meets the paper's 500 ms SLO, predicted and actual.
    slo = ServiceLevelObjective(latency_seconds=0.5)
    assert all(row.predicted_p99_ms / 1000.0 < slo.latency_seconds for row in rows)
    assert all(row.actual_p99_ms / 1000.0 < slo.latency_seconds for row in rows)
