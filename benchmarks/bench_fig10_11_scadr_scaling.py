"""Figures 10 & 11 — SCADr throughput and 99th-percentile latency vs cluster size.

Reproduces the scale-up experiment of Section 8.4.2 (the paper reports
R^2 = 0.9868 for throughput linearity and flat tail latency): data per node
is held constant (users, 100 thoughts per user, 10 subscriptions per user at
a limit of 10) while nodes and clients grow together.
"""

from __future__ import annotations

from repro.bench import ScalingExperiment, ScalingExperimentConfig, format_table, save_results
from repro.workloads import ScadrWorkload


def make_workload() -> ScadrWorkload:
    # Section 8.2: limits of 10 subscriptions and 10 results per page.
    return ScadrWorkload(
        max_subscriptions=10, subscriptions_per_user=10, thoughts_per_user=20
    )


def run_experiment():
    experiment = ScalingExperiment(
        make_workload,
        ScalingExperimentConfig(
            node_counts=(20, 40, 60, 80, 100),
            users_per_node=50,
            threads_per_client=4,
            interactions_per_thread=8,
        ),
    )
    return experiment.run()


def test_fig10_fig11_scadr_scaling(run_once):
    result = run_once(run_experiment)

    print("\nFigures 10 & 11 — SCADr scale-up (home-page rendering)")
    print(
        format_table(
            ["storage nodes", "clients", "interactions/s", "p99 RT (ms)",
             "mean RT (ms)"],
            result.rows(),
        )
    )
    print(f"throughput linearity R^2 = {result.throughput_r_squared:.4f} "
          f"(paper: 0.9868)")
    print(f"p99 latency range: {result.min_p99_ms:.1f}-{result.max_p99_ms:.1f} ms")
    save_results(
        "fig10_11_scadr_scaling",
        {"rows": result.rows(), "r_squared": result.throughput_r_squared},
    )

    throughputs = [p.throughput for p in result.points]
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    assert result.throughput_r_squared > 0.98
    assert throughputs[-1] / throughputs[0] > 5 * 0.6
    assert result.latency_flatness() < 2.0
