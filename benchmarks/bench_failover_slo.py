"""Replication tier — SLO compliance through a crash-and-recover timeline.

Not a figure from the paper but the fault-tolerance scenario its SLO
methodology implies: an open-loop TPC-W fleet against a replicated cluster
(``N=3, R=W=2``) while one storage node crashes mid-run and later
recovers.  The paired baseline run (same seed, no fault) isolates the
failover cost: p99 degrades during the crash window, returns to baseline
once hints are replayed and anti-entropy repair completes, every read and
write keeps succeeding, and no acknowledged write is lost.

Run with ``pytest benchmarks/bench_failover_slo.py --benchmark-only -s``
or directly via ``python -m repro.bench.bench_failover_slo``.
"""

from __future__ import annotations

from repro.bench import FailoverSloExperiment, format_table, save_results
from repro.bench.bench_failover_slo import print_result


def run_experiment():
    return FailoverSloExperiment().run()


def test_failover_slo_degradation_and_recovery(run_once):
    result = run_once(run_experiment)

    print()
    print_result(result)
    save_results("failover_slo", result.summary_payload())

    baseline = {s.phase: s for s in result.phase_summaries["baseline"]}
    failover = {s.phase: s for s in result.phase_summaries["failover"]}

    # Both runs start healthy and identical (the fault hasn't fired yet).
    assert baseline["healthy"].compliance > 0.95
    assert failover["healthy"].compliance > 0.95

    # Killing one of four nodes keeps every quorum satisfiable: nothing
    # fails, nothing is shed, and no acknowledged write is ever lost.
    assert result.reports["failover"].failed == 0
    assert result.reports["failover"].availability == 1.0
    assert result.audit["acknowledged"] > 0
    assert result.audit["lost"] == 0

    # The crash window visibly degrades p99 and SLO compliance relative to
    # the paired baseline...
    assert result.degradation_ratio() > 1.15
    assert failover["degraded"].compliance < baseline["degraded"].compliance
    # ...and after hint replay + anti-entropy repair, p99 falls back well
    # below the crash-window level (phase p99s are straggler-dominated, so
    # the within-run comparison is the statistically sturdy one).
    assert failover["recovered"].p99_ms < 0.8 * failover["degraded"].p99_ms

    # The recovery actually exercised hinted handoff.
    repair = result.reports["failover"].repair
    assert repair is not None and repair.hints_replayed > 0
