"""Serial versus pipelined TPC-W interactions through asynchronous sessions.

A paired replay proves the session API changes only latency composition
(identical per-query operation counts arm to arm), and a closed-loop run
through the serving tier shows the end-to-end percentile improvement when
the independent queries of each page render overlap in simulated time.
"""

from __future__ import annotations

from repro.bench import (
    PipelinedInteractionsConfig,
    PipelinedInteractionsExperiment,
    save_results,
)
from repro.bench.bench_pipelined_interactions import print_result


def run_experiment():
    experiment = PipelinedInteractionsExperiment(PipelinedInteractionsConfig())
    return experiment.run()


def test_pipelined_interactions(run_once):
    result = run_once(run_experiment)
    print()
    print_result(result)
    save_results("pipelined_interactions", result.summary_payload())

    # Pipelining must not change the work done: every replayed interaction
    # issues exactly the same per-query key/value operations in both arms
    # (bounds are per-query; gather only changes latency composition).
    assert result.replay_operations_identical()

    # The paired replay shows every multi-branch interaction type getting
    # faster, and no interaction type getting meaningfully slower.
    speedups = {name: speedup for name, _, _, _, speedup
                in result.replay_by_interaction()}
    for name in ("home", "order_display", "buy_request", "buy_confirm",
                 "search_by_author", "search_by_title", "shopping_cart"):
        if name in speedups:
            assert speedups[name] > 1.05, (name, speedups[name])
    # Single-query interaction types can wobble a little either way (the
    # arms' service-time noise streams de-align after a coalesced read).
    assert all(speedup > 0.90 for speedup in speedups.values()), speedups

    # End to end, the closed-loop response distribution shifts down: the
    # acceptance criterion — pipelined p50 and p99 strictly below serial.
    serial = result.closed_loop["serial"]
    pipelined = result.closed_loop["pipelined"]
    assert pipelined["p50_ms"] < serial["p50_ms"]
    assert pipelined["p99_ms"] < serial["p99_ms"]
    # A faster closed loop completes at least as much work.  Completions in
    # a think-time-bound loop are dominated by the think time, so the count
    # only has to hold to within horizon-edge noise (interactions in flight
    # when the clock runs out differ a handful either way between arms).
    assert pipelined["completed"] >= 0.99 * serial["completed"]
    # Cross-query coalescing actually fired (duplicate promo/page reads).
    assert pipelined["coalesced_reads"] > 0
    assert serial["coalesced_reads"] == 0
