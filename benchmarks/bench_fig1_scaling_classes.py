"""Figure 1 — query scaling classes.

Reproduces the conceptual figure quantitatively: for representative Class
I-IV queries over SCADr data, how does the amount of data relevant to one
query grow as the database grows?  Also checks that the PIQL optimizer
admits exactly the Class I/II queries.
"""

from __future__ import annotations

from repro.analysis import ScalingClassAnalysis
from repro.bench import format_table, save_results


def run_experiment():
    analysis = ScalingClassAnalysis(user_counts=(500, 1000, 2000, 4000, 8000))
    return analysis.run()


def test_fig1_scaling_classes(run_once):
    result = run_once(run_experiment)

    rows = [
        (
            point.users,
            point.class1_constant,
            point.class2_bounded,
            point.class3_linear,
            point.class4_superlinear,
        )
        for point in result.points
    ]
    print("\nFigure 1 — relevant data touched per query as the database grows")
    print(
        format_table(
            ["users", "class I (constant)", "class II (bounded)",
             "class III (linear)", "class IV (super-linear)"],
            rows,
        )
    )
    print("PIQL admissibility:", result.accepted_by_piql)
    save_results(
        "fig1_scaling_classes",
        {
            "points": rows,
            "accepted_by_piql": result.accepted_by_piql,
        },
    )

    growth = result.database_growth_factor()
    assert result.growth_factor("class1_constant") == 1.0
    assert result.growth_factor("class2_bounded") == 1.0
    assert growth * 0.3 < result.growth_factor("class3_linear") < growth * 3
    assert result.growth_factor("class4_superlinear") > growth * 2
    assert result.accepted_by_piql["class1_find_user"]
    assert result.accepted_by_piql["class2_thoughtstream"]
    assert not result.accepted_by_piql["class3_users_by_hometown"]
    assert not result.accepted_by_piql["class4_hometown_pairs"]
