"""Storage engine — durability without observable cost at the query layer.

Not a figure from the paper but the storage-tier counterpart of its
scale-independence argument: swapping the in-memory dict engine for the
LSM engine (memtable + WAL + sorted segments + compaction) must leave
every simulation observable bit-identical, keep per-query latency flat as
the store grows, lose no acknowledged write across a crash + recover
cycle, and bulk-load under a fixed byte budget by spilling sorted runs.

Run with ``pytest benchmarks/bench_storage_engine.py --benchmark-only -s``
or directly via ``python -m repro.bench.bench_storage_engine``.
"""

from __future__ import annotations

from repro.bench import (
    StorageEngineConfig,
    StorageEngineExperiment,
    save_results,
)
from repro.bench.bench_storage_engine import print_result


def run_experiment():
    return StorageEngineExperiment(StorageEngineConfig()).run()


def test_storage_engine_parity_recovery_and_budgets(run_once):
    result = run_once(run_experiment)

    print()
    print_result(result)
    save_results("storage_engine", result.summary_payload())

    # The LSM arm is observationally identical to the in-memory arm —
    # values, charged latencies, serving nodes, op counts, and every
    # non-engine metric.
    assert result.parity_identical

    # Per-query latency stays flat across a 16x data-size sweep, and the
    # resident memtable never exceeds its configured byte budget.
    assert 0.8 <= result.sweep_latency_ratio <= 1.25
    budget = StorageEngineConfig().memtable_budget_bytes
    for point in result.sweep:
        assert point.peak_memtable_bytes <= budget + 1024

    # Crash recovery: every acknowledged write reads back (disk recovery
    # plus hint replay for the outage delta), the recovery actually
    # restored state from segments/WAL, and repair traffic matches the
    # dict-engine oracle exactly.
    assert result.recovery_acknowledged > 0
    assert result.recovery_lost == 0
    assert result.recovery_segments_loaded + result.recovery_wal_records_replayed > 0
    assert result.recovery_oracle_match

    # The budgeted bulk load spilled sorted runs and landed the same data
    # as per-record loads.
    assert result.bulk_spill_count > 0
    assert result.bulk_match
