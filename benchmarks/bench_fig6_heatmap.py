"""Figure 6 — predicted 99th-percentile latency heatmap for the thoughtstream query.

The Performance Insight Assistant shows the developer how the predicted
99th-percentile latency varies with the two cardinality knobs of the
thoughtstream query (subscriptions per user and records per page); the
developer picks a pair that satisfies the SLO.
"""

from __future__ import annotations

from repro import ClusterConfig, PiqlDatabase
from repro.bench import save_results
from repro.prediction import (
    QueryLatencyModel,
    ServiceLevelObjective,
    TrainingConfig,
    thoughtstream_heatmap,
    train_default_model,
)
from repro.workloads.scadr.schema import scadr_ddl

SUBSCRIPTIONS = (100, 150, 200, 250, 300, 350, 400, 450, 500)
PAGE_SIZES = (10, 15, 20, 25, 30, 35, 40, 45, 50)


def run_experiment():
    store = train_default_model(
        config=TrainingConfig(intervals=10, samples_per_interval=16)
    )
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=10, seed=3))
    db.execute_ddl(scadr_ddl(max_subscriptions=500))
    model = QueryLatencyModel(store, db.catalog)
    return thoughtstream_heatmap(
        model, subscription_counts=SUBSCRIPTIONS, page_sizes=PAGE_SIZES
    )


def test_fig6_thoughtstream_heatmap(run_once):
    heatmap = run_once(run_experiment)

    print("\nFigure 6 — predicted 99th-percentile latency (ms) for thoughtstream")
    print(heatmap.render())
    slo = ServiceLevelObjective(quantile=0.99, latency_seconds=0.5)
    acceptable = heatmap.acceptable_settings(slo)
    print(f"settings meeting the 500 ms SLO: {len(acceptable)} of "
          f"{len(SUBSCRIPTIONS) * len(PAGE_SIZES)}")
    save_results(
        "fig6_heatmap",
        {
            "subscriptions": list(SUBSCRIPTIONS),
            "page_sizes": list(PAGE_SIZES),
            "cells_ms": [
                [cell * 1000.0 for cell in row] for row in heatmap.cells_seconds
            ],
        },
    )

    # Shape checks mirroring the paper's heatmap: latency increases along both
    # axes between the extreme settings.  (Adjacent cells may tie or jitter
    # because the model conservatively rounds each setting up to the next
    # trained cardinality bucket, exactly as described in Section 6.1.)
    assert heatmap.cell_ms(500, 50) > heatmap.cell_ms(100, 10)
    for page in (10, 50):
        assert heatmap.cell_ms(500, page) > heatmap.cell_ms(100, page)
    for subscriptions in (100, 500):
        assert heatmap.cell_ms(subscriptions, 50) > heatmap.cell_ms(subscriptions, 10)
    # The small-cardinality corner comfortably meets the paper's 500 ms SLO.
    assert (100, 10) in acceptable
