"""Ablation — what does the data-stop push-down buy? (Section 5.1)

The thoughtstream query's data-stop operator can be pushed past the
``approved = true`` predicate because that predicate did not cause it.  The
payoff (as the paper argues) is that the subscriptions access can use the
*primary* index plus a local selection instead of requiring an extra
secondary index on (owner, approved, ...) that would have to be maintained
on every write and dereferenced on every read.

This ablation compares the plan PIQL picks against the alternative
"index-covers-everything" plan a system without data-stop push-down would
need: extra index maintenance work per insert and an extra dereference round
trip per query.
"""

from __future__ import annotations

import random

from repro import ClusterConfig, PiqlDatabase
from repro.bench import format_table, percentile, save_results
from repro.plans import physical as P
from repro.schema.ddl import IndexColumn, IndexDefinition
from repro.workloads.scadr.data import ScadrDataConfig, ScadrDataGenerator
from repro.workloads.scadr.queries import THOUGHTSTREAM
from repro.workloads.scadr.schema import scadr_ddl

EXECUTIONS = 300


def build_database() -> PiqlDatabase:
    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=10, seed=13))
    db.execute_ddl(scadr_ddl(max_subscriptions=10))
    generator = ScadrDataGenerator(
        ScadrDataConfig(users=800, thoughts_per_user=20, subscriptions_per_user=10)
    )
    generator.load(db)
    return db, generator.usernames()


def run_experiment():
    db, usernames = build_database()
    rng = random.Random(5)
    prepared = db.prepare(THOUGHTSTREAM)

    # The PIQL plan: primary-index scan + local selection (no extra index).
    piql_latencies = [
        prepared.execute(uname=rng.choice(usernames)).latency_seconds
        for _ in range(EXECUTIONS)
    ]

    # Ablated alternative: a covering secondary index on (owner, approved)
    # must exist; the scan then reads index entries and dereferences them.
    index = IndexDefinition(
        name="idx_subscriptions_owner_approved",
        table="subscriptions",
        columns=(IndexColumn("owner"), IndexColumn("approved"),
                 IndexColumn("target")),
    )
    db.create_index(index)
    optimized = db.optimizer.optimize(THOUGHTSTREAM)
    scan = P.find_scans(optimized.physical_plan)[0]
    ablated_scan = P.PhysicalIndexScan(
        relation_alias=scan.relation_alias,
        table=scan.table,
        index=P.IndexChoice(table="subscriptions", primary=False, definition=index),
        prefix=scan.prefix,
        ascending=True,
        limit_hint=None,
        data_stop=scan.data_stop,
        needs_dereference=True,
        scan_id="ablation",
    )
    # Swap the driving scan (and drop the now-unnecessary local selection).
    join = next(
        op for op in P.walk(optimized.physical_plan)
        if isinstance(op, P.PhysicalSortedIndexJoin)
    )
    join.child = ablated_scan
    ablated_latencies = [
        db.executor.execute_physical_plan(
            optimized.physical_plan, {"uname": rng.choice(usernames)}
        ).latency_seconds
        for _ in range(EXECUTIONS)
    ]
    index_entries = db.cluster.namespace_size("index:" + index.name)
    return piql_latencies, ablated_latencies, index_entries


def test_ablation_datastop_pushdown(run_once):
    piql_latencies, ablated_latencies, index_entries = run_once(run_experiment)

    rows = [
        ("PIQL (primary index + local selection)",
         round(percentile(piql_latencies, 0.5) * 1000, 2),
         round(percentile(piql_latencies, 0.99) * 1000, 2), 0),
        ("ablated (covering secondary index + dereference)",
         round(percentile(ablated_latencies, 0.5) * 1000, 2),
         round(percentile(ablated_latencies, 0.99) * 1000, 2), index_entries),
    ]
    print("\nAblation — data-stop push-down (thoughtstream subscriptions access)")
    print(format_table(
        ["plan", "median (ms)", "p99 (ms)", "extra index entries maintained"], rows
    ))
    save_results("ablation_datastop", {"rows": rows})

    # The PIQL plan avoids maintaining an extra index entirely...
    assert index_entries > 0
    # ...and is at least as fast, because the ablated plan pays an extra
    # dereference round trip for the same bounded amount of data.
    assert percentile(piql_latencies, 0.5) <= percentile(ablated_latencies, 0.5)
